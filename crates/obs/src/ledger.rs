//! The deterministic run ledger: counters, gauges, and labels keyed by
//! `phase/name`, optionally broken down per scenario id.
//!
//! The ledger is the *deterministic* observability plane: every value
//! recorded into it must be a pure function of the run's inputs (matrix,
//! seed, resolved budget, cache warmth) — never of thread timing. The
//! representation enforces the rest: all maps are ordered
//! (`BTreeMap`), counters merge by *summation* and gauges by *maximum*
//! (both commutative and associative), so the rendered JSON is
//! byte-identical no matter how many workers recorded into it or how a
//! sharded run was split. That is the same contract
//! `scenario_fleet::Scorecard::merge_shards` pins for scorecards, and
//! ledgers are mergeable the same way ([`Ledger::merge`]).
//!
//! Wall time never enters a ledger. Timing lives in the span plane
//! ([`crate::RunReport`]), which is explicitly non-deterministic.

use crate::histogram::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;

/// Deterministic counters of one run (or of many merged runs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Run-level counters, keyed `phase/name`; merge sums.
    counters: BTreeMap<String, u64>,
    /// Per-scenario counters: scenario id → `phase/name` → count.
    scenarios: BTreeMap<String, BTreeMap<String, u64>>,
    /// Point-in-time values (e.g. a resolved budget); merge maxes.
    gauges: BTreeMap<String, u64>,
    /// Descriptive settings (e.g. the budget source); merge requires
    /// agreement.
    labels: BTreeMap<String, String>,
    /// Distributions, keyed `phase/name`; merge sums bucket-wise (the
    /// bucket edges are fixed — see [`crate::histogram`]).
    histograms: BTreeMap<String, Histogram>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.scenarios.is_empty()
            && self.gauges.is_empty()
            && self.labels.is_empty()
            && self.histograms.is_empty()
    }

    /// Adds `n` to the run-level counter `key`.
    pub fn count(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_default() += n;
    }

    /// Adds `n` to `key` under `scenario` *and* to the run-level
    /// counter, so run totals never need a second recording pass.
    pub fn count_scenario(&mut self, scenario: &str, key: &str, n: u64) {
        self.count(key, n);
        *self
            .scenarios
            .entry(scenario.to_string())
            .or_default()
            .entry(key.to_string())
            .or_default() += n;
    }

    /// Sets the gauge `key` (overwrites; merge takes the maximum).
    pub fn gauge(&mut self, key: &str, value: u64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Sets the label `key` (overwrites; merge requires agreement).
    pub fn label(&mut self, key: &str, value: &str) {
        self.labels.insert(key.to_string(), value.to_string());
    }

    /// Records one observation into the histogram `key`.
    pub fn observe(&mut self, key: &str, value: f64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(value);
    }

    /// A run-level counter (0 when never recorded).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// A per-scenario counter (0 when never recorded).
    pub fn scenario_counter(&self, scenario: &str, key: &str) -> u64 {
        self.scenarios
            .get(scenario)
            .and_then(|m| m.get(key))
            .copied()
            .unwrap_or(0)
    }

    /// A gauge, if set.
    pub fn gauge_value(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// A label, if set.
    pub fn label_value(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }

    /// A histogram, if any observation reached it.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Run-level counter keys in sorted order.
    pub fn counter_keys(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Gauge keys in sorted order.
    pub fn gauge_keys(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// Label keys in sorted order.
    pub fn label_keys(&self) -> impl Iterator<Item = &str> {
        self.labels.keys().map(String::as_str)
    }

    /// Scenario ids with at least one counter, in sorted order.
    pub fn scenario_names(&self) -> impl Iterator<Item = &str> {
        self.scenarios.keys().map(String::as_str)
    }

    /// Counter keys recorded under `scenario`, in sorted order.
    pub fn scenario_counter_keys(&self, scenario: &str) -> impl Iterator<Item = &str> {
        self.scenarios
            .get(scenario)
            .into_iter()
            .flat_map(|m| m.keys().map(String::as_str))
    }

    /// All histograms in sorted key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of scenarios with at least one counter.
    pub fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    /// Folds `other` in: counters sum, gauges max, labels must agree.
    ///
    /// # Errors
    ///
    /// Rejects a merge whose labels disagree — two runs that resolved
    /// e.g. different trace-budget sources are different experiments,
    /// and silently keeping one label would misdescribe the sum.
    pub fn merge(&mut self, other: &Ledger) -> Result<(), String> {
        for (key, theirs) in &other.labels {
            match self.labels.get(key) {
                Some(ours) if ours != theirs => {
                    return Err(format!(
                        "ledger label {key:?} disagrees: {ours:?} vs {theirs:?}"
                    ));
                }
                _ => {
                    self.labels.insert(key.clone(), theirs.clone());
                }
            }
        }
        for (key, n) in &other.counters {
            *self.counters.entry(key.clone()).or_default() += n;
        }
        for (scenario, counters) in &other.scenarios {
            let entry = self.scenarios.entry(scenario.clone()).or_default();
            for (key, n) in counters {
                *entry.entry(key.clone()).or_default() += n;
            }
        }
        for (key, value) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_default();
            *slot = (*slot).max(*value);
        }
        for (key, histogram) in &other.histograms {
            self.histograms
                .entry(key.clone())
                .or_default()
                .merge(histogram);
        }
        Ok(())
    }

    /// Deterministic JSON form: every map renders in sorted key order,
    /// so insertion order (and hence thread scheduling) can never show
    /// through.
    pub fn to_json(&self) -> Json {
        let counter_obj = |map: &BTreeMap<String, u64>| {
            Json::Obj(
                map.iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            )
        };
        Json::obj([
            ("counters", counter_obj(&self.counters)),
            ("gauges", counter_obj(&self.gauges)),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "labels",
                Json::Obj(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "scenarios",
                Json::Obj(
                    self.scenarios
                        .iter()
                        .map(|(name, counters)| (name.clone(), counter_obj(counters)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Rejects missing sections, non-object sections, and counter
    /// values that are not non-negative integers.
    pub fn from_json(value: &Json) -> Result<Ledger, String> {
        let counter_map = |value: &Json, section: &str| -> Result<BTreeMap<String, u64>, String> {
            match value {
                Json::Obj(pairs) => pairs
                    .iter()
                    .map(|(k, _)| Ok((k.clone(), value.req_index(k)?)))
                    .collect(),
                _ => Err(format!("ledger section {section:?} must be an object")),
            }
        };
        let counters = counter_map(value.req("counters")?, "counters")?;
        let gauges = counter_map(value.req("gauges")?, "gauges")?;
        let labels = match value.req("labels")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("ledger label {k:?} must be a string"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("ledger section \"labels\" must be an object".to_string()),
        };
        let scenarios = match value.req("scenarios")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(name, counters)| Ok((name.clone(), counter_map(counters, name)?)))
                .collect::<Result<BTreeMap<_, _>, String>>()?,
            _ => return Err("ledger section \"scenarios\" must be an object".to_string()),
        };
        // Optional for back-compat: `fleet-run-report/1` ledgers (and
        // the PR 6 bench schema) predate the histogram plane.
        let histograms = match value.get("histograms") {
            None => BTreeMap::new(),
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, hist)| Ok((name.clone(), Histogram::from_json(hist)?)))
                .collect::<Result<BTreeMap<_, _>, String>>()?,
            Some(_) => return Err("ledger section \"histograms\" must be an object".to_string()),
        };
        Ok(Ledger {
            counters,
            scenarios,
            gauges,
            labels,
            histograms,
        })
    }

    /// Parses a ledger from JSON text.
    pub fn from_json_str(text: &str) -> Result<Ledger, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// A compact text summary: labels and gauges first, then run-level
    /// counters (scenario breakdowns stay in the JSON — hundreds of
    /// scenarios do not belong on a terminal).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (key, value) in &self.labels {
            let _ = writeln!(out, "{key} = {value}");
        }
        for (key, value) in &self.gauges {
            let _ = writeln!(out, "{key} = {value}");
        }
        for (key, value) in &self.counters {
            let _ = writeln!(out, "{key}: {value}");
        }
        for (key, histogram) in &self.histograms {
            let _ = writeln!(out, "{key} ~ {}", histogram.render_line());
        }
        if self.scenario_count() > 0 {
            let _ = writeln!(
                out,
                "({} scenarios carry per-scenario breakdowns)",
                self.scenario_count()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ledger {
        let mut ledger = Ledger::new();
        ledger.count("synth/trace_generations", 3);
        ledger.count_scenario("desert", "slots/processed", 1920);
        ledger.count_scenario("marine", "slots/processed", 960);
        ledger.gauge("admission/trace_budget_bytes", 4 << 20);
        ledger.label("admission/trace_budget_source", "bounded");
        ledger
    }

    #[test]
    fn scenario_counts_roll_up_into_run_totals() {
        let ledger = sample();
        assert_eq!(ledger.counter("slots/processed"), 2880);
        assert_eq!(ledger.scenario_counter("desert", "slots/processed"), 1920);
        assert_eq!(ledger.scenario_counter("absent", "slots/processed"), 0);
        assert_eq!(ledger.scenario_count(), 2);
    }

    #[test]
    fn json_round_trips_and_is_insertion_order_independent() {
        let a = sample();
        // Record the same facts in a different order.
        let mut b = Ledger::new();
        b.label("admission/trace_budget_source", "bounded");
        b.count_scenario("marine", "slots/processed", 960);
        b.gauge("admission/trace_budget_bytes", 4 << 20);
        b.count_scenario("desert", "slots/processed", 1920);
        b.count("synth/trace_generations", 3);
        assert_eq!(a.to_json_string(), b.to_json_string());
        let back = Ledger::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_checks_labels() {
        let mut left = sample();
        let mut right = sample();
        right.gauge("admission/trace_budget_bytes", 1 << 20);
        left.merge(&right).unwrap();
        assert_eq!(left.counter("synth/trace_generations"), 6);
        assert_eq!(left.scenario_counter("desert", "slots/processed"), 3840);
        assert_eq!(
            left.gauge_value("admission/trace_budget_bytes"),
            Some(4 << 20)
        );
        // Split-vs-monolithic equivalence: merging two halves equals
        // recording everything into one ledger.
        let mut halves = Ledger::new();
        halves.count("jobs/evaluated", 5);
        let mut other_half = Ledger::new();
        other_half.count("jobs/evaluated", 7);
        halves.merge(&other_half).unwrap();
        let mut whole = Ledger::new();
        whole.count("jobs/evaluated", 12);
        assert_eq!(halves.to_json_string(), whole.to_json_string());
        // Conflicting labels refuse to merge.
        let mut foreign = Ledger::new();
        foreign.label("admission/trace_budget_source", "detected-memory");
        assert!(left.merge(&foreign).is_err());
    }

    #[test]
    fn render_text_shows_labels_gauges_and_counters() {
        let text = sample().render_text();
        assert!(text.contains("admission/trace_budget_source = bounded"));
        assert!(text.contains("slots/processed: 2880"));
        assert!(text.contains("2 scenarios"));
    }

    #[test]
    fn from_json_rejects_malformed_sections() {
        assert!(Ledger::from_json_str("{}").is_err());
        let bad = r#"{"counters": {"a": -1}, "gauges": {}, "labels": {}, "scenarios": {}}"#;
        assert!(Ledger::from_json_str(bad).is_err());
        let bad = r#"{"counters": {}, "gauges": {}, "labels": {"a": 3}, "scenarios": {}}"#;
        assert!(Ledger::from_json_str(bad).is_err());
        let bad =
            r#"{"counters": {}, "gauges": {}, "histograms": [], "labels": {}, "scenarios": {}}"#;
        assert!(Ledger::from_json_str(bad).is_err());
    }

    #[test]
    fn histogram_plane_merges_and_round_trips_with_counters() {
        let mut a = Ledger::new();
        a.observe("score/mape", 0.08);
        a.observe("score/mape", 0.21);
        a.count("jobs/evaluated", 2);
        let mut b = Ledger::new();
        b.observe("score/mape", 0.21);
        b.observe("fleet/unit_slots", 1440.0);
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        // Merge equals recording everything into one ledger.
        let mut whole = Ledger::new();
        whole.observe("score/mape", 0.08);
        whole.observe("score/mape", 0.21);
        whole.observe("score/mape", 0.21);
        whole.observe("fleet/unit_slots", 1440.0);
        whole.count("jobs/evaluated", 2);
        assert_eq!(merged.to_json_string(), whole.to_json_string());
        assert_eq!(merged.histogram("score/mape").unwrap().count(), 3);
        let back = Ledger::from_json_str(&merged.to_json_string()).unwrap();
        assert_eq!(back, merged);
        assert!(merged.render_text().contains("score/mape ~ count 3"));
    }

    #[test]
    fn histogram_section_is_optional_on_parse_for_v1_ledgers() {
        let v1 =
            r#"{"counters": {"jobs/evaluated": 4}, "gauges": {}, "labels": {}, "scenarios": {}}"#;
        let ledger = Ledger::from_json_str(v1).unwrap();
        assert_eq!(ledger.counter("jobs/evaluated"), 4);
        assert!(ledger.histograms().next().is_none());
        // Re-rendering emits the (empty) section in the /2 shape.
        assert!(ledger.to_json_string().contains("\"histograms\""));
    }
}
