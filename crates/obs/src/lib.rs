//! Fleet observability: a run ledger, phase spans, and machine-readable
//! run reports.
//!
//! The evaluation pipeline (synthesis → fault realization → per-job
//! harvesting machines → sharded scorecards → tuner rounds) reports on
//! itself through two strictly separated planes, following the repo's
//! standing convention that deterministic values are pinned in JSON
//! while wall time stays text-only:
//!
//! - **The deterministic plane** — a [`Ledger`] of counters, gauges,
//!   labels, and [`Histogram`]s keyed by `phase/name` and optionally
//!   broken down per scenario. Every recorded value is a pure function
//!   of the run's inputs (catalog, seed, resolved trace budget, cache
//!   warmth), and the commutative merge rules (sum / max / must-agree
//!   / bucket-wise sum) plus sorted JSON keys make the rendered ledger
//!   byte-identical across 1, 2, or 8 worker threads and across shard
//!   splits — the same contract the sharded scorecards pin. Histogram
//!   bucket edges are **fixed, part of the byte-pinned schema** (four
//!   log-spaced buckets per octave, indexed by IEEE-754 exponent and
//!   top mantissa bits — see [`histogram`] for the exact edge
//!   formula); changing them would change every committed ledger, so
//!   they are not configurable.
//! - **The timing plane** — hierarchical phase spans
//!   ([`SpanNode`]) with nanosecond totals, self/child splits, and a
//!   per-scenario heaviest-first ranking. This plane is honest about
//!   being non-deterministic and never appears in byte-pinned JSON.
//!
//! Both planes flow through a [`Collector`], the handle engines and
//! tuners accept. The default collector is off: every recording call
//! is an early return on a `None` state with no clock reads, no
//! allocation, and no locking, so un-instrumented runs pay nothing
//! (the `fleet_hotpath` bench pins this). [`Collector::report`]
//! assembles a [`RunReport`] — both planes in one JSON document — for
//! the `--report <path>` flags on the examples.
//!
//! On top of the per-run artifacts sits the consumption plane:
//! [`ReportDiff`] compares two reports structurally and returns a
//! machine [`Verdict`] (any deterministic-plane delta is a
//! regression; timing is judged against a configurable noise
//! threshold), [`RunArchive`] appends reports to a JSONL trend store,
//! and [`trace_export`] renders the span tree as chrome-trace JSON
//! for `about:tracing`/Perfetto. The `fleet_report` example is the
//! CLI over all three.

pub mod archive;
pub mod collector;
pub mod diff;
pub mod fsio;
pub mod histogram;
pub mod json;
pub mod ledger;
pub mod report;
pub mod spans;
pub mod trace_export;

pub use archive::{ArchiveEntry, RunArchive, TruncatedTail};
pub use collector::{Collector, SpanGuard};
pub use diff::{
    CounterDelta, DiffConfig, HistogramDelta, LabelChange, ReportDiff, ScenarioDrift, SpanDelta,
    Verdict,
};
pub use histogram::Histogram;
pub use ledger::Ledger;
pub use report::RunReport;
pub use spans::{build_tree, format_ns, scenario_top, ScenarioTiming, SpanNode, SpanRecord};
pub use trace_export::{chrome_trace_json, chrome_trace_string};
