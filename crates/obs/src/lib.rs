//! Fleet observability: a run ledger, phase spans, and machine-readable
//! run reports.
//!
//! The evaluation pipeline (synthesis → fault realization → per-job
//! harvesting machines → sharded scorecards → tuner rounds) reports on
//! itself through two strictly separated planes, following the repo's
//! standing convention that deterministic values are pinned in JSON
//! while wall time stays text-only:
//!
//! - **The deterministic plane** — a [`Ledger`] of counters, gauges,
//!   and labels keyed by `phase/name` and optionally broken down per
//!   scenario. Every recorded value is a pure function of the run's
//!   inputs (catalog, seed, resolved trace budget, cache warmth), and
//!   the commutative merge rules (sum / max / must-agree) plus sorted
//!   JSON keys make the rendered ledger byte-identical across 1, 2, or
//!   8 worker threads and across shard splits — the same contract the
//!   sharded scorecards pin.
//! - **The timing plane** — hierarchical phase spans
//!   ([`SpanNode`]) with nanosecond totals, self/child splits, and a
//!   per-scenario heaviest-first ranking. This plane is honest about
//!   being non-deterministic and never appears in byte-pinned JSON.
//!
//! Both planes flow through a [`Collector`], the handle engines and
//! tuners accept. The default collector is off: every recording call
//! is an early return on a `None` state with no clock reads, no
//! allocation, and no locking, so un-instrumented runs pay nothing
//! (the `fleet_hotpath` bench pins this). [`Collector::report`]
//! assembles a [`RunReport`] — both planes in one JSON document — for
//! the `--report <path>` flags on the examples.

pub mod collector;
pub mod json;
pub mod ledger;
pub mod report;
pub mod spans;

pub use collector::{Collector, SpanGuard};
pub use ledger::Ledger;
pub use report::RunReport;
pub use spans::{build_tree, format_ns, scenario_top, ScenarioTiming, SpanNode, SpanRecord};
