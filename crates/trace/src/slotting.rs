//! Discretization of a trace into `N` equal prediction slots per day.
//!
//! This module implements the slot semantics of the paper's Fig. 4: each
//! slot contains `M` raw samples; the sample at the slot boundary is the
//! value the predictor observes (`e(i, j)` / `ẽ(j)`), the mean over the
//! slot's samples is `ē`, and the slot energy is `ē × T`.

use crate::error::TraceError;
use crate::time::SlotsPerDay;
use crate::trace::PowerTrace;
use std::fmt;

/// Identifies one slot of one day.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlotId {
    /// 0-based day index.
    pub day: u32,
    /// 0-based slot index within the day, `< N`.
    pub slot: u32,
}

impl SlotId {
    /// Creates a slot id.
    pub fn new(day: u32, slot: u32) -> Self {
        SlotId { day, slot }
    }

    /// The slot immediately after this one, wrapping into the next day.
    pub fn next(self, slots_per_day: usize) -> SlotId {
        if (self.slot as usize) + 1 == slots_per_day {
            SlotId::new(self.day + 1, 0)
        } else {
            SlotId::new(self.day, self.slot + 1)
        }
    }

    /// The flat index of this slot counted from day 0 slot 0.
    pub fn flat(self, slots_per_day: usize) -> usize {
        self.day as usize * slots_per_day + self.slot as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}s{}", self.day, self.slot)
    }
}

/// A read-only view of a [`PowerTrace`] discretized into `N` slots per day.
///
/// The view pre-computes, once, the two per-slot series every evaluation
/// needs (slot-start sample and mean slot power), so all accessors are
/// O(1).
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_trace::{PowerTrace, Resolution, SlotsPerDay, SlotView};
///
/// // One day of 5-minute samples ramping 0,1,2,...
/// let samples: Vec<f64> = (0..288).map(f64::from).collect();
/// let trace = PowerTrace::new("ramp", Resolution::FIVE_MINUTES, samples)?;
/// let view = SlotView::new(&trace, SlotsPerDay::new(48)?)?;
///
/// // Slot 0 holds samples 0..6: start sample 0, mean 2.5.
/// assert_eq!(view.start_sample(0, 0), 0.0);
/// assert_eq!(view.mean_power(0, 0), 2.5);
/// assert_eq!(view.energy_j(0, 0), 2.5 * 1800.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SlotView<'a> {
    trace: &'a PowerTrace,
    n: SlotsPerDay,
    samples_per_slot: usize,
    /// Per-slot boundary sample, flat-indexed (day*N + slot).
    starts: Vec<f64>,
    /// Per-slot mean power, flat-indexed.
    means: Vec<f64>,
    /// Largest mean slot power over the whole view.
    peak_mean: f64,
}

impl<'a> SlotView<'a> {
    /// Builds a slot view of `trace` with `n` slots per day.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::IncompatibleSlots`] if the slot duration is
    /// not a whole multiple of the trace resolution (e.g. `N = 288`
    /// requested of a 5-minute trace is fine — exactly 1 sample per slot —
    /// but `N = 288` of a 7.5-minute trace is not).
    pub fn new(trace: &'a PowerTrace, n: SlotsPerDay) -> Result<Self, TraceError> {
        let slot_seconds = n.slot_seconds();
        let res = trace.resolution().as_seconds();
        if !slot_seconds.is_multiple_of(res) {
            return Err(TraceError::IncompatibleSlots {
                n: n.get() as u32,
                resolution_seconds: res,
            });
        }
        let samples_per_slot = (slot_seconds / res) as usize;
        let total_slots = trace.days() * n.get();
        let mut starts = Vec::with_capacity(total_slots);
        let mut means = Vec::with_capacity(total_slots);
        let mut peak_mean = 0.0_f64;
        for chunk in trace.samples().chunks_exact(samples_per_slot) {
            starts.push(chunk[0]);
            let mean = chunk.iter().sum::<f64>() / samples_per_slot as f64;
            peak_mean = peak_mean.max(mean);
            means.push(mean);
        }
        Ok(SlotView {
            trace,
            n,
            samples_per_slot,
            starts,
            means,
            peak_mean,
        })
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a PowerTrace {
        self.trace
    }

    /// Slots per day (`N`).
    pub fn slots_per_day(&self) -> usize {
        self.n.get()
    }

    /// The validated slot count.
    pub fn n(&self) -> SlotsPerDay {
        self.n
    }

    /// Number of complete days in the view.
    pub fn days(&self) -> usize {
        self.trace.days()
    }

    /// Total number of slots (`days × N`).
    pub fn total_slots(&self) -> usize {
        self.starts.len()
    }

    /// Raw samples contained in one slot (`M` in the paper's Fig. 4).
    pub fn samples_per_slot(&self) -> usize {
        self.samples_per_slot
    }

    /// Slot duration in seconds (`T`, the prediction horizon).
    pub fn slot_seconds(&self) -> f64 {
        self.n.slot_seconds_f64()
    }

    /// The measured power sample at the *start* of the slot — the value
    /// the prediction algorithm observes (`e(i, j)` / `ẽ(j)`).
    ///
    /// # Panics
    ///
    /// Panics if `day`/`slot` are out of range.
    pub fn start_sample(&self, day: usize, slot: usize) -> f64 {
        assert!(slot < self.n.get(), "slot {slot} out of range");
        self.starts[day * self.n.get() + slot]
    }

    /// The mean power over the slot (`ē`), the reference the paper argues
    /// prediction error should be measured against (Eq. 7).
    ///
    /// # Panics
    ///
    /// Panics if `day`/`slot` are out of range.
    pub fn mean_power(&self, day: usize, slot: usize) -> f64 {
        assert!(slot < self.n.get(), "slot {slot} out of range");
        self.means[day * self.n.get() + slot]
    }

    /// The energy received during the slot in joules: `ē × T`.
    ///
    /// # Panics
    ///
    /// Panics if `day`/`slot` are out of range.
    pub fn energy_j(&self, day: usize, slot: usize) -> f64 {
        self.mean_power(day, slot) * self.slot_seconds()
    }

    /// Slot-start samples as a flat series (day-major).
    pub fn start_series(&self) -> &[f64] {
        &self.starts
    }

    /// Mean slot powers as a flat series (day-major).
    pub fn mean_series(&self) -> &[f64] {
        &self.means
    }

    /// The largest mean slot power in the view; the paper's region of
    /// interest keeps slots whose mean is at least 10% of this peak.
    pub fn peak_mean_power(&self) -> f64 {
        self.peak_mean
    }

    /// Iterates over all slots in time order, yielding
    /// `(SlotId, start_sample, mean_power)`.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, f64, f64)> + '_ {
        let n = self.n.get();
        self.starts
            .iter()
            .zip(self.means.iter())
            .enumerate()
            .map(move |(flat, (&start, &mean))| {
                (
                    SlotId::new((flat / n) as u32, (flat % n) as u32),
                    start,
                    mean,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Resolution;

    fn ramp_trace(days: usize) -> PowerTrace {
        let samples: Vec<f64> = (0..days * 288).map(|i| (i % 288) as f64).collect();
        PowerTrace::new("ramp", Resolution::FIVE_MINUTES, samples).unwrap()
    }

    #[test]
    fn slot_id_next_wraps_day() {
        let id = SlotId::new(3, 47);
        assert_eq!(id.next(48), SlotId::new(4, 0));
        assert_eq!(SlotId::new(3, 10).next(48), SlotId::new(3, 11));
    }

    #[test]
    fn slot_id_flat_roundtrip() {
        let id = SlotId::new(2, 5);
        assert_eq!(id.flat(48), 2 * 48 + 5);
        assert_eq!(id.to_string(), "d2s5");
    }

    #[test]
    fn view_rejects_incompatible_n() {
        let t = ramp_trace(1);
        // N=1440 would need 1-minute samples.
        let err = SlotView::new(&t, SlotsPerDay::new(1440).unwrap()).unwrap_err();
        assert!(matches!(err, TraceError::IncompatibleSlots { .. }));
    }

    #[test]
    fn view_n_equal_to_samples_per_day_is_identity() {
        let t = ramp_trace(1);
        let v = SlotView::new(&t, SlotsPerDay::new(288).unwrap()).unwrap();
        assert_eq!(v.samples_per_slot(), 1);
        for s in 0..288 {
            assert_eq!(v.start_sample(0, s), s as f64);
            assert_eq!(v.mean_power(0, s), s as f64);
        }
    }

    #[test]
    fn slot_mean_and_start_are_correct() {
        let t = ramp_trace(2);
        let v = SlotView::new(&t, SlotsPerDay::new(48).unwrap()).unwrap();
        assert_eq!(v.samples_per_slot(), 6);
        // Slot 3 of day 1 holds samples 18..24 (values 18..=23): mean 20.5.
        assert_eq!(v.start_sample(1, 3), 18.0);
        assert_eq!(v.mean_power(1, 3), 20.5);
        assert_eq!(v.energy_j(1, 3), 20.5 * 1800.0);
    }

    #[test]
    fn energy_is_conserved_across_slotting() {
        let t = ramp_trace(3);
        for n in [288u32, 96, 48, 24] {
            let v = SlotView::new(&t, SlotsPerDay::new(n).unwrap()).unwrap();
            let slot_total: f64 = (0..v.days())
                .flat_map(|d| (0..v.slots_per_day()).map(move |s| (d, s)))
                .map(|(d, s)| v.energy_j(d, s))
                .sum();
            let diff = (slot_total - t.total_energy_j()).abs();
            assert!(diff < 1e-6 * t.total_energy_j().max(1.0), "N={n}: {diff}");
        }
    }

    #[test]
    fn peak_mean_is_max_of_means() {
        let t = ramp_trace(1);
        let v = SlotView::new(&t, SlotsPerDay::new(48).unwrap()).unwrap();
        let max = v
            .mean_series()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(v.peak_mean_power(), max);
    }

    #[test]
    fn iter_yields_all_slots_in_order() {
        let t = ramp_trace(2);
        let v = SlotView::new(&t, SlotsPerDay::new(24).unwrap()).unwrap();
        let ids: Vec<SlotId> = v.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids.len(), 48);
        assert_eq!(ids[0], SlotId::new(0, 0));
        assert_eq!(ids[23], SlotId::new(0, 23));
        assert_eq!(ids[24], SlotId::new(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn start_sample_panics_out_of_range() {
        let t = ramp_trace(1);
        let v = SlotView::new(&t, SlotsPerDay::new(48).unwrap()).unwrap();
        let _ = v.start_sample(0, 48);
    }
}
