//! A minimal self-describing text format for power traces.
//!
//! The format is one `f64` sample per line, preceded by two header lines:
//!
//! ```text
//! # label=SPMD
//! # resolution_s=300
//! 0.0
//! 12.5
//! ...
//! ```
//!
//! It intentionally mirrors how NREL MIDC exports are commonly flattened
//! for embedded-systems studies: a plain column of power values at a fixed
//! cadence.

use crate::error::TraceError;
use crate::time::Resolution;
use crate::trace::PowerTrace;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes `trace` to `writer` in the trace CSV format.
///
/// The `writer` is taken by value; pass `&mut writer` to keep ownership
/// (every `&mut W where W: Write` is itself `Write`).
///
/// # Errors
///
/// Propagates I/O errors as [`TraceError::Io`].
pub fn write_trace<W: Write>(mut writer: W, trace: &PowerTrace) -> Result<(), TraceError> {
    writeln!(writer, "# label={}", trace.label())?;
    writeln!(writer, "# resolution_s={}", trace.resolution().as_seconds())?;
    for sample in trace.samples() {
        // 17 significant digits round-trips f64 exactly.
        writeln!(writer, "{sample:.17e}")?;
    }
    Ok(())
}

/// Reads a trace from `reader` in the trace CSV format.
///
/// The `reader` is taken by value; pass `&mut reader` to keep ownership.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] for malformed headers or samples,
/// [`TraceError::Io`] for I/O failures, and the usual construction errors
/// if the sample set is invalid.
pub fn read_trace<R: Read>(reader: R) -> Result<PowerTrace, TraceError> {
    let buf = BufReader::new(reader);
    let mut label: Option<String> = None;
    let mut resolution: Option<Resolution> = None;
    let mut samples = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(value) = rest.strip_prefix("label=") {
                label = Some(value.to_string());
            } else if let Some(value) = rest.strip_prefix("resolution_s=") {
                let seconds: u32 = value.parse().map_err(|_| TraceError::Parse {
                    line: line_no,
                    message: format!("invalid resolution value {value:?}"),
                })?;
                resolution = Some(Resolution::from_seconds(seconds)?);
            }
            continue;
        }
        let value: f64 = line.parse().map_err(|_| TraceError::Parse {
            line: line_no,
            message: format!("invalid sample {line:?}"),
        })?;
        samples.push(value);
    }
    let resolution = resolution.ok_or_else(|| TraceError::Parse {
        line: 0,
        message: "missing '# resolution_s=' header".to_string(),
    })?;
    PowerTrace::new(label.unwrap_or_default(), resolution, samples)
}

/// Writes `trace` to the file at `path`.
///
/// # Errors
///
/// Propagates I/O errors as [`TraceError::Io`].
pub fn save(path: impl AsRef<Path>, trace: &PowerTrace) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    write_trace(std::io::BufWriter::new(file), trace)
}

/// Loads a trace from the file at `path`.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load(path: impl AsRef<Path>) -> Result<PowerTrace, TraceError> {
    read_trace(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> PowerTrace {
        let samples: Vec<f64> = (0..24).map(|i| i as f64 * 1.5 + 0.123456789).collect();
        PowerTrace::new("round-trip", Resolution::from_minutes(60).unwrap(), samples).unwrap()
    }

    #[test]
    fn round_trip_preserves_trace_exactly() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn read_rejects_missing_resolution() {
        let text = "# label=x\n1.0\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }));
    }

    #[test]
    fn read_rejects_bad_sample() {
        let text = "# resolution_s=3600\nnot-a-number\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
    }

    #[test]
    fn read_skips_blank_lines() {
        let mut text = String::from("# label=t\n# resolution_s=3600\n\n");
        for i in 0..24 {
            text.push_str(&format!("{i}\n\n"));
        }
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 24);
        assert_eq!(trace.label(), "t");
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join("solar_trace_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let trace = sample_trace();
        save(&path, &trace).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }
}
