//! The validated power time-series container.

use crate::error::TraceError;
use crate::time::Resolution;
use std::fmt;

/// An owned sequence of equally spaced instantaneous power samples covering
/// a whole number of days.
///
/// Samples are non-negative, finite `f64` values in a caller-chosen power
/// unit (W, W/m², mW — the prediction pipeline is scale-free, see the
/// paper's MAPE discussion). The first sample of the trace is the sample at
/// local midnight of day 0.
///
/// Construction validates every sample once so the rest of the workspace
/// can rely on the invariants without re-checking.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_trace::{PowerTrace, Resolution};
///
/// let res = Resolution::from_minutes(60)?;
/// let trace = PowerTrace::new("flat", res, vec![100.0; 48])?;
/// assert_eq!(trace.days(), 2);
/// assert_eq!(trace.total_energy_j(), 100.0 * 3600.0 * 48.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerTrace {
    label: String,
    resolution: Resolution,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// Creates a trace from raw samples, validating that the sample count
    /// is a non-zero whole number of days and that every sample is finite
    /// and non-negative.
    ///
    /// # Errors
    ///
    /// * [`TraceError::TooShort`] if fewer than one day of samples is given.
    /// * [`TraceError::PartialDay`] if the length is not a multiple of
    ///   `resolution.samples_per_day()`.
    /// * [`TraceError::NegativeSample`] / [`TraceError::NonFiniteSample`]
    ///   for invalid sample values.
    pub fn new(
        label: impl Into<String>,
        resolution: Resolution,
        samples: Vec<f64>,
    ) -> Result<Self, TraceError> {
        let spd = resolution.samples_per_day();
        if samples.len() < spd {
            return Err(TraceError::TooShort {
                provided: samples.len(),
                required: spd,
            });
        }
        if !samples.len().is_multiple_of(spd) {
            return Err(TraceError::PartialDay {
                provided: samples.len(),
                samples_per_day: spd,
            });
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() {
                return Err(TraceError::NonFiniteSample { index });
            }
            if value < 0.0 {
                return Err(TraceError::NegativeSample { index, value });
            }
        }
        Ok(PowerTrace {
            label: label.into(),
            resolution,
            samples,
        })
    }

    /// The human-readable label of this trace (e.g. the site code).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The sampling resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// All samples, oldest first.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace holds no samples. Note that construction
    /// guarantees at least one full day, so this is only `false` for
    /// constructed traces; it exists for API completeness.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples in one day of this trace.
    pub fn samples_per_day(&self) -> usize {
        self.resolution.samples_per_day()
    }

    /// Number of complete days covered.
    pub fn days(&self) -> usize {
        self.samples.len() / self.samples_per_day()
    }

    /// The samples of day `day` (0-based), or `None` past the end.
    pub fn day(&self, day: usize) -> Option<&[f64]> {
        let spd = self.samples_per_day();
        let start = day.checked_mul(spd)?;
        self.samples.get(start..start + spd)
    }

    /// The sample at (`day`, `index_in_day`), or `None` out of range.
    pub fn get(&self, day: usize, index_in_day: usize) -> Option<f64> {
        if index_in_day >= self.samples_per_day() {
            return None;
        }
        self.samples
            .get(day * self.samples_per_day() + index_in_day)
            .copied()
    }

    /// Iterates over whole days as sample slices.
    pub fn iter_days(&self) -> impl Iterator<Item = &[f64]> {
        self.samples.chunks_exact(self.samples_per_day())
    }

    /// Total energy of the trace in joules (power unit × seconds):
    /// `Σ sample × resolution_seconds`.
    pub fn total_energy_j(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.resolution.as_seconds_f64()
    }

    /// The largest sample in the trace.
    pub fn peak_power(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Returns a new trace containing only days `range` (0-based,
    /// half-open), with the same label and resolution.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TooShort`] if the range is empty or out of
    /// bounds.
    pub fn slice_days(&self, range: std::ops::Range<usize>) -> Result<PowerTrace, TraceError> {
        let spd = self.samples_per_day();
        if range.start >= range.end || range.end > self.days() {
            return Err(TraceError::TooShort {
                provided: 0,
                required: spd,
            });
        }
        Ok(PowerTrace {
            label: self.label.clone(),
            resolution: self.resolution,
            samples: self.samples[range.start * spd..range.end * spd].to_vec(),
        })
    }

    /// Consumes the trace and returns the raw sample vector.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }
}

impl fmt::Display for PowerTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} days @ {}, {} samples)",
            self.label,
            self.days(),
            self.resolution,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hourly() -> Resolution {
        Resolution::from_minutes(60).unwrap()
    }

    #[test]
    fn new_accepts_whole_days() {
        let t = PowerTrace::new("t", hourly(), vec![1.0; 24]).unwrap();
        assert_eq!(t.days(), 1);
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
    }

    #[test]
    fn new_rejects_partial_day() {
        let err = PowerTrace::new("t", hourly(), vec![1.0; 25]).unwrap_err();
        assert!(matches!(err, TraceError::PartialDay { .. }));
    }

    #[test]
    fn new_rejects_short_trace() {
        let err = PowerTrace::new("t", hourly(), vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TraceError::TooShort { .. }));
    }

    #[test]
    fn new_rejects_negative_and_non_finite() {
        let mut s = vec![1.0; 24];
        s[5] = -0.1;
        assert!(matches!(
            PowerTrace::new("t", hourly(), s).unwrap_err(),
            TraceError::NegativeSample { index: 5, .. }
        ));
        let mut s = vec![1.0; 24];
        s[7] = f64::NAN;
        assert!(matches!(
            PowerTrace::new("t", hourly(), s).unwrap_err(),
            TraceError::NonFiniteSample { index: 7 }
        ));
    }

    #[test]
    fn day_accessors() {
        let mut s = vec![0.0; 48];
        s[24] = 42.0;
        let t = PowerTrace::new("t", hourly(), s).unwrap();
        assert_eq!(t.day(1).unwrap()[0], 42.0);
        assert_eq!(t.get(1, 0), Some(42.0));
        assert_eq!(t.get(1, 24), None);
        assert_eq!(t.get(2, 0), None);
        assert!(t.day(2).is_none());
        assert_eq!(t.iter_days().count(), 2);
    }

    #[test]
    fn energy_and_peak() {
        let t = PowerTrace::new("t", hourly(), vec![2.0; 24]).unwrap();
        assert_eq!(t.total_energy_j(), 2.0 * 3600.0 * 24.0);
        assert_eq!(t.peak_power(), 2.0);
    }

    #[test]
    fn slice_days_extracts_range() {
        let mut s = vec![0.0; 72];
        s[24..48].fill(5.0);
        let t = PowerTrace::new("t", hourly(), s).unwrap();
        let mid = t.slice_days(1..2).unwrap();
        assert_eq!(mid.days(), 1);
        assert!(mid.samples().iter().all(|&v| v == 5.0));
        assert!(t.slice_days(2..2).is_err());
        assert!(t.slice_days(1..4).is_err());
    }

    #[test]
    fn display_mentions_label_and_days() {
        let t = PowerTrace::new("site-x", hourly(), vec![0.0; 24]).unwrap();
        let s = t.to_string();
        assert!(s.contains("site-x"));
        assert!(s.contains("1 days") || s.contains("1 day"));
    }
}
