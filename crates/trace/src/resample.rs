//! Resolution conversion for traces.
//!
//! The paper's data sets come at 1- and 5-minute resolutions; evaluating
//! `N = 288` on a 5-minute trace or deriving lower-rate data sets requires
//! averaging down-sampling, which this module provides. (Energy is
//! conserved because down-sampling averages power over the merged
//! interval.)

use crate::error::TraceError;
use crate::time::Resolution;
use crate::trace::PowerTrace;

/// Down-samples a trace by an integer `factor`, replacing each group of
/// `factor` consecutive samples by their mean.
///
/// Energy is conserved: the mean power over the merged interval times the
/// longer period equals the sum of the original energies.
///
/// # Errors
///
/// Returns [`TraceError::InvalidResampleFactor`] if `factor` is zero or
/// does not divide the samples-per-day of the trace, or
/// [`TraceError::InvalidResolution`] if the resulting period is invalid.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_trace::{resample, PowerTrace, Resolution};
///
/// let one_min: Vec<f64> = (0..1440).map(|i| (i % 10) as f64).collect();
/// let trace = PowerTrace::new("t", Resolution::ONE_MINUTE, one_min)?;
/// let five_min = resample::downsample(&trace, 5)?;
/// assert_eq!(five_min.resolution(), Resolution::FIVE_MINUTES);
/// assert_eq!(five_min.len(), 288);
/// # Ok(())
/// # }
/// ```
pub fn downsample(trace: &PowerTrace, factor: u32) -> Result<PowerTrace, TraceError> {
    if factor == 0 || !trace.samples_per_day().is_multiple_of(factor as usize) {
        return Err(TraceError::InvalidResampleFactor { factor });
    }
    let new_res = Resolution::from_seconds(trace.resolution().as_seconds() * factor)?;
    let samples: Vec<f64> = trace
        .samples()
        .chunks_exact(factor as usize)
        .map(|chunk| chunk.iter().sum::<f64>() / factor as f64)
        .collect();
    PowerTrace::new(trace.label(), new_res, samples)
}

/// Converts a trace to the requested `target` resolution by averaging
/// down-sampling.
///
/// # Errors
///
/// Returns [`TraceError::InvalidResampleFactor`] if `target` is finer than
/// the trace resolution or not an integer multiple of it.
pub fn to_resolution(trace: &PowerTrace, target: Resolution) -> Result<PowerTrace, TraceError> {
    let from = trace.resolution().as_seconds();
    let to = target.as_seconds();
    if !to.is_multiple_of(from) {
        return Err(TraceError::InvalidResampleFactor { factor: 0 });
    }
    downsample(trace, to / from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute_trace() -> PowerTrace {
        let samples: Vec<f64> = (0..1440).map(|i| i as f64).collect();
        PowerTrace::new("m", Resolution::ONE_MINUTE, samples).unwrap()
    }

    #[test]
    fn downsample_averages_groups() {
        let t = minute_trace();
        let d = downsample(&t, 5).unwrap();
        // First group: mean of 0..5 = 2.0.
        assert_eq!(d.samples()[0], 2.0);
        assert_eq!(d.samples()[1], 7.0);
        assert_eq!(d.len(), 288);
    }

    #[test]
    fn downsample_conserves_energy() {
        let t = minute_trace();
        for factor in [2u32, 3, 5, 10, 60] {
            let d = downsample(&t, factor).unwrap();
            let diff = (d.total_energy_j() - t.total_energy_j()).abs();
            assert!(diff < 1e-6 * t.total_energy_j(), "factor {factor}");
        }
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let t = minute_trace();
        let d = downsample(&t, 1).unwrap();
        assert_eq!(d.samples(), t.samples());
    }

    #[test]
    fn downsample_rejects_bad_factor() {
        let t = minute_trace();
        assert!(downsample(&t, 0).is_err());
        assert!(downsample(&t, 7).is_err()); // 1440 % 7 != 0
    }

    #[test]
    fn to_resolution_converts() {
        let t = minute_trace();
        let d = to_resolution(&t, Resolution::FIVE_MINUTES).unwrap();
        assert_eq!(d.resolution(), Resolution::FIVE_MINUTES);
        // Upsampling is rejected.
        let five = d;
        assert!(to_resolution(&five, Resolution::ONE_MINUTE).is_err());
    }
}
