//! Time quantities used throughout the workspace.
//!
//! Two newtypes keep the two easily confused "per-day" quantities apart:
//! [`Resolution`] is the spacing between raw samples, while [`SlotsPerDay`]
//! is the prediction discretization `N` from the paper. Both are validated
//! at construction so downstream code never has to re-check divisibility.

use crate::error::TraceError;
use std::fmt;

/// Number of seconds in one day.
pub const SECONDS_PER_DAY: u32 = 86_400;

/// Sampling resolution of a trace: the number of seconds between two
/// consecutive samples.
///
/// A valid resolution is positive and divides a day evenly, so every trace
/// day contains a whole number of samples. The paper's data sets use 1- and
/// 5-minute resolutions ([`Resolution::ONE_MINUTE`],
/// [`Resolution::FIVE_MINUTES`]).
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_trace::Resolution;
///
/// let res = Resolution::from_minutes(5)?;
/// assert_eq!(res.as_seconds(), 300);
/// assert_eq!(res.samples_per_day(), 288);
/// # Ok(())
/// # }
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Resolution(u32);

impl Resolution {
    /// One-minute resolution (1440 samples/day), as in the paper's ORNL,
    /// HSU, NPCS and PFCI data sets.
    pub const ONE_MINUTE: Resolution = Resolution(60);
    /// Five-minute resolution (288 samples/day), as in the paper's SPMD and
    /// ECSU data sets.
    pub const FIVE_MINUTES: Resolution = Resolution(300);

    /// Creates a resolution from a period in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidResolution`] if `seconds` is zero or
    /// does not divide 86 400 (the number of seconds in a day).
    pub fn from_seconds(seconds: u32) -> Result<Self, TraceError> {
        if seconds == 0 || !SECONDS_PER_DAY.is_multiple_of(seconds) {
            return Err(TraceError::InvalidResolution { seconds });
        }
        Ok(Resolution(seconds))
    }

    /// Creates a resolution from a period in minutes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidResolution`] if the period is zero or
    /// does not divide a day evenly.
    pub fn from_minutes(minutes: u32) -> Result<Self, TraceError> {
        minutes
            .checked_mul(60)
            .ok_or(TraceError::InvalidResolution { seconds: u32::MAX })
            .and_then(Self::from_seconds)
    }

    /// The sample period in seconds.
    pub const fn as_seconds(self) -> u32 {
        self.0
    }

    /// The sample period in seconds as an `f64`, convenient for energy
    /// integration (`energy = power × seconds`).
    pub const fn as_seconds_f64(self) -> f64 {
        self.0 as f64
    }

    /// Number of samples in one complete day at this resolution.
    pub const fn samples_per_day(self) -> usize {
        (SECONDS_PER_DAY / self.0) as usize
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(60) {
            write!(f, "{} min", self.0 / 60)
        } else {
            write!(f, "{} s", self.0)
        }
    }
}

/// The prediction discretization `N`: the number of equal-duration slots a
/// day is divided into.
///
/// The paper evaluates `N ∈ {288, 96, 72, 48, 24}`; the slot length
/// `T = 86 400 / N` seconds is the *prediction horizon*.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_trace::SlotsPerDay;
///
/// let n = SlotsPerDay::new(48)?;
/// assert_eq!(n.slot_seconds(), 1800); // 30-minute horizon
/// # Ok(())
/// # }
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlotsPerDay(u32);

impl SlotsPerDay {
    /// The paper's evaluated sampling rates, highest first.
    pub const PAPER_VALUES: [u32; 5] = [288, 96, 72, 48, 24];

    /// Creates a slot count, validating that it is at least 2 and divides a
    /// day evenly.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSlots`] if `n < 2` or `86 400 % n != 0`.
    pub fn new(n: u32) -> Result<Self, TraceError> {
        if n < 2 || !SECONDS_PER_DAY.is_multiple_of(n) {
            return Err(TraceError::InvalidSlots { n });
        }
        Ok(SlotsPerDay(n))
    }

    /// The number of slots per day.
    pub const fn get(self) -> usize {
        self.0 as usize
    }

    /// The slot duration (prediction horizon) in seconds.
    pub const fn slot_seconds(self) -> u32 {
        SECONDS_PER_DAY / self.0
    }

    /// The slot duration in seconds as `f64`.
    pub const fn slot_seconds_f64(self) -> f64 {
        (SECONDS_PER_DAY / self.0) as f64
    }
}

impl fmt::Display for SlotsPerDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_validates_divisibility() {
        assert!(Resolution::from_seconds(60).is_ok());
        assert!(Resolution::from_seconds(300).is_ok());
        assert!(Resolution::from_seconds(0).is_err());
        assert!(Resolution::from_seconds(7).is_err()); // 86400 % 7 != 0
    }

    #[test]
    fn resolution_samples_per_day() {
        assert_eq!(Resolution::ONE_MINUTE.samples_per_day(), 1440);
        assert_eq!(Resolution::FIVE_MINUTES.samples_per_day(), 288);
        assert_eq!(Resolution::from_minutes(30).unwrap().samples_per_day(), 48);
    }

    #[test]
    fn resolution_from_minutes_overflow_is_error() {
        assert!(Resolution::from_minutes(u32::MAX).is_err());
    }

    #[test]
    fn resolution_display() {
        assert_eq!(Resolution::ONE_MINUTE.to_string(), "1 min");
        assert_eq!(Resolution::from_seconds(30).unwrap().to_string(), "30 s");
    }

    #[test]
    fn slots_per_day_validates() {
        for n in SlotsPerDay::PAPER_VALUES {
            assert!(SlotsPerDay::new(n).is_ok(), "N={n} should be valid");
        }
        assert!(SlotsPerDay::new(0).is_err());
        assert!(SlotsPerDay::new(1).is_err());
        assert!(SlotsPerDay::new(7).is_err());
    }

    #[test]
    fn slot_seconds_matches_paper_horizons() {
        assert_eq!(SlotsPerDay::new(288).unwrap().slot_seconds(), 300);
        assert_eq!(SlotsPerDay::new(48).unwrap().slot_seconds(), 1800);
        assert_eq!(SlotsPerDay::new(24).unwrap().slot_seconds(), 3600);
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Resolution::ONE_MINUTE < Resolution::FIVE_MINUTES);
        assert!(SlotsPerDay::new(24).unwrap() < SlotsPerDay::new(288).unwrap());
    }
}
