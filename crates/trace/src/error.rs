//! Error type for trace construction, slotting and I/O.

use std::fmt;

/// Errors produced by the `solar-trace` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The sample period is zero or does not divide a day evenly.
    InvalidResolution {
        /// Offending period in seconds.
        seconds: u32,
    },
    /// The slot count `N` is below 2 or does not divide a day evenly.
    InvalidSlots {
        /// Offending slot count.
        n: u32,
    },
    /// A trace must contain at least one complete day of samples.
    TooShort {
        /// Number of samples provided.
        provided: usize,
        /// Samples required for one day at the given resolution.
        required: usize,
    },
    /// The trace length is not a whole number of days.
    PartialDay {
        /// Number of samples provided.
        provided: usize,
        /// Samples per day at the trace resolution.
        samples_per_day: usize,
    },
    /// A sample is negative (power cannot be negative).
    NegativeSample {
        /// Index of the offending sample.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// A sample is NaN or infinite.
    NonFiniteSample {
        /// Index of the offending sample.
        index: usize,
    },
    /// The slot duration is not a multiple of the trace resolution, so
    /// slots cannot be formed from whole samples.
    IncompatibleSlots {
        /// Requested slot count.
        n: u32,
        /// Trace resolution in seconds.
        resolution_seconds: u32,
    },
    /// The requested down-sampling factor is invalid for this trace.
    InvalidResampleFactor {
        /// Requested factor.
        factor: u32,
    },
    /// An I/O error during CSV reading or writing.
    Io(std::io::Error),
    /// A malformed line in a trace CSV file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidResolution { seconds } => {
                write!(
                    f,
                    "invalid resolution: {seconds} s must be positive and divide 86400"
                )
            }
            TraceError::InvalidSlots { n } => {
                write!(
                    f,
                    "invalid slot count: N={n} must be at least 2 and divide 86400"
                )
            }
            TraceError::TooShort { provided, required } => {
                write!(f, "trace too short: {provided} samples provided, at least {required} (one day) required")
            }
            TraceError::PartialDay {
                provided,
                samples_per_day,
            } => {
                write!(f, "trace length {provided} is not a whole number of days ({samples_per_day} samples/day)")
            }
            TraceError::NegativeSample { index, value } => {
                write!(f, "negative power sample {value} at index {index}")
            }
            TraceError::NonFiniteSample { index } => {
                write!(f, "non-finite power sample at index {index}")
            }
            TraceError::IncompatibleSlots {
                n,
                resolution_seconds,
            } => {
                write!(
                    f,
                    "slot duration for N={n} is not a multiple of the {resolution_seconds} s resolution"
                )
            }
            TraceError::InvalidResampleFactor { factor } => {
                write!(f, "invalid resample factor {factor}")
            }
            TraceError::Io(err) => write!(f, "trace i/o error: {err}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        TraceError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases: Vec<TraceError> = vec![
            TraceError::InvalidResolution { seconds: 7 },
            TraceError::InvalidSlots { n: 1 },
            TraceError::TooShort {
                provided: 3,
                required: 24,
            },
            TraceError::PartialDay {
                provided: 30,
                samples_per_day: 24,
            },
            TraceError::NegativeSample {
                index: 2,
                value: -1.0,
            },
            TraceError::NonFiniteSample { index: 9 },
            TraceError::IncompatibleSlots {
                n: 7,
                resolution_seconds: 300,
            },
            TraceError::InvalidResampleFactor { factor: 0 },
            TraceError::Parse {
                line: 4,
                message: "bad".into(),
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn io_error_has_source() {
        let err = TraceError::from(std::io::Error::other("boom"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
