//! Power time-series substrate for solar harvested-energy prediction.
//!
//! This crate provides the data layer that every other crate in the
//! workspace builds on:
//!
//! * [`PowerTrace`] — an owned, validated sequence of equally spaced
//!   instantaneous power samples (e.g. solar irradiance in W/m² or panel
//!   output in W) together with its sampling [`Resolution`].
//! * [`SlotView`] — a zero-copy discretization of a trace into `N` equal
//!   slots per day, exposing exactly the three per-slot quantities the
//!   DATE'10 paper's evaluation needs: the *slot-start sample* `e(i, j)`,
//!   the *mean slot power* `ē`, and the *slot energy* `ē × T`.
//! * [`resample`] — averaging down-sampler used to derive 5-minute data
//!   from 1-minute data.
//! * [`stats`] — summary statistics (peak, daily energy, variability
//!   indices) used to characterise data sets (Table I context).
//! * [`csv`] — a minimal self-describing text format for traces.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use solar_trace::{PowerTrace, Resolution, SlotsPerDay, SlotView};
//!
//! // Two days of 1-hour samples: a crude "solar" profile.
//! let day: Vec<f64> = (0..24)
//!     .map(|h| (((h as f64 - 12.0) / 6.0).cos().max(0.0)) * 800.0)
//!     .collect();
//! let mut samples = day.clone();
//! samples.extend_from_slice(&day);
//!
//! let trace = PowerTrace::new("toy", Resolution::from_minutes(60)?, samples)?;
//! assert_eq!(trace.days(), 2);
//!
//! // Discretize into N = 12 slots per day (2-hour slots).
//! let view = SlotView::new(&trace, SlotsPerDay::new(12)?)?;
//! let noon = view.mean_power(0, 6);
//! assert!(noon > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod csv;
mod error;
pub mod hash;
pub mod resample;
mod slotting;
pub mod stats;
mod time;
mod trace;

pub use error::TraceError;
pub use slotting::{SlotId, SlotView};
pub use time::{Resolution, SlotsPerDay, SECONDS_PER_DAY};
pub use trace::PowerTrace;
