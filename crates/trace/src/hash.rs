//! A stable string hash for deriving RNG seed streams from names.
//!
//! Several layers need "same name ⇒ same `u64`, different names ⇒
//! (almost surely) different `u64`, identical on every platform and
//! release": per-site seed streams in `solar_synth`, per-scenario seeds
//! in `scenario-fleet`. `std::hash` makes no cross-run guarantee, so
//! they share this FNV-1a instead of each carrying their own copy.

/// 64-bit FNV-1a over the bytes of `name`.
pub fn fnv1a(name: &str) -> u64 {
    fnv1a_bytes(name.as_bytes())
}

/// 64-bit FNV-1a over raw bytes — the same stream the string form
/// hashes, exposed for payloads that may not be valid UTF-8 (e.g. the
/// harness artifact checksum, which must hash whatever bytes actually
/// landed on disk, bit-flips and all).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values of the standard 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_names_hash_apart() {
        assert_ne!(fnv1a("alpha"), fnv1a("beta"));
        assert_ne!(fnv1a("alpha"), fnv1a("alpha "));
    }
}
