//! Summary statistics for traces.
//!
//! Used to characterise data sets (the Table I inventory) and to verify
//! that synthetic sites reproduce the qualitative variability ordering of
//! the paper's NREL sites.

use crate::trace::PowerTrace;
use std::fmt;

/// Summary statistics of a power trace.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_trace::{stats::TraceStats, PowerTrace, Resolution};
///
/// let trace = PowerTrace::new("t", Resolution::from_minutes(60)?, vec![10.0; 48])?;
/// let stats = TraceStats::of(&trace);
/// assert_eq!(stats.peak_power, 10.0);
/// assert_eq!(stats.daily_energy_cv, 0.0); // perfectly repeatable days
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceStats {
    /// Number of samples.
    pub observations: usize,
    /// Number of complete days.
    pub days: usize,
    /// Largest sample.
    pub peak_power: f64,
    /// Mean of all samples.
    pub mean_power: f64,
    /// Total energy in joules.
    pub total_energy_j: f64,
    /// Mean daily energy in joules.
    pub mean_daily_energy_j: f64,
    /// Coefficient of variation (σ/μ) of daily energy — the day-to-day
    /// variability that drives how hard a site is to predict.
    pub daily_energy_cv: f64,
    /// Mean absolute sample-to-sample change divided by mean power — the
    /// intra-day "choppiness" that separates MAPE from MAPE′.
    pub ramp_index: f64,
}

impl TraceStats {
    /// Computes statistics of `trace`.
    pub fn of(trace: &PowerTrace) -> TraceStats {
        let samples = trace.samples();
        let observations = samples.len();
        let days = trace.days();
        let peak_power = trace.peak_power();
        let sum: f64 = samples.iter().sum();
        let mean_power = sum / observations as f64;
        let total_energy_j = trace.total_energy_j();

        let daily: Vec<f64> = trace
            .iter_days()
            .map(|d| d.iter().sum::<f64>() * trace.resolution().as_seconds_f64())
            .collect();
        let mean_daily = daily.iter().sum::<f64>() / days as f64;
        let var = daily
            .iter()
            .map(|&e| (e - mean_daily) * (e - mean_daily))
            .sum::<f64>()
            / days as f64;
        let daily_energy_cv = if mean_daily > 0.0 {
            var.sqrt() / mean_daily
        } else {
            0.0
        };

        let ramp_sum: f64 = samples.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        let ramp_index = if mean_power > 0.0 && observations > 1 {
            ramp_sum / (observations - 1) as f64 / mean_power
        } else {
            0.0
        };

        TraceStats {
            observations,
            days,
            peak_power,
            mean_power,
            total_energy_j,
            mean_daily_energy_j: mean_daily,
            daily_energy_cv,
            ramp_index,
        }
    }

    /// Per-day energies in joules, oldest first.
    pub fn daily_energies(trace: &PowerTrace) -> Vec<f64> {
        trace
            .iter_days()
            .map(|d| d.iter().sum::<f64>() * trace.resolution().as_seconds_f64())
            .collect()
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} obs / {} days, peak {:.1}, daily CV {:.3}, ramp {:.4}",
            self.observations, self.days, self.peak_power, self.daily_energy_cv, self.ramp_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Resolution;

    #[test]
    fn constant_trace_has_zero_variability() {
        let t = PowerTrace::new(
            "c",
            Resolution::from_minutes(60).unwrap(),
            vec![5.0; 24 * 4],
        )
        .unwrap();
        let s = TraceStats::of(&t);
        assert_eq!(s.days, 4);
        assert_eq!(s.daily_energy_cv, 0.0);
        assert_eq!(s.ramp_index, 0.0);
        assert_eq!(s.mean_power, 5.0);
        assert_eq!(s.mean_daily_energy_j, 5.0 * 86_400.0);
    }

    #[test]
    fn alternating_days_have_positive_cv() {
        let mut samples = vec![2.0; 24];
        samples.extend(vec![6.0; 24]);
        let t = PowerTrace::new("a", Resolution::from_minutes(60).unwrap(), samples).unwrap();
        let s = TraceStats::of(&t);
        assert!(s.daily_energy_cv > 0.4);
        let daily = TraceStats::daily_energies(&t);
        assert_eq!(daily.len(), 2);
        assert!(daily[1] > daily[0]);
    }

    #[test]
    fn choppier_trace_has_higher_ramp_index() {
        let smooth: Vec<f64> = (0..48).map(|i| 100.0 + i as f64).collect();
        let choppy: Vec<f64> = (0..48)
            .map(|i| if i % 2 == 0 { 50.0 } else { 200.0 })
            .collect();
        let res = Resolution::from_minutes(30).unwrap();
        let rs = TraceStats::of(&PowerTrace::new("s", res, smooth).unwrap());
        let rc = TraceStats::of(&PowerTrace::new("c", res, choppy).unwrap());
        assert!(rc.ramp_index > rs.ramp_index);
    }

    #[test]
    fn display_is_nonempty() {
        let t = PowerTrace::new("c", Resolution::from_minutes(60).unwrap(), vec![1.0; 24]).unwrap();
        assert!(!TraceStats::of(&t).to_string().is_empty());
    }
}
