//! Property-based tests for the trace substrate invariants listed in
//! DESIGN.md §6.

use proptest::prelude::*;
use solar_trace::{resample, PowerTrace, Resolution, SlotView, SlotsPerDay};

/// Strategy: a trace of `days` days at 30-minute resolution with
/// non-negative bounded samples.
fn trace_strategy(max_days: usize) -> impl Strategy<Value = PowerTrace> {
    (1..=max_days).prop_flat_map(|days| {
        proptest::collection::vec(0.0f64..1500.0, days * 48).prop_map(|samples| {
            PowerTrace::new("prop", Resolution::from_minutes(30).unwrap(), samples).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slot_energy_sums_to_trace_energy(trace in trace_strategy(4)) {
        for n in [48u32, 24, 12, 8] {
            let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
            let total: f64 = (0..view.days())
                .flat_map(|d| (0..view.slots_per_day()).map(move |s| (d, s)))
                .map(|(d, s)| view.energy_j(d, s))
                .sum();
            let expect = trace.total_energy_j();
            prop_assert!((total - expect).abs() <= 1e-9 * expect.max(1.0));
        }
    }

    #[test]
    fn slot_mean_is_bounded_by_member_samples(trace in trace_strategy(2)) {
        let view = SlotView::new(&trace, SlotsPerDay::new(12).unwrap()).unwrap();
        let m = view.samples_per_slot();
        for (flat, mean) in view.mean_series().iter().enumerate() {
            let chunk = &trace.samples()[flat * m..(flat + 1) * m];
            let lo = chunk.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(*mean >= lo - 1e-12 && *mean <= hi + 1e-12);
        }
    }

    #[test]
    fn downsample_conserves_energy(trace in trace_strategy(3)) {
        for factor in [2u32, 3, 4, 6] {
            let down = resample::downsample(&trace, factor).unwrap();
            let diff = (down.total_energy_j() - trace.total_energy_j()).abs();
            prop_assert!(diff <= 1e-9 * trace.total_energy_j().max(1.0));
        }
    }

    #[test]
    fn csv_round_trip_is_identity(trace in trace_strategy(2)) {
        let mut buf = Vec::new();
        solar_trace::csv::write_trace(&mut buf, &trace).unwrap();
        let back = solar_trace::csv::read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn start_sample_matches_underlying_trace(trace in trace_strategy(2)) {
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let m = view.samples_per_slot();
        for d in 0..view.days() {
            for s in 0..24 {
                let flat = d * 24 + s;
                prop_assert_eq!(view.start_sample(d, s), trace.samples()[flat * m]);
            }
        }
    }

    #[test]
    fn slice_days_preserves_day_content(trace in trace_strategy(4)) {
        let days = trace.days();
        if days >= 2 {
            let sliced = trace.slice_days(1..days).unwrap();
            prop_assert_eq!(sliced.days(), days - 1);
            prop_assert_eq!(sliced.day(0).unwrap(), trace.day(1).unwrap());
        }
    }
}
