//! Streaming trace generation: slots on demand, bounded memory.
//!
//! [`TraceGenerator::generate_days`] materializes the whole horizon —
//! fine for the paper's 40-day studies, hopeless for multi-year fleet
//! scenarios where a single trace would dominate memory. The streams
//! here reproduce the **exact** sample sequence of the batch path
//! (property-tested bit-equal) while holding only one day of samples at
//! a time:
//!
//! * [`SampleStream`] — raw irradiance samples in trace order;
//! * [`SlotStream`] — [`StreamedSlot`]s at a chosen discretization,
//!   carrying the same `(start_sample, mean_power)` pair a
//!   `solar_trace::SlotView` of the batch trace would expose.
//!
//! Bit-equality holds because both paths run the identical per-day
//! generation core (same RNG draw order) and the slot mean is summed in
//! the same sample order as `SlotView`.

use crate::generator::{DayState, SynthCheckpoint, TraceGenerator};
use crate::lanes::SynthCounters;
use solar_trace::{SlotsPerDay, TraceError};

/// Raw samples of a synthetic trace, produced one day at a time.
///
/// Yields exactly `days × samples_per_day` values, identical to the
/// sample vector of [`TraceGenerator::generate_days`] with the same
/// configuration and seed.
#[derive(Clone, Debug)]
pub struct SampleStream {
    generator: TraceGenerator,
    state: DayState,
    day_buf: Vec<f64>,
    day: usize,
    days: usize,
    idx: usize,
}

impl SampleStream {
    fn new(generator: TraceGenerator, days: usize) -> Result<Self, TraceError> {
        if days == 0 {
            return Err(TraceError::TooShort {
                provided: 0,
                required: generator.config().resolution.samples_per_day(),
            });
        }
        let state = generator.day_state();
        Ok(SampleStream {
            generator,
            state,
            day_buf: Vec::new(),
            day: 0,
            days,
            idx: 0,
        })
    }

    /// Samples each yielded item represents per day.
    pub fn samples_per_day(&self) -> usize {
        self.generator.config().resolution.samples_per_day()
    }
}

impl Iterator for SampleStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.idx == self.day_buf.len() {
            if self.day == self.days {
                return None;
            }
            self.generator
                .generate_day_into(&mut self.state, self.day, &mut self.day_buf);
            self.day += 1;
            self.idx = 0;
        }
        let sample = self.day_buf[self.idx];
        self.idx += 1;
        Some(sample)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let produced = if self.day == 0 {
            0
        } else {
            (self.day - 1) * self.samples_per_day() + self.idx
        };
        let total = self.days * self.samples_per_day();
        (total - produced, Some(total - produced))
    }
}

/// One slot of a streamed trace: the discretized view the evaluation
/// pipeline consumes, matching `solar_trace::SlotView` semantics.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StreamedSlot {
    /// 0-based day.
    pub day: usize,
    /// 0-based slot within the day.
    pub slot: usize,
    /// The measured sample at the slot boundary (what predictors see).
    pub start_sample: f64,
    /// Mean power over the slot's samples (the paper's `ē` reference).
    pub mean_power: f64,
}

/// Slots of a synthetic trace, produced on demand with one day of raw
/// samples buffered at a time.
///
/// For the same `(config, seed, days, n)`, every yielded slot is
/// bit-identical to `SlotView::new(&generator.generate_days(days)?, n)`
/// — the buffered-day memory footprint ([`SlotStream::buffer_bytes`])
/// is what replaces the full-horizon trace allocation.
#[derive(Clone, Debug)]
pub struct SlotStream {
    generator: TraceGenerator,
    state: DayState,
    day_buf: Vec<f64>,
    day: usize,
    days: usize,
    slot: usize,
    n: usize,
    samples_per_slot: usize,
    /// Counter reading at construction: zero for fresh streams,
    /// the checkpoint's cumulative position for resumed ones —
    /// [`SlotStream::counters`] reports work done by *this* stream.
    base: SynthCounters,
}

impl SlotStream {
    fn new(generator: TraceGenerator, days: usize, n: SlotsPerDay) -> Result<Self, TraceError> {
        let res = generator.config().resolution;
        if days == 0 {
            return Err(TraceError::TooShort {
                provided: 0,
                required: res.samples_per_day(),
            });
        }
        let samples_per_slot = Self::samples_per_slot(&generator, n)?;
        let state = generator.day_state();
        Ok(SlotStream {
            generator,
            state,
            day_buf: Vec::new(),
            day: 0,
            days,
            slot: 0,
            n: n.get(),
            samples_per_slot,
            base: SynthCounters::default(),
        })
    }

    fn resume(
        generator: TraceGenerator,
        checkpoint: SynthCheckpoint,
        total_days: usize,
        n: SlotsPerDay,
    ) -> Result<Self, TraceError> {
        let res = generator.config().resolution;
        if total_days <= checkpoint.next_day {
            return Err(TraceError::TooShort {
                provided: total_days * res.samples_per_day(),
                required: (checkpoint.next_day + 1) * res.samples_per_day(),
            });
        }
        let samples_per_slot = Self::samples_per_slot(&generator, n)?;
        let base = checkpoint.state.counters();
        Ok(SlotStream {
            generator,
            state: checkpoint.state,
            day_buf: Vec::new(),
            day: checkpoint.next_day,
            days: total_days,
            slot: 0,
            n: n.get(),
            samples_per_slot,
            base,
        })
    }

    fn samples_per_slot(generator: &TraceGenerator, n: SlotsPerDay) -> Result<usize, TraceError> {
        let res = generator.config().resolution;
        let slot_seconds = n.slot_seconds();
        if !slot_seconds.is_multiple_of(res.as_seconds()) {
            return Err(TraceError::IncompatibleSlots {
                n: n.get() as u32,
                resolution_seconds: res.as_seconds(),
            });
        }
        Ok((slot_seconds / res.as_seconds()) as usize)
    }

    /// Slots per day of the stream.
    pub fn slots_per_day(&self) -> usize {
        self.n
    }

    /// Total slots the stream will yield.
    pub fn total_slots(&self) -> usize {
        self.days * self.n
    }

    /// Peak bytes the stream holds for trace data — one day of raw
    /// samples, regardless of horizon length.
    pub fn buffer_bytes(&self) -> usize {
        self.generator.config().resolution.samples_per_day() * std::mem::size_of::<f64>()
    }

    /// Synthesis-cost counters at the stream's current position —
    /// keystream blocks consumed and normal draws served so far. For
    /// a resumed stream this is the resumed segment's work alone (the
    /// checkpoint's position is subtracted), so per-segment readings
    /// sum exactly to the cold-run total. Read once after draining
    /// (or abandoning) the stream and merge into a run ledger per
    /// work unit; never sample this per slot.
    pub fn counters(&self) -> SynthCounters {
        self.state.counters().since(self.base)
    }

    /// The synthesis resume point at the stream's current position,
    /// or `None` mid-day: checkpoints exist only at day boundaries
    /// (before any slot of a day has been yielded — which includes a
    /// fully drained stream).
    pub fn checkpoint(&self) -> Option<SynthCheckpoint> {
        if self.slot != 0 {
            return None;
        }
        Some(SynthCheckpoint {
            state: self.state.clone(),
            next_day: self.day,
        })
    }
}

impl Iterator for SlotStream {
    type Item = StreamedSlot;

    fn next(&mut self) -> Option<StreamedSlot> {
        if self.slot == 0 {
            if self.day == self.days {
                return None;
            }
            self.generator
                .generate_day_into(&mut self.state, self.day, &mut self.day_buf);
        }
        let start = self.slot * self.samples_per_slot;
        let chunk = &self.day_buf[start..start + self.samples_per_slot];
        // Identical summation order to SlotView::new, so means are
        // bit-equal to the materialized path.
        let mean = chunk.iter().sum::<f64>() / self.samples_per_slot as f64;
        let item = StreamedSlot {
            day: self.day,
            slot: self.slot,
            start_sample: chunk[0],
            mean_power: mean,
        };
        self.slot += 1;
        if self.slot == self.n {
            self.slot = 0;
            self.day += 1;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let produced = self.day * self.n + self.slot;
        let total = self.total_slots();
        (total - produced, Some(total - produced))
    }
}

impl TraceGenerator {
    /// Streams the raw samples of `days` days without materializing the
    /// trace; identical values to [`TraceGenerator::generate_days`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero.
    pub fn sample_stream(&self, days: usize) -> Result<SampleStream, TraceError> {
        SampleStream::new(self.clone(), days)
    }

    /// Streams `days` days discretized into `n` slots per day without
    /// materializing the trace; bit-identical to building a `SlotView`
    /// over the batch-generated trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero or the slot duration is
    /// not a whole multiple of the site resolution.
    pub fn slot_stream(&self, days: usize, n: SlotsPerDay) -> Result<SlotStream, TraceError> {
        SlotStream::new(self.clone(), days, n)
    }

    /// Streams the days `checkpoint.next_day()..total_days` discretized
    /// into `n` slots per day, continuing the keystream from
    /// `checkpoint` — every yielded slot is bit-identical to the
    /// corresponding slot of a fresh [`TraceGenerator::slot_stream`]
    /// over the full horizon, without regenerating the prefix.
    /// [`SlotStream::counters`] on the resumed stream reports the
    /// resumed segment's synthesis work alone.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `total_days` does not extend past the
    /// checkpoint or the slot duration is not a whole multiple of the
    /// site resolution.
    pub fn slot_stream_from(
        &self,
        checkpoint: SynthCheckpoint,
        total_days: usize,
        n: SlotsPerDay,
    ) -> Result<SlotStream, TraceError> {
        SlotStream::resume(self.clone(), checkpoint, total_days, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;
    use solar_trace::{SlotView, SlotsPerDay};

    #[test]
    fn sample_stream_is_bit_equal_to_batch() {
        for (site, seed, days) in [(Site::Pfci, 1u64, 7usize), (Site::Ornl, 99, 3)] {
            let generator = TraceGenerator::new(site.config(), seed);
            let batch = generator.generate_days(days).unwrap();
            let streamed: Vec<f64> = generator.sample_stream(days).unwrap().collect();
            assert_eq!(streamed.len(), batch.samples().len());
            assert!(streamed
                .iter()
                .zip(batch.samples())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn slot_stream_matches_slot_view_bit_for_bit() {
        let generator = TraceGenerator::new(Site::Hsu.config(), 5);
        let days = 4;
        let n = SlotsPerDay::new(48).unwrap();
        let trace = generator.generate_days(days).unwrap();
        let view = SlotView::new(&trace, n).unwrap();
        let slots: Vec<StreamedSlot> = generator.slot_stream(days, n).unwrap().collect();
        assert_eq!(slots.len(), view.total_slots());
        for s in &slots {
            assert_eq!(
                s.start_sample.to_bits(),
                view.start_sample(s.day, s.slot).to_bits()
            );
            assert_eq!(
                s.mean_power.to_bits(),
                view.mean_power(s.day, s.slot).to_bits()
            );
        }
    }

    #[test]
    fn streams_reject_bad_parameters() {
        let generator = TraceGenerator::new(Site::Pfci.config(), 1);
        assert!(generator.sample_stream(0).is_err());
        assert!(generator
            .slot_stream(0, SlotsPerDay::new(48).unwrap())
            .is_err());
        // N = 1440 needs 1-minute samples; PFCI is 1-minute, so use a
        // 5-minute site to provoke incompatibility.
        let five_min = TraceGenerator::new(Site::Spmd.config(), 1);
        assert!(five_min
            .slot_stream(3, SlotsPerDay::new(1440).unwrap())
            .is_err());
    }

    #[test]
    fn slot_stream_buffer_is_one_day() {
        let generator = TraceGenerator::new(Site::Pfci.config(), 1);
        let stream = generator
            .slot_stream(1000, SlotsPerDay::new(48).unwrap())
            .unwrap();
        assert_eq!(stream.buffer_bytes(), 1440 * 8);
        assert_eq!(stream.total_slots(), 48_000);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// The streamed paths reproduce the batch path bit-for-bit for
        /// any site, seed, horizon, and compatible discretization.
        #[test]
        fn streamed_equals_batch_for_any_site_seed_and_horizon(
            site_idx in 0usize..Site::ALL.len(),
            seed in 0u64..u64::MAX,
            days in 1usize..8,
            n_idx in 0usize..3,
        ) {
            let site = Site::ALL[site_idx];
            let n = SlotsPerDay::new([24u32, 48, 96][n_idx]).unwrap();
            let generator = TraceGenerator::new(site.config(), seed);
            let batch = generator.generate_days(days).unwrap();

            let samples: Vec<f64> = generator.sample_stream(days).unwrap().collect();
            proptest::prop_assert_eq!(samples.len(), batch.samples().len());
            for (a, b) in samples.iter().zip(batch.samples()) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }

            let view = SlotView::new(&batch, n).unwrap();
            let mut count = 0;
            for slot in generator.slot_stream(days, n).unwrap() {
                proptest::prop_assert_eq!(
                    slot.start_sample.to_bits(),
                    view.start_sample(slot.day, slot.slot).to_bits()
                );
                proptest::prop_assert_eq!(
                    slot.mean_power.to_bits(),
                    view.mean_power(slot.day, slot.slot).to_bits()
                );
                count += 1;
            }
            proptest::prop_assert_eq!(count, view.total_slots());
        }
    }

    #[test]
    fn slot_stream_counters_track_consumption() {
        let generator = TraceGenerator::new(Site::Hsu.config(), 5);
        let mut stream = generator
            .slot_stream(3, SlotsPerDay::new(48).unwrap())
            .unwrap();
        let before = stream.counters();
        assert_eq!(before.normal_draws, 0, "no draws before iteration");
        for _ in stream.by_ref() {}
        let after = stream.counters();
        assert!(after.keystream_blocks > before.keystream_blocks);
        assert!(after.normal_draws > 0);
        // Counters must match the batch path's accounting exactly.
        let (_, batch) = generator.generate_days_counted(3).unwrap();
        assert_eq!(after, batch);
    }

    #[test]
    fn resumed_slot_stream_is_bit_equal_to_fresh_tail() {
        use crate::weather::StreamVersion;
        for version in [StreamVersion::V1, StreamVersion::V2] {
            let mut config = Site::Hsu.config();
            config.weather.stream_version = version;
            let generator = TraceGenerator::new(config, 5);
            let n = SlotsPerDay::new(48).unwrap();
            let (prefix_days, total_days) = (3usize, 7usize);

            // Drain a prefix stream and checkpoint at its horizon.
            let mut prefix = generator.slot_stream(prefix_days, n).unwrap();
            for _ in prefix.by_ref() {}
            let prefix_counters = prefix.counters();
            let checkpoint = prefix
                .checkpoint()
                .expect("drained stream is at a boundary");
            assert_eq!(checkpoint.next_day(), prefix_days);

            let full: Vec<StreamedSlot> = generator.slot_stream(total_days, n).unwrap().collect();
            let mut resumed = generator
                .slot_stream_from(checkpoint, total_days, n)
                .unwrap();
            let tail: Vec<StreamedSlot> = resumed.by_ref().collect();
            assert_eq!(tail.len(), (total_days - prefix_days) * n.get());
            for (a, b) in tail.iter().zip(&full[prefix_days * n.get()..]) {
                assert_eq!(a.day, b.day);
                assert_eq!(a.slot, b.slot);
                assert_eq!(a.start_sample.to_bits(), b.start_sample.to_bits());
                assert_eq!(a.mean_power.to_bits(), b.mean_power.to_bits());
            }

            // Segment counters sum exactly to the cold-run total.
            let mut sum = prefix_counters;
            sum.add(resumed.counters());
            let (_, cold) = generator.generate_days_counted(total_days).unwrap();
            assert_eq!(sum, cold, "{version:?}: segment counters must add up");
        }
    }

    #[test]
    fn checkpoints_only_exist_at_day_boundaries() {
        let generator = TraceGenerator::new(Site::Hsu.config(), 5);
        let n = SlotsPerDay::new(48).unwrap();
        let mut stream = generator.slot_stream(2, n).unwrap();
        assert!(
            stream.checkpoint().is_some(),
            "unstarted stream is at day 0"
        );
        stream.next();
        assert!(stream.checkpoint().is_none(), "mid-day has no checkpoint");
        for _ in stream.by_ref() {}
        let checkpoint = stream.checkpoint().unwrap();
        // Resuming requires a horizon beyond the checkpoint.
        assert!(generator
            .slot_stream_from(checkpoint.clone(), 2, n)
            .is_err());
        assert!(generator.slot_stream_from(checkpoint, 3, n).is_ok());
    }

    #[test]
    fn resumed_size_hint_counts_the_tail_only() {
        let generator = TraceGenerator::new(Site::Spmd.config(), 3);
        let n = SlotsPerDay::new(24).unwrap();
        let mut prefix = generator.slot_stream(1, n).unwrap();
        for _ in prefix.by_ref() {}
        let resumed = generator
            .slot_stream_from(prefix.checkpoint().unwrap(), 3, n)
            .unwrap();
        assert_eq!(resumed.size_hint(), (48, Some(48)));
    }

    #[test]
    fn size_hints_are_exact() {
        let generator = TraceGenerator::new(Site::Spmd.config(), 3);
        let mut stream = generator
            .slot_stream(2, SlotsPerDay::new(24).unwrap())
            .unwrap();
        assert_eq!(stream.size_hint(), (48, Some(48)));
        stream.next();
        assert_eq!(stream.size_hint(), (47, Some(47)));
        let mut samples = generator.sample_stream(2).unwrap();
        assert_eq!(samples.size_hint().0, 2 * 288);
        samples.next();
        assert_eq!(samples.size_hint().0, 2 * 288 - 1);
    }
}
