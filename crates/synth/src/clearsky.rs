//! Clear-sky global horizontal irradiance (GHI) models.
//!
//! These give the cloudless upper envelope that the stochastic
//! [`weather`](crate::weather) layer attenuates. Two classic low-parameter
//! models are provided; the generator default is Haurwitz, which is smooth
//! near the horizon and widely used as a clear-sky reference in solar
//! resource studies.

/// A clear-sky GHI model mapping solar elevation to irradiance.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ClearSkyModel {
    /// Haurwitz (1945): `GHI = 1098 · sin h · exp(−0.057 / sin h)`.
    #[default]
    Haurwitz,
    /// Kasten–Czeplak (1980): `GHI = 910 · sin h − 30`, clamped at 0.
    KastenCzeplak,
}

impl ClearSkyModel {
    /// Clear-sky GHI in W/m² for a given sine of solar elevation.
    ///
    /// Returns `0.0` when the sun is at or below the horizon
    /// (`sin_elevation <= 0`).
    ///
    /// # Example
    ///
    /// ```
    /// use solar_synth::ClearSkyModel;
    ///
    /// let noonish = ClearSkyModel::Haurwitz.ghi(0.9);
    /// assert!(noonish > 800.0 && noonish < 1100.0);
    /// assert_eq!(ClearSkyModel::Haurwitz.ghi(-0.1), 0.0);
    /// ```
    pub fn ghi(self, sin_elevation: f64) -> f64 {
        if sin_elevation <= 0.0 {
            return 0.0;
        }
        match self {
            ClearSkyModel::Haurwitz => 1098.0 * sin_elevation * (-0.057 / sin_elevation).exp(),
            ClearSkyModel::KastenCzeplak => (910.0 * sin_elevation - 30.0).max(0.0),
        }
    }
}

impl std::fmt::Display for ClearSkyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClearSkyModel::Haurwitz => write!(f, "Haurwitz"),
            ClearSkyModel::KastenCzeplak => write!(f, "Kasten-Czeplak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_at_and_below_horizon() {
        for model in [ClearSkyModel::Haurwitz, ClearSkyModel::KastenCzeplak] {
            assert_eq!(model.ghi(0.0), 0.0);
            assert_eq!(model.ghi(-0.5), 0.0);
        }
    }

    #[test]
    fn monotone_in_elevation() {
        for model in [ClearSkyModel::Haurwitz, ClearSkyModel::KastenCzeplak] {
            let mut prev = 0.0;
            for i in 1..=100 {
                let s = i as f64 / 100.0;
                let g = model.ghi(s);
                assert!(g >= prev, "{model} not monotone at sin h = {s}");
                prev = g;
            }
        }
    }

    #[test]
    fn overhead_sun_magnitudes_are_physical() {
        // Both models should give ~1000 W/m² for overhead sun.
        let h = ClearSkyModel::Haurwitz.ghi(1.0);
        let k = ClearSkyModel::KastenCzeplak.ghi(1.0);
        assert!((900.0..1100.0).contains(&h), "haurwitz {h}");
        assert!((800.0..1000.0).contains(&k), "kasten {k}");
    }

    #[test]
    fn haurwitz_decays_smoothly_near_horizon() {
        // exp(−0.057/sin h) forces the value toward 0 faster than sin h.
        let low = ClearSkyModel::Haurwitz.ghi(0.01);
        assert!(low < 1098.0 * 0.01);
        assert!(low > 0.0);
    }
}
