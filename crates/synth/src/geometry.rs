//! Solar position geometry.
//!
//! Standard textbook formulations (Duffie & Beckman) for declination,
//! hour angle and solar elevation, which together give the deterministic
//! diurnal/seasonal envelope of surface irradiance.

/// Solar constant in W/m².
pub const SOLAR_CONSTANT: f64 = 1367.0;

/// Solar declination in radians for a 1-based day of year (Cooper's
/// equation): `δ = 23.45° · sin(2π (284 + n) / 365)`.
///
/// # Example
///
/// ```
/// use solar_synth::geometry::declination_rad;
///
/// // Summer solstice (~day 172) is near +23.45°.
/// let summer = declination_rad(172).to_degrees();
/// assert!((summer - 23.45).abs() < 0.1);
/// ```
pub fn declination_rad(day_of_year: u32) -> f64 {
    let n = day_of_year as f64;
    23.45_f64.to_radians() * (std::f64::consts::TAU * (284.0 + n) / 365.0).sin()
}

/// Hour angle in radians for a local solar time in hours: 15° per hour
/// from solar noon, negative in the morning.
pub fn hour_angle_rad(solar_time_hours: f64) -> f64 {
    (15.0 * (solar_time_hours - 12.0)).to_radians()
}

/// Sine of the solar elevation angle:
/// `sin h = sin φ sin δ + cos φ cos δ cos ω`.
///
/// Returns a value in `[-1, 1]`; non-positive values mean the sun is at or
/// below the horizon.
pub fn sin_elevation(latitude_rad: f64, declination_rad: f64, hour_angle_rad: f64) -> f64 {
    latitude_rad.sin() * declination_rad.sin()
        + latitude_rad.cos() * declination_rad.cos() * hour_angle_rad.cos()
}

/// Sine of solar elevation for a site latitude (degrees), day of year and
/// local solar time in hours — the composed convenience used by the
/// generator.
pub fn sin_elevation_at(latitude_deg: f64, day_of_year: u32, solar_time_hours: f64) -> f64 {
    sin_elevation(
        latitude_deg.to_radians(),
        declination_rad(day_of_year),
        hour_angle_rad(solar_time_hours),
    )
}

/// Extraterrestrial normal irradiance in W/m², accounting for the
/// Earth–Sun distance variation:
/// `G_on = G_sc (1 + 0.033 cos(2π n / 365))`.
pub fn extraterrestrial_normal(day_of_year: u32) -> f64 {
    SOLAR_CONSTANT * (1.0 + 0.033 * (std::f64::consts::TAU * day_of_year as f64 / 365.0).cos())
}

/// The day-invariant solar constants of one (latitude, day-of-year)
/// pair, hoisted out of per-slot loops.
///
/// [`sin_elevation_at`] spends four transcendental calls per sample on
/// quantities that only change once per day (declination, `sin φ sin δ`,
/// `cos φ cos δ`) plus one on the hour angle, whose cosine grid depends
/// only on the slot spacing. Generators compute a `DayGeometry` once per
/// day and a cosine grid once per stream instead; the factored products
/// keep the exact multiplication order of [`sin_elevation`], so
/// [`DayGeometry::sin_elevation`] is **bit-identical** to the composed
/// per-sample path (property-tested across latitudes and days).
///
/// # Example
///
/// ```
/// use solar_synth::geometry::{hour_angle_rad, sin_elevation_at, DayGeometry};
///
/// let day = DayGeometry::new(40.0, 172);
/// let direct = sin_elevation_at(40.0, 172, 9.5);
/// let hoisted = day.sin_elevation(hour_angle_rad(9.5).cos());
/// assert_eq!(direct.to_bits(), hoisted.to_bits());
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DayGeometry {
    /// Solar declination δ in radians (Cooper's equation).
    pub declination_rad: f64,
    /// `sin φ · sin δ`.
    pub sin_phi_sin_delta: f64,
    /// `cos φ · cos δ`.
    pub cos_phi_cos_delta: f64,
    /// Extraterrestrial normal irradiance `G_on` in W/m² — also
    /// day-invariant, carried for irradiance models that reference
    /// `G_on` (the built-in [`ClearSkyModel`](crate::ClearSkyModel)
    /// variants do not, so the generator's slot loop never reads it).
    pub extraterrestrial_normal: f64,
}

impl DayGeometry {
    /// Computes the constants for a site latitude (degrees) and 1-based
    /// day of year.
    pub fn new(latitude_deg: f64, day_of_year: u32) -> Self {
        let phi = latitude_deg.to_radians();
        let delta = declination_rad(day_of_year);
        DayGeometry {
            declination_rad: delta,
            sin_phi_sin_delta: phi.sin() * delta.sin(),
            cos_phi_cos_delta: phi.cos() * delta.cos(),
            extraterrestrial_normal: extraterrestrial_normal(day_of_year),
        }
    }

    /// Sine of the solar elevation for a precomputed `cos ω`:
    /// `sin h = sin φ sin δ + (cos φ cos δ) · cos ω` — the same
    /// left-associated product chain as [`sin_elevation`], so results
    /// are bit-identical.
    pub fn sin_elevation(&self, cos_hour_angle: f64) -> f64 {
        self.sin_phi_sin_delta + self.cos_phi_cos_delta * cos_hour_angle
    }
}

/// The `cos ω` grid of a uniform slot spacing: entry `i` is
/// `cos(hour_angle(i · step_hours))`, exactly the cosine
/// [`sin_elevation_at`] would compute for the sample at `i · step_hours`
/// local solar time. Depends only on the discretization, so one grid
/// serves every day of a stream.
pub fn hour_cosine_grid(samples_per_day: usize, step_hours: f64) -> Vec<f64> {
    (0..samples_per_day)
        .map(|idx| hour_angle_rad(idx as f64 * step_hours).cos())
        .collect()
}

/// Day length in hours for a latitude (degrees) and day of year, from the
/// sunset hour angle `cos ω_s = −tan φ tan δ`.
///
/// Polar day/night are clamped to 24 h / 0 h.
pub fn day_length_hours(latitude_deg: f64, day_of_year: u32) -> f64 {
    let phi = latitude_deg.to_radians();
    let delta = declination_rad(day_of_year);
    let cos_ws = -phi.tan() * delta.tan();
    if cos_ws <= -1.0 {
        24.0
    } else if cos_ws >= 1.0 {
        0.0
    } else {
        2.0 * cos_ws.acos().to_degrees() / 15.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declination_is_bounded() {
        for day in 1..=365 {
            let d = declination_rad(day).to_degrees();
            assert!(d.abs() <= 23.45 + 1e-9, "day {day}: {d}");
        }
    }

    #[test]
    fn declination_extremes_at_solstices() {
        // Winter solstice ~day 355, summer ~day 172.
        assert!(declination_rad(355).to_degrees() < -23.0);
        assert!(declination_rad(172).to_degrees() > 23.0);
        // Equinoxes near zero.
        assert!(declination_rad(81).to_degrees().abs() < 1.0);
    }

    #[test]
    fn hour_angle_sign_convention() {
        assert!(hour_angle_rad(6.0) < 0.0);
        assert_eq!(hour_angle_rad(12.0), 0.0);
        assert!(hour_angle_rad(18.0) > 0.0);
    }

    #[test]
    fn noon_elevation_matches_latitude_declination() {
        // At solar noon, elevation = 90° − |φ − δ|.
        let lat = 40.0_f64;
        for day in [1u32, 100, 200, 300] {
            let sin_h = sin_elevation_at(lat, day, 12.0);
            let expect = (90.0 - (lat - declination_rad(day).to_degrees()).abs()).to_radians();
            assert!((sin_h - expect.sin()).abs() < 1e-9, "day {day}");
        }
    }

    #[test]
    fn sun_below_horizon_at_midnight_midlatitudes() {
        for day in [1u32, 90, 180, 270] {
            assert!(sin_elevation_at(38.0, day, 0.0) < 0.0, "day {day}");
        }
    }

    #[test]
    fn extraterrestrial_within_3_3_percent() {
        for day in 1..=365 {
            let g = extraterrestrial_normal(day);
            assert!(g > SOLAR_CONSTANT * 0.966 && g < SOLAR_CONSTANT * 1.034);
        }
    }

    #[test]
    fn day_length_longer_in_summer_northern_hemisphere() {
        let summer = day_length_hours(40.0, 172);
        let winter = day_length_hours(40.0, 355);
        assert!(summer > 14.0, "summer {summer}");
        assert!(winter < 10.0, "winter {winter}");
        // Equator is always close to 12 h.
        assert!((day_length_hours(0.0, 100) - 12.0).abs() < 0.2);
    }

    #[test]
    fn polar_clamps() {
        assert_eq!(day_length_hours(80.0, 172), 24.0);
        assert_eq!(day_length_hours(80.0, 355), 0.0);
    }
}
