//! Synthetic solar-irradiance substrate.
//!
//! The DATE'10 paper evaluates its predictor on measured NREL MIDC
//! irradiance traces from six US sites. Those traces are not
//! redistributable here, so this crate synthesizes physically grounded
//! replacements that preserve every property the prediction study depends
//! on (see DESIGN.md §2):
//!
//! 1. the deterministic 24-hour / seasonal envelope — from real solar
//!    [`geometry`] and a [`clearsky`] model,
//! 2. day-to-day persistence of conditions — from a Markov chain over
//!    day conditions in [`weather`],
//! 3. intra-day cloud noise at minute scale — AR(1) attenuation plus
//!    discrete cloud transits, which is what separates the paper's MAPE
//!    from MAPE′,
//! 4. per-site variability ordering — six [`site`](Site) presets spanning
//!    the paper's desert (NPCS, PFCI) to humid/continental (ORNL, SPMD)
//!    climates.
//!
//! Everything is seeded and deterministic: the same [`TraceGenerator`]
//! seed always yields the same [`solar_trace::PowerTrace`].
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use solar_synth::{Site, TraceGenerator};
//!
//! let generator = TraceGenerator::new(Site::Pfci.config(), 42);
//! let trace = generator.generate_days(30)?;
//! assert_eq!(trace.days(), 30);
//! // Daylight exists: the trace carries energy.
//! assert!(trace.total_energy_j() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod clearsky;
mod generator;
pub mod geometry;
mod lanes;
pub mod sampling;
mod site;
mod site_builder;
mod stream;
pub mod weather;

pub use clearsky::ClearSkyModel;
pub use generator::{SynthCheckpoint, TraceGenerator};
pub use lanes::SynthCounters;
pub use site::{Site, SiteConfig};
pub use site_builder::SiteConfigBuilder;
pub use stream::{SampleStream, SlotStream, StreamedSlot};
pub use weather::{DayCondition, StreamVersion, WeatherModel};
