//! Wide-lane Gaussian sampling over the bulk ChaCha8 keystream.
//!
//! The v1 generator burns one scalar Box–Muller draw per normal: two
//! uniforms in, the `cos` half out, the `sin` half discarded — and each
//! uniform arrives one `u32` at a time from the keystream buffer. This
//! module is the batched replacement the
//! [`StreamVersion::V2`](crate::weather::StreamVersion::V2) stream
//! uses:
//!
//! * keystream words arrive in bulk via
//!   [`ChaCha8Rng::fill_u32s`] (which the vendored crate services from
//!   a 4-block interleaved refill),
//! * Box–Muller is computed **pairwise** — each `(u1, u2)` pair yields
//!   `r·cos θ` *and* `r·sin θ`, so the `ln`/`sqrt` and the keystream
//!   words are amortized over two normals instead of one,
//! * the loop over pairs is straight-line array arithmetic over a flat
//!   panel, the shape LLVM vectorizes.
//!
//! [`NormalSource`] is the abstraction the generator threads through
//! its `DayState`: the `Scalar` variant reproduces the v1 draw order
//! bit-for-bit (delegating to the same scalar Box–Muller), the `Lanes`
//! variant serves normals from the batched buffer. Both count draws,
//! which is what the `synth/normal_draws` ledger counter reports.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Normals produced per batch refill. Each pairwise Box–Muller pair
/// consumes two `f64` uniforms = four keystream words, so one batch
/// drains `2 × BATCH` words — a whole number of ChaCha blocks, keeping
/// the bulk fill on whole-buffer copies. Must be even.
const BATCH: usize = 256;

/// A single scalar Box–Muller draw — the v1 stream's normal. Two
/// uniforms in, the cosine half out (the sine half is discarded; that
/// discard is baked into every v1 golden digest).
#[inline]
pub(crate) fn scalar_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One f64 uniform from two keystream words, exactly as the vendored
/// `rand` `Standard` distribution converts `next_u64` (lo word first).
#[inline(always)]
fn uniform_from_words(lo: u32, hi: u32) -> f64 {
    let bits = lo as u64 | ((hi as u64) << 32);
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `(sin θ, cos θ)` for `θ = τ·u`, `u ∈ [0, 1)` — the Box–Muller angle
/// pair, computed branch-free so the batch sweep vectorizes (libm
/// `sin`/`cos` calls would serialize the whole loop).
///
/// Quadrant reduction: `θ = (π/2)(q + ½ + g)` with `q ∈ {0,1,2,3}` and
/// `g ∈ [−½, ½)`, so `a = (π/2)g ∈ [−π/4, π/4)` where the Taylor
/// series below are accurate to < 1 ulp·|a| (the sin tail is
/// `a¹⁷/17! < 5·10⁻¹⁷` at `π/4`). The quadrant then only swaps and
/// flips signs of `(cos a ∓ sin a)/√2`, done with integer masks. This
/// polynomial — not libm — *defines* the v2 stream's angle values;
/// accuracy vs. libm is pinned by a test, bit-agreement is not
/// required.
#[inline(always)]
pub(crate) fn sincos_tau(u: f64) -> (f64, f64) {
    let x = 4.0 * u;
    let q = x as u64; // quadrant index; x < 4 by construction
    let g = (x - q as f64) - 0.5;
    let a = std::f64::consts::FRAC_PI_2 * g;
    let z = a * a;
    // sin a = a·S(z), cos a = C(z); Taylor in z = a², Horner order.
    let s = a
        * (1.0
            + z * (-1.6666666666666666e-1
                + z * (8.333333333333333e-3
                    + z * (-1.984126984126984e-4
                        + z * (2.7557319223985893e-6
                            + z * (-2.505210838544172e-8
                                + z * (1.6059043836821613e-10 + z * -7.647163731819816e-13)))))));
    let c = 1.0
        + z * (-5.0e-1
            + z * (4.1666666666666664e-2
                + z * (-1.388888888888889e-3
                    + z * (2.48015873015873e-5
                        + z * (-2.755731922398589e-7
                            + z * (2.08767569878681e-9
                                + z * (-1.1470745597729725e-11 + z * 4.779477332387385e-14)))))));
    // (cos θ, sin θ) over the four quadrants is (±p|±m, ±m|±p) with
    // p = (c − s)/√2, m = (c + s)/√2 — select and sign-flip via masks.
    const R: f64 = std::f64::consts::FRAC_1_SQRT_2;
    let p = (c - s) * R;
    let m = (c + s) * R;
    let swap = 0u64.wrapping_sub(q & 1);
    let base_cos = (p.to_bits() & !swap) | (m.to_bits() & swap);
    let base_sin = (m.to_bits() & !swap) | (p.to_bits() & swap);
    let sign_cos = (((q + 1) >> 1) & 1) << 63; // negative in quadrants 1, 2
    let sign_sin = ((q >> 1) & 1) << 63; // negative in quadrants 2, 3
    (
        f64::from_bits(base_sin ^ sign_sin),
        f64::from_bits(base_cos ^ sign_cos),
    )
}

/// Fills `out` (length must be even) with pairwise Box–Muller normals
/// from `words`, which must hold `2 × out.len()` keystream words. Pair
/// `i` consumes words `4i..4i+4` and produces `out[2i] = r·cos θ`,
/// `out[2i+1] = r·sin θ` with `θ` from [`sincos_tau`] — the draw order
/// and arithmetic the v2 stream pins.
///
/// Structured as flat passes over chunk panels — uniforms, radii,
/// angles, combine — so everything except the `ln` call runs as
/// vectorized array arithmetic.
fn box_muller_pairs(words: &[u32], out: &mut [f64]) {
    debug_assert_eq!(out.len() % 2, 0);
    debug_assert_eq!(words.len(), 2 * out.len());
    const CHUNK: usize = BATCH / 2;
    let mut u1 = [0.0f64; CHUNK];
    let mut radius = [0.0f64; CHUNK];
    let mut sin_t = [0.0f64; CHUNK];
    let mut cos_t = [0.0f64; CHUNK];
    for (wchunk, ochunk) in words.chunks(4 * CHUNK).zip(out.chunks_mut(2 * CHUNK)) {
        let pairs = ochunk.len() / 2;
        for i in 0..pairs {
            u1[i] = uniform_from_words(wchunk[4 * i], wchunk[4 * i + 1]).max(f64::MIN_POSITIVE);
            let u2 = uniform_from_words(wchunk[4 * i + 2], wchunk[4 * i + 3]);
            let (s, c) = sincos_tau(u2);
            sin_t[i] = s;
            cos_t[i] = c;
        }
        for i in 0..pairs {
            radius[i] = (-2.0 * u1[i].ln()).sqrt();
        }
        for (i, pair) in ochunk.chunks_exact_mut(2).enumerate() {
            pair[0] = radius[i] * cos_t[i];
            pair[1] = radius[i] * sin_t[i];
        }
    }
}

/// Where a generator's standard-normal draws come from.
///
/// Carried in the generator's `DayState`; the variant is fixed by the
/// site's [`StreamVersion`](crate::weather::StreamVersion) at stream
/// construction and never changes mid-stream.
#[derive(Clone, Debug)]
pub(crate) enum NormalMode {
    /// v1: one scalar Box–Muller call per draw, straight off the RNG.
    Scalar,
    /// v2: draws served from a batched pairwise Box–Muller buffer.
    Lanes {
        /// The batch panel; refilled `BATCH` normals at a time.
        buf: Vec<f64>,
        /// Next unread normal in `buf`.
        pos: usize,
    },
}

/// A counting normal supply over a borrowed RNG.
#[derive(Clone, Debug)]
pub(crate) struct NormalSource {
    mode: NormalMode,
    /// Total normals handed out (the `synth/normal_draws` counter).
    draws: u64,
}

impl NormalSource {
    /// The v1 scalar source (bit-identical to calling
    /// [`scalar_normal`] per draw).
    pub(crate) fn scalar() -> Self {
        NormalSource {
            mode: NormalMode::Scalar,
            draws: 0,
        }
    }

    /// The v2 lane source.
    pub(crate) fn lanes() -> Self {
        NormalSource {
            mode: NormalMode::Lanes {
                buf: Vec::new(),
                pos: 0,
            },
            draws: 0,
        }
    }

    /// Total normals handed out so far.
    pub(crate) fn draws(&self) -> u64 {
        self.draws
    }

    /// One standard-normal draw.
    pub(crate) fn next(&mut self, rng: &mut ChaCha8Rng) -> f64 {
        self.draws += 1;
        match &mut self.mode {
            NormalMode::Scalar => scalar_normal(rng),
            NormalMode::Lanes { buf, pos } => {
                if *pos == buf.len() {
                    refill(buf, rng);
                    *pos = 0;
                }
                let value = buf[*pos];
                *pos += 1;
                value
            }
        }
    }

    /// Fills `out` with standard normals — the bulk path the SoA day
    /// panels use. Identical draw sequence to `out.len()` calls of
    /// [`NormalSource::next`].
    pub(crate) fn fill(&mut self, rng: &mut ChaCha8Rng, out: &mut [f64]) {
        match &mut self.mode {
            NormalMode::Scalar => {
                self.draws += out.len() as u64;
                for value in out.iter_mut() {
                    *value = scalar_normal(rng);
                }
            }
            NormalMode::Lanes { buf, pos } => {
                self.draws += out.len() as u64;
                let mut filled = 0;
                while filled < out.len() {
                    if *pos == buf.len() {
                        refill(buf, rng);
                        *pos = 0;
                    }
                    let take = (buf.len() - *pos).min(out.len() - filled);
                    out[filled..filled + take].copy_from_slice(&buf[*pos..*pos + take]);
                    *pos += take;
                    filled += take;
                }
            }
        }
    }
}

/// Refills the lane batch: one bulk keystream fill, then the pairwise
/// Box–Muller panel sweep.
fn refill(buf: &mut Vec<f64>, rng: &mut ChaCha8Rng) {
    let mut words = [0u32; 2 * BATCH];
    rng.fill_u32s(&mut words);
    buf.resize(BATCH, 0.0);
    box_muller_pairs(&words, buf);
}

/// Deterministic synthesis-cost counters for one generation stream:
/// merged into the run ledger once per work unit (never per slot).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SynthCounters {
    /// 16-word ChaCha blocks consumed from the keystream (rounded up
    /// to the block the stream position sits in).
    pub keystream_blocks: u64,
    /// Standard-normal draws handed to the generator.
    pub normal_draws: u64,
}

impl SynthCounters {
    /// The counters for a stream positioned at `word_pos` keystream
    /// words with `normal_draws` normals served.
    pub(crate) fn at(rng: &ChaCha8Rng, normal_draws: u64) -> SynthCounters {
        SynthCounters {
            keystream_blocks: rng.get_word_pos().div_ceil(16) as u64,
            normal_draws,
        }
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: SynthCounters) {
        self.keystream_blocks += other.keystream_blocks;
        self.normal_draws += other.normal_draws;
    }

    /// Component-wise difference against an earlier reading of the
    /// same stream (`self − base`) — attributes resumed generation to
    /// the resumed segment alone, so segment counters sum exactly to
    /// the cold-run total. Saturating, so a foreign base never wraps.
    pub fn since(&self, base: SynthCounters) -> SynthCounters {
        SynthCounters {
            keystream_blocks: self.keystream_blocks.saturating_sub(base.keystream_blocks),
            normal_draws: self.normal_draws.saturating_sub(base.normal_draws),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The scalar pairwise reference: the same word-consumption and
    /// arithmetic the lane batch performs, expressed one pair at a
    /// time straight off the RNG.
    fn pairwise_reference(rng: &mut ChaCha8Rng, len: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(len + 1);
        while out.len() < len {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let (sin_t, cos_t) = sincos_tau(u2);
            out.push(r * cos_t);
            out.push(r * sin_t);
        }
        out.truncate(len);
        out
    }

    #[test]
    fn sincos_tau_matches_libm_closely() {
        // The polynomial defines the v2 angle values; this pins its
        // accuracy against libm across all quadrants and edges.
        let mut worst = 0.0f64;
        for i in 0..100_000 {
            let u = i as f64 / 100_000.0;
            let (s, c) = sincos_tau(u);
            let theta = std::f64::consts::TAU * u;
            worst = worst.max((s - theta.sin()).abs());
            worst = worst.max((c - theta.cos()).abs());
            assert!((s * s + c * c - 1.0).abs() < 1e-12, "u = {u}");
        }
        assert!(worst < 1e-13, "worst sincos error {worst:e}");
    }

    #[test]
    fn lane_batch_equals_scalar_pairwise_reference() {
        // Deterministic spot-check across batch boundaries; the
        // property test below drives random seeds and lengths.
        for len in [1usize, 2, 255, 256, 257, 1000] {
            let mut lane_rng = ChaCha8Rng::seed_from_u64(99);
            let mut ref_rng = ChaCha8Rng::seed_from_u64(99);
            let mut source = NormalSource::lanes();
            let lane: Vec<f64> = (0..len).map(|_| source.next(&mut lane_rng)).collect();
            let reference = pairwise_reference(&mut ref_rng, len);
            assert!(
                lane.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "len {len}"
            );
            assert_eq!(source.draws(), len as u64);
        }
    }

    #[test]
    fn bulk_fill_equals_repeated_next() {
        let mut a_rng = ChaCha8Rng::seed_from_u64(5);
        let mut b_rng = ChaCha8Rng::seed_from_u64(5);
        let mut a = NormalSource::lanes();
        let mut b = NormalSource::lanes();
        // Stagger the start so the fill begins mid-batch.
        for _ in 0..7 {
            a.next(&mut a_rng);
            b.next(&mut b_rng);
        }
        let mut bulk = vec![0.0; 600];
        a.fill(&mut a_rng, &mut bulk);
        let single: Vec<f64> = (0..600).map(|_| b.next(&mut b_rng)).collect();
        assert!(bulk
            .iter()
            .zip(&single)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.draws(), b.draws());
    }

    #[test]
    fn scalar_source_matches_free_function() {
        let mut a_rng = ChaCha8Rng::seed_from_u64(21);
        let mut b_rng = ChaCha8Rng::seed_from_u64(21);
        let mut source = NormalSource::scalar();
        for _ in 0..100 {
            let a = source.next(&mut a_rng);
            let b = scalar_normal(&mut b_rng);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(source.draws(), 100);
    }

    #[test]
    fn lane_moments_are_standard_normal() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut source = NormalSource::lanes();
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| source.next(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn counters_account_blocks_and_draws() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut source = NormalSource::lanes();
        for _ in 0..10 {
            source.next(&mut rng);
        }
        let counters = SynthCounters::at(&rng, source.draws());
        // One batch refill = 512 words = 32 blocks.
        assert_eq!(counters.keystream_blocks, 32);
        assert_eq!(counters.normal_draws, 10);
        let mut sum = SynthCounters::default();
        sum.add(counters);
        sum.add(counters);
        assert_eq!(sum.normal_draws, 20);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Lane-batched Box–Muller equals the scalar pairwise reference
        /// bit-for-bit on random seed and length.
        #[test]
        fn lane_batch_equals_reference_for_any_seed_and_length(
            seed in 0u64..u64::MAX,
            len in 1usize..2000,
        ) {
            let mut lane_rng = ChaCha8Rng::seed_from_u64(seed);
            let mut ref_rng = ChaCha8Rng::seed_from_u64(seed);
            let mut source = NormalSource::lanes();
            let lane: Vec<f64> = (0..len).map(|_| source.next(&mut lane_rng)).collect();
            let reference = pairwise_reference(&mut ref_rng, len);
            for (a, b) in lane.iter().zip(&reference) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
