//! Small distribution samplers shared across the workspace.
//!
//! Both the weather generator (cloud transits, frontal passages) and
//! the fault layer in `scenario-fleet` (telemetry-gap placement) need
//! Poisson counts; keeping one implementation here means a numerical
//! fix reaches every caller.
//!
//! Two samplers coexist on purpose:
//!
//! * [`poisson`] — Knuth's product method. It consumes `count + 1`
//!   uniforms, and that consumption pattern is baked into the
//!   [`StreamVersion::V1`](crate::weather::StreamVersion) trace stream
//!   (the pinned golden digests). It must not change.
//! * [`poisson_inversion`] — CDF inversion, consuming exactly **one**
//!   uniform per draw regardless of the result. This is the sampler the
//!   v2 lane stream uses: fewer keystream words, and a draw count that
//!   is independent of the sampled value.

use rand::Rng;

/// Iteration cap shared by both samplers: turns the λ ≈ 745 underflow
/// (see below) into a bounded result instead of a hang.
const MAX_ITERATIONS: usize = 10_000;

/// Knuth's Poisson sampler — the [`StreamVersion::V1`] stream's method.
///
/// Intended for the small rates used in this workspace (tens at most):
/// its run time *and uniform consumption* are linear in the draw.
///
/// # The λ ≈ 745 underflow guard
///
/// `(-lambda).exp()` underflows to `0.0` once `lambda` exceeds
/// `-ln(f64::MIN_POSITIVE) ≈ 744.44`. The acceptance product can then
/// never test `<= limit` while positive, but the product of uniforms
/// itself underflows to `0.0` after roughly a thousand multiplications
/// (at which point `0.0 <= 0.0` accepts), and the `MAX_ITERATIONS`
/// cap bounds the loop unconditionally — so the call always terminates
/// with a bounded (if statistically meaningless) result. A regression
/// test pins this. Do **not** "fix" the consumption pattern here: the
/// v1 golden digests depend on it byte-for-byte.
///
/// [`StreamVersion::V1`]: crate::weather::StreamVersion::V1
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut count = 0usize;
    let mut product = 1.0;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit || count > MAX_ITERATIONS {
            return count;
        }
        count += 1;
    }
}

/// Poisson sampling by CDF inversion — the
/// [`StreamVersion::V2`](crate::weather::StreamVersion::V2) stream's
/// method for the small rates this workspace uses.
///
/// Draws exactly one uniform `u`, then walks the CDF
/// `P(k) = e^{-λ} λ^k / k!` upward until it passes `u`. Compared to
/// [`poisson`] this consumes a fixed single keystream word pair per
/// call (the property the lane stream wants) and does no RNG work in
/// the walk itself.
///
/// # The λ ≈ 745 underflow guard
///
/// The walk starts from `p = e^{-λ}`, which underflows to `0.0` for
/// `λ ≳ 744.44`; every subsequent term then stays `0.0`, the CDF never
/// reaches `u`, and the walk runs to the shared `MAX_ITERATIONS` cap
/// — a bounded, deterministic result (the cap itself) rather than an
/// infinite loop. Rates anywhere near that regime are far outside the
/// intended domain (use a normal approximation there); the explicit
/// regression test pins the guard for both samplers.
pub fn poisson_inversion<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let u: f64 = rng.gen();
    let mut p = (-lambda).exp();
    let mut cdf = p;
    let mut count = 0usize;
    while u > cdf && count < MAX_ITERATIONS {
        count += 1;
        p *= lambda / count as f64;
        cdf += p;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_and_negative_rates_give_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-3.0, &mut rng), 0);
        assert_eq!(poisson_inversion(0.0, &mut rng), 0);
        assert_eq!(poisson_inversion(-3.0, &mut rng), 0);
    }

    #[test]
    fn mean_tracks_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(2.5, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn inversion_mean_tracks_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        for lambda in [0.3, 2.5, 8.0] {
            let total: usize = (0..n).map(|_| poisson_inversion(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < 0.1, "lambda {lambda}: mean {mean}");
        }
    }

    #[test]
    fn inversion_consumes_exactly_one_uniform_per_draw() {
        // The fixed consumption is the property the v2 lane stream
        // relies on: a draw's RNG cost must not depend on its value.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for lambda in [0.1, 1.0, 6.0, 30.0] {
            poisson_inversion(lambda, &mut a);
            b.next_u64(); // one f64 uniform = one u64
            assert_eq!(a.get_word_pos(), b.get_word_pos(), "lambda {lambda}");
        }
    }

    /// The explicit λ ≈ 745 underflow regression: `e^{-λ}` underflows
    /// to zero, and both samplers must still terminate with a bounded
    /// result instead of hanging (see the method docs for the exact
    /// mechanism in each).
    #[test]
    fn underflow_guard_bounds_both_samplers_past_lambda_745() {
        assert_eq!((-745.2_f64).exp(), 0.0, "λ must be in the underflow regime");
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for lambda in [745.2, 800.0, 1e6] {
            let knuth = poisson(lambda, &mut rng);
            assert!(knuth <= MAX_ITERATIONS + 1, "knuth {knuth} at λ={lambda}");
            // Inversion saturates at the cap: the CDF stays 0 forever.
            assert_eq!(poisson_inversion(lambda, &mut rng), MAX_ITERATIONS);
        }
        // Just below the underflow threshold both still behave.
        let lambda = 700.0;
        let mut total = 0usize;
        for _ in 0..50 {
            total += poisson_inversion(lambda, &mut rng);
        }
        let mean = total as f64 / 50.0;
        assert!((mean - lambda).abs() < 25.0, "mean {mean}");
    }
}
