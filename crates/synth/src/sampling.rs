//! Small distribution samplers shared across the workspace.
//!
//! Both the weather generator (cloud transits, frontal passages) and
//! the fault layer in `scenario-fleet` (telemetry-gap placement) need
//! Poisson counts; keeping one implementation here means a numerical
//! fix reaches every caller.

use rand::Rng;

/// Knuth's Poisson sampler.
///
/// Intended for the small rates used in this workspace (tens at most):
/// its run time is linear in the draw, and `(-lambda).exp()` underflows
/// to 0 near `lambda ≈ 745`, which the iteration cap turns into a
/// bounded (if meaningless) result rather than an infinite loop.
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut count = 0usize;
    let mut product = 1.0;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit || count > 10_000 {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_and_negative_rates_give_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-3.0, &mut rng), 0);
    }

    #[test]
    fn mean_tracks_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(2.5, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }
}
