//! Builder for custom [`SiteConfig`]s — the scenario-catalog entry point.
//!
//! The six paper presets ([`Site::config`](crate::Site::config)) cover
//! the DATE'10 evaluation; scenario catalogs need sites the paper never
//! measured (arctic winters, monsoon plateaus, equatorial coasts). The
//! builder assembles those from the same validated parts and fails
//! loudly on non-physical input instead of generating garbage traces.

use crate::clearsky::ClearSkyModel;
use crate::site::SiteConfig;
use crate::weather::{StreamVersion, WeatherModel};
use solar_trace::Resolution;

/// Step-by-step construction of a [`SiteConfig`].
///
/// Defaults: latitude 40°N, 5-minute resolution, Haurwitz clear sky,
/// temperate weather, and a seed stream hashed from the site name (so
/// two differently named sites never share random sequences even under
/// equal user seeds, matching the paper presets' behaviour).
///
/// # Example
///
/// ```
/// use solar_synth::{SiteConfigBuilder, TraceGenerator, WeatherModel};
///
/// let site = SiteConfigBuilder::new("tromso")
///     .latitude_deg(69.6)
///     .weather(WeatherModel::arctic())
///     .build()
///     .unwrap();
/// let trace = TraceGenerator::new(site, 1).generate_days(3).unwrap();
/// assert_eq!(trace.days(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct SiteConfigBuilder {
    name: String,
    latitude_deg: f64,
    resolution: Resolution,
    clear_sky: ClearSkyModel,
    weather: WeatherModel,
    seed_stream: Option<u64>,
    cloudiness: f64,
    turbidity: f64,
    stream_version: Option<StreamVersion>,
}

impl SiteConfigBuilder {
    /// Starts a builder for a site called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SiteConfigBuilder {
            name: name.into(),
            latitude_deg: 40.0,
            resolution: Resolution::FIVE_MINUTES,
            clear_sky: ClearSkyModel::Haurwitz,
            weather: WeatherModel::temperate(),
            seed_stream: None,
            cloudiness: 1.0,
            turbidity: 0.0,
            stream_version: None,
        }
    }

    /// Geographic latitude in degrees (north positive).
    pub fn latitude_deg(mut self, latitude_deg: f64) -> Self {
        self.latitude_deg = latitude_deg;
        self
    }

    /// Sampling resolution of generated traces.
    pub fn resolution(mut self, resolution: Resolution) -> Self {
        self.resolution = resolution;
        self
    }

    /// Clear-sky model for the cloudless envelope.
    pub fn clear_sky(mut self, clear_sky: ClearSkyModel) -> Self {
        self.clear_sky = clear_sky;
        self
    }

    /// Stochastic weather model.
    pub fn weather(mut self, weather: WeatherModel) -> Self {
        self.weather = weather;
        self
    }

    /// Overrides the per-site seed stream (default: hashed from the
    /// name).
    pub fn seed_stream(mut self, seed_stream: u64) -> Self {
        self.seed_stream = Some(seed_stream);
        self
    }

    /// Cloudiness tilt applied to the weather model at build time
    /// ([`WeatherModel::with_cloudiness`]): `1.0` (default) keeps the
    /// model bit-unchanged, `> 1` is cloudier, `< 1` clearer. Must lie
    /// in `[1/8, 8]`.
    pub fn cloudiness(mut self, cloudiness: f64) -> Self {
        self.cloudiness = cloudiness;
        self
    }

    /// Deterministic clear-sky loss ([`SiteConfig::turbidity`]): the
    /// fraction of the cloudless envelope removed by haze/aerosols, in
    /// `[0, 0.8]` (default 0).
    pub fn turbidity(mut self, turbidity: f64) -> Self {
        self.turbidity = turbidity;
        self
    }

    /// Overrides the RNG [`StreamVersion`] of the built site. By
    /// default the version comes from the supplied weather model
    /// (V1 for every preset); setting it here wins over both.
    pub fn stream_version(mut self, version: StreamVersion) -> Self {
        self.stream_version = Some(version);
        self
    }

    /// Validates and assembles the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation: empty name,
    /// non-finite or |latitude| > 85° (the solar geometry degenerates at
    /// the poles), cloudiness outside `[1/8, 8]`, turbidity outside
    /// `[0, 0.8]`, or an invalid weather model (after the cloudiness
    /// tilt).
    pub fn build(self) -> Result<SiteConfig, String> {
        if self.name.is_empty() {
            return Err("site name must be non-empty".to_string());
        }
        if !self.latitude_deg.is_finite() || self.latitude_deg.abs() > 85.0 {
            return Err(format!(
                "latitude {} must be finite and within ±85°",
                self.latitude_deg
            ));
        }
        if !(self.cloudiness.is_finite() && (0.125..=8.0).contains(&self.cloudiness)) {
            return Err(format!(
                "cloudiness {} must be finite and in [1/8, 8]",
                self.cloudiness
            ));
        }
        if !(self.turbidity.is_finite() && (0.0..=0.8).contains(&self.turbidity)) {
            return Err(format!(
                "turbidity {} must be finite and in [0, 0.8]",
                self.turbidity
            ));
        }
        let mut weather = self.weather.with_cloudiness(self.cloudiness);
        if let Some(version) = self.stream_version {
            weather.stream_version = version;
        }
        weather.validate()?;
        let seed_stream = self
            .seed_stream
            .unwrap_or_else(|| solar_trace::hash::fnv1a(&self.name));
        Ok(SiteConfig {
            name: self.name,
            latitude_deg: self.latitude_deg,
            resolution: self.resolution,
            clear_sky: self.clear_sky,
            weather,
            seed_stream,
            turbidity: self.turbidity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;

    #[test]
    fn defaults_build_a_valid_site() {
        let site = SiteConfigBuilder::new("anywhere").build().unwrap();
        assert_eq!(site.name, "anywhere");
        assert_eq!(site.resolution, Resolution::FIVE_MINUTES);
        site.weather.validate().unwrap();
    }

    #[test]
    fn name_determines_seed_stream() {
        let a = SiteConfigBuilder::new("alpha").build().unwrap();
        let b = SiteConfigBuilder::new("beta").build().unwrap();
        let a2 = SiteConfigBuilder::new("alpha").build().unwrap();
        assert_ne!(a.seed_stream, b.seed_stream);
        assert_eq!(a.seed_stream, a2.seed_stream);
    }

    #[test]
    fn explicit_seed_stream_wins() {
        let site = SiteConfigBuilder::new("x").seed_stream(7).build().unwrap();
        assert_eq!(site.seed_stream, 7);
    }

    #[test]
    fn stream_version_defaults_to_v1_and_override_wins() {
        let default = SiteConfigBuilder::new("v").build().unwrap();
        assert_eq!(default.weather.stream_version, StreamVersion::V1);
        let v2 = SiteConfigBuilder::new("v")
            .stream_version(StreamVersion::V2)
            .build()
            .unwrap();
        assert_eq!(v2.weather.stream_version, StreamVersion::V2);
        // The override survives the cloudiness tilt.
        let tilted = SiteConfigBuilder::new("v")
            .cloudiness(2.0)
            .stream_version(StreamVersion::V2)
            .build()
            .unwrap();
        assert_eq!(tilted.weather.stream_version, StreamVersion::V2);
    }

    #[test]
    fn rejects_bad_latitude_and_weather() {
        assert!(SiteConfigBuilder::new("p")
            .latitude_deg(89.0)
            .build()
            .is_err());
        assert!(SiteConfigBuilder::new("p")
            .latitude_deg(f64::NAN)
            .build()
            .is_err());
        let mut bad = WeatherModel::temperate();
        bad.transition[0][0] = 0.9;
        assert!(SiteConfigBuilder::new("p").weather(bad).build().is_err());
        assert!(SiteConfigBuilder::new("").build().is_err());
    }

    #[test]
    fn turbidity_scales_every_bright_sample() {
        let site = |t: f64| {
            SiteConfigBuilder::new("hazy")
                .latitude_deg(35.0)
                .turbidity(t)
                .build()
                .unwrap()
        };
        let clean = TraceGenerator::new(site(0.0), 4).generate_days(10).unwrap();
        let hazy = TraceGenerator::new(site(0.3), 4).generate_days(10).unwrap();
        // Turbidity consumes no RNG draws, so each hazy sample is the
        // clean one scaled by (1 - t) — up to the 1 W/m² noise floor.
        for (&c, &h) in clean.samples().iter().zip(hazy.samples()) {
            let scaled = c * 0.7;
            if scaled >= 1.0 {
                assert!((h - scaled).abs() < 1e-9, "{h} vs {scaled}");
            } else {
                assert_eq!(h, 0.0);
            }
        }
        assert!(hazy.total_energy_j() < 0.75 * clean.total_energy_j());
    }

    #[test]
    fn cloudiness_axis_shifts_harvest() {
        let site = |c: f64| {
            SiteConfigBuilder::new("tilted")
                .latitude_deg(35.0)
                .cloudiness(c)
                .build()
                .unwrap()
        };
        let energy = |c: f64| {
            TraceGenerator::new(site(c), 6)
                .generate_days(60)
                .unwrap()
                .total_energy_j()
        };
        let clearer = energy(0.25);
        let preset = energy(1.0);
        let cloudier = energy(4.0);
        assert!(
            clearer > preset && preset > cloudier,
            "{clearer} > {preset} > {cloudier}"
        );
    }

    #[test]
    fn rejects_out_of_range_axes() {
        for cloudiness in [0.0, 0.01, 9.0, f64::NAN] {
            assert!(SiteConfigBuilder::new("c")
                .cloudiness(cloudiness)
                .build()
                .is_err());
        }
        for turbidity in [-0.1, 0.9, f64::NAN] {
            assert!(SiteConfigBuilder::new("t")
                .turbidity(turbidity)
                .build()
                .is_err());
        }
    }

    #[test]
    fn arctic_winter_has_polar_night() {
        let site = SiteConfigBuilder::new("polar")
            .latitude_deg(75.0)
            .weather(WeatherModel::arctic())
            .build()
            .unwrap();
        // Days 1.. are deep winter at 75°N: essentially no harvest.
        let trace = TraceGenerator::new(site, 3).generate_days(5).unwrap();
        assert!(trace.total_energy_j() < 1e-6, "{}", trace.total_energy_j());
    }

    #[test]
    fn southern_monsoon_wet_season_follows_the_austral_summer() {
        // The seasonal clearness phase flips south of the equator: a
        // southern monsoon site is *attenuated* around January (austral
        // summer), not a copy of the northern calendar. Day-length
        // geometry still favours January at −20°, so isolate the
        // clearness phase by comparing against an amplitude-zero twin
        // with identical geometry and RNG draws (the seasonal term
        // consumes no randomness).
        let build = |amplitude: f64| {
            let mut weather = WeatherModel::monsoon();
            weather.seasonal_amplitude = amplitude;
            SiteConfigBuilder::new("austral-plateau")
                .latitude_deg(-20.0)
                .weather(weather)
                .build()
                .unwrap()
        };
        let season_ratio = |amplitude: f64| {
            let trace = TraceGenerator::new(build(amplitude), 11)
                .generate_days(365)
                .unwrap();
            let daily: Vec<f64> = (0..365)
                .map(|d| trace.day(d).unwrap().iter().sum::<f64>())
                .collect();
            // Austral summer (days 0..60 ≈ Jan–Feb) over austral
            // winter (days 150..240 ≈ Jun–Aug).
            (daily[0..60].iter().sum::<f64>() / 60.0) / (daily[150..240].iter().sum::<f64>() / 90.0)
        };
        let monsoon = season_ratio(WeatherModel::monsoon().seasonal_amplitude);
        let neutral = season_ratio(0.0);
        assert!(
            monsoon < 0.9 * neutral,
            "the austral-summer monsoon must attenuate January relative to \
             pure geometry: {monsoon} vs neutral {neutral}"
        );
    }

    #[test]
    fn monsoon_is_darker_in_summer_than_winter() {
        let site = SiteConfigBuilder::new("plateau")
            .latitude_deg(20.0)
            .weather(WeatherModel::monsoon())
            .build()
            .unwrap();
        let trace = TraceGenerator::new(site, 11).generate_days(365).unwrap();
        let daily: Vec<f64> = (0..365)
            .map(|d| trace.day(d).unwrap().iter().sum::<f64>())
            .collect();
        // Mean daily irradiance sum around the winter solstice start vs
        // the monsoon months (days ~150..240).
        let winter: f64 = daily[0..60].iter().sum::<f64>() / 60.0;
        let monsoon: f64 = daily[150..240].iter().sum::<f64>() / 90.0;
        assert!(
            monsoon < winter,
            "monsoon {monsoon} should be darker than winter {winter}"
        );
    }
}
