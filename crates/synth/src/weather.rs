//! Stochastic weather layer: day conditions, slow attenuation, cloud
//! transits.
//!
//! The model has three time scales, matching what measured irradiance
//! exhibits and what the prediction study is sensitive to:
//!
//! * **day scale** — a Markov chain over [`DayCondition`]s gives
//!   persistence ("sunny spells") and day-to-day variability; each day
//!   draws a base clearness index from its condition,
//! * **hour scale** — an AR(1) process wanders around the base clearness,
//! * **minute scale** — discrete cloud transits carve smooth notches into
//!   the profile; these create the intra-slot variance that makes the
//!   paper's MAPE′ (slot-boundary sample) much worse than MAPE (slot
//!   mean).

use rand::Rng;

/// Which RNG draw order the trace generator uses.
///
/// The generator's stream is part of its public contract: same seed ⇒
/// same trace, everywhere, forever. Making the draw order faster meant
/// *reordering* it (lane-batched Box–Muller consumes the sin half that
/// the scalar path discards), so the order is versioned explicitly
/// instead of silently changed:
///
/// * [`StreamVersion::V1`] — the original scalar order: one
///   Box–Muller normal per two uniforms (cos half only), normals
///   interleaved with trace math slot by slot. The default; every
///   pre-existing golden digest pins this stream.
/// * [`StreamVersion::V2`] — the lane order: normals drawn in batches
///   from the bulk keystream, pairwise Box–Muller consuming both the
///   cos and sin halves, and per-day panels (AR innovations, sensor
///   noise) drawn vectorwise ahead of the slot loop. ~2× faster
///   synthesis; its own golden digest is pinned separately.
///
/// Both versions are deterministic and platform-stable; they are
/// simply *different* streams. Catalog JSON and generated-scenario ids
/// carry the version, so an id never silently changes meaning.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StreamVersion {
    /// Scalar draw order (the original stream); the default.
    #[default]
    V1,
    /// Lane-batched draw order (bulk keystream, pairwise Box–Muller).
    V2,
}

/// Gross sky condition of one day.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DayCondition {
    /// Mostly cloudless; high, stable clearness.
    Clear,
    /// Broken clouds; medium clearness, high intra-day volatility.
    Mixed,
    /// Solid overcast; low clearness, moderate volatility.
    Overcast,
}

impl DayCondition {
    /// All conditions in index order (matches transition-matrix rows).
    pub const ALL: [DayCondition; 3] = [
        DayCondition::Clear,
        DayCondition::Mixed,
        DayCondition::Overcast,
    ];

    fn index(self) -> usize {
        match self {
            DayCondition::Clear => 0,
            DayCondition::Mixed => 1,
            DayCondition::Overcast => 2,
        }
    }
}

impl std::fmt::Display for DayCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DayCondition::Clear => write!(f, "clear"),
            DayCondition::Mixed => write!(f, "mixed"),
            DayCondition::Overcast => write!(f, "overcast"),
        }
    }
}

/// Per-condition clearness statistics and intra-day noise parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConditionParams {
    /// Mean base clearness index (fraction of clear-sky GHI).
    pub clearness_mean: f64,
    /// Standard deviation of the base clearness index.
    pub clearness_std: f64,
    /// AR(1) innovation standard deviation (per minute step).
    pub ar_sigma: f64,
    /// Expected cloud transits per daylight hour.
    pub transits_per_hour: f64,
}

/// The full stochastic weather model of a site.
///
/// # Example
///
/// ```
/// use solar_synth::WeatherModel;
///
/// let model = WeatherModel::desert();
/// let pi = model.stationary_distribution();
/// // A desert site is clear most days.
/// assert!(pi[0] > 0.7);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeatherModel {
    /// Row-stochastic transition matrix over `DayCondition::ALL` order.
    pub transition: [[f64; 3]; 3],
    /// Per-condition parameters, `DayCondition::ALL` order.
    pub conditions: [ConditionParams; 3],
    /// AR(1) correlation per minute (0 disables the slow wander).
    pub ar_rho_per_minute: f64,
    /// Standard deviation of the per-day linear clearness trend (slow
    /// synoptic evolution: mornings and afternoons differ
    /// systematically). The slope is drawn once per day in clearness
    /// units over ±12 h.
    pub daily_drift_std: f64,
    /// Expected frontal passages per day (Poisson). A front is a *step*
    /// change in base clearness persisting for the rest of the day — the
    /// feature that makes hours-old conditioning ratios actively
    /// misleading and pushes the optimal K down to the paper's 1–3.
    pub fronts_per_day: f64,
    /// Standard deviation of a front's clearness step.
    pub front_std: f64,
    /// Mean cloud transit duration in minutes.
    pub transit_mean_minutes: f64,
    /// Transit attenuation depth range (fraction of light removed at the
    /// transit centre), `0 < lo <= hi < 1`.
    pub transit_depth: (f64, f64),
    /// Multiplicative sensor noise standard deviation.
    pub sensor_noise_std: f64,
    /// Seasonal clearness modulation amplitude (added to base clearness,
    /// peaking mid-summer).
    pub seasonal_amplitude: f64,
    /// Which RNG draw order the generator uses for this model
    /// ([`StreamVersion::V1`] is the pinned legacy stream and the
    /// default).
    #[cfg_attr(feature = "serde", serde(default))]
    pub stream_version: StreamVersion,
}

impl WeatherModel {
    /// A stable desert climate (Nevada/Arizona style): clear most days,
    /// occasional convective clouds (monsoon-season afternoons).
    pub fn desert() -> Self {
        WeatherModel {
            transition: [[0.84, 0.13, 0.03], [0.52, 0.36, 0.12], [0.40, 0.35, 0.25]],
            conditions: [
                ConditionParams {
                    clearness_mean: 0.96,
                    clearness_std: 0.03,
                    ar_sigma: 0.022,
                    transits_per_hour: 0.5,
                },
                ConditionParams {
                    clearness_mean: 0.72,
                    clearness_std: 0.11,
                    ar_sigma: 0.050,
                    transits_per_hour: 2.0,
                },
                ConditionParams {
                    clearness_mean: 0.38,
                    clearness_std: 0.09,
                    ar_sigma: 0.035,
                    transits_per_hour: 0.9,
                },
            ],
            ar_rho_per_minute: 0.995,
            daily_drift_std: 0.05,
            fronts_per_day: 0.3,
            front_std: 0.25,
            transit_mean_minutes: 9.0,
            transit_depth: (0.25, 0.70),
            sensor_noise_std: 0.004,
            seasonal_amplitude: 0.01,
            stream_version: StreamVersion::V1,
        }
    }

    /// A temperate/continental climate (Colorado/Tennessee/North Carolina
    /// style): frequent mixed days, deep convective clouds.
    pub fn temperate() -> Self {
        WeatherModel {
            transition: [[0.50, 0.38, 0.12], [0.36, 0.45, 0.19], [0.28, 0.45, 0.27]],
            conditions: [
                ConditionParams {
                    clearness_mean: 0.93,
                    clearness_std: 0.04,
                    ar_sigma: 0.012,
                    transits_per_hour: 0.5,
                },
                ConditionParams {
                    clearness_mean: 0.62,
                    clearness_std: 0.16,
                    ar_sigma: 0.080,
                    transits_per_hour: 3.6,
                },
                ConditionParams {
                    clearness_mean: 0.28,
                    clearness_std: 0.10,
                    ar_sigma: 0.045,
                    transits_per_hour: 1.5,
                },
            ],
            ar_rho_per_minute: 0.99,
            daily_drift_std: 0.10,
            fronts_per_day: 2.2,
            front_std: 0.34,
            transit_mean_minutes: 7.0,
            transit_depth: (0.35, 0.85),
            sensor_noise_std: 0.006,
            seasonal_amplitude: 0.03,
            stream_version: StreamVersion::V1,
        }
    }

    /// A marine/foggy climate (coastal California style): persistent
    /// morning attenuation, volatile afternoons.
    pub fn marine() -> Self {
        WeatherModel {
            transition: [[0.48, 0.37, 0.15], [0.34, 0.44, 0.22], [0.26, 0.42, 0.32]],
            conditions: [
                ConditionParams {
                    clearness_mean: 0.90,
                    clearness_std: 0.05,
                    ar_sigma: 0.015,
                    transits_per_hour: 0.6,
                },
                ConditionParams {
                    clearness_mean: 0.58,
                    clearness_std: 0.13,
                    ar_sigma: 0.065,
                    transits_per_hour: 2.6,
                },
                ConditionParams {
                    clearness_mean: 0.30,
                    clearness_std: 0.09,
                    ar_sigma: 0.040,
                    transits_per_hour: 1.2,
                },
            ],
            ar_rho_per_minute: 0.99,
            daily_drift_std: 0.09,
            fronts_per_day: 1.8,
            front_std: 0.30,
            transit_mean_minutes: 11.0,
            transit_depth: (0.30, 0.75),
            sensor_noise_std: 0.005,
            seasonal_amplitude: 0.04,
            stream_version: StreamVersion::V1,
        }
    }

    /// A monsoon climate (subtropical wet/dry, Indian-plateau style):
    /// clear and stable through the dry winter, then persistently
    /// overcast with deep convective transits — the strong *negative*
    /// seasonal clearness swing peaking mid-summer is the defining
    /// feature, and is what stresses history-based predictors whose `D`
    /// window straddles the monsoon onset.
    pub fn monsoon() -> Self {
        WeatherModel {
            transition: [[0.62, 0.27, 0.11], [0.28, 0.44, 0.28], [0.14, 0.36, 0.50]],
            conditions: [
                ConditionParams {
                    clearness_mean: 0.95,
                    clearness_std: 0.04,
                    ar_sigma: 0.018,
                    transits_per_hour: 0.4,
                },
                ConditionParams {
                    clearness_mean: 0.60,
                    clearness_std: 0.15,
                    ar_sigma: 0.085,
                    transits_per_hour: 4.0,
                },
                ConditionParams {
                    clearness_mean: 0.24,
                    clearness_std: 0.09,
                    ar_sigma: 0.050,
                    transits_per_hour: 1.8,
                },
            ],
            ar_rho_per_minute: 0.99,
            daily_drift_std: 0.11,
            fronts_per_day: 2.6,
            front_std: 0.36,
            transit_mean_minutes: 8.0,
            transit_depth: (0.40, 0.88),
            sensor_noise_std: 0.006,
            // Negative: clearness *drops* toward the summer solstice
            // (wet season), the mirror image of the temperate presets.
            seasonal_amplitude: -0.18,
            stream_version: StreamVersion::V1,
        }
    }

    /// A high-latitude maritime climate (coastal-arctic style): solid
    /// overcast most of the time, weak and slow-moving convection. The
    /// interesting stress for predictors comes from the site latitude
    /// pairing — near-polar winters compress daylight to a few low-sun
    /// hours, so almost every slot sits near the ROI floor.
    pub fn arctic() -> Self {
        WeatherModel {
            transition: [[0.38, 0.38, 0.24], [0.24, 0.42, 0.34], [0.12, 0.30, 0.58]],
            conditions: [
                ConditionParams {
                    clearness_mean: 0.82,
                    clearness_std: 0.06,
                    ar_sigma: 0.020,
                    transits_per_hour: 0.7,
                },
                ConditionParams {
                    clearness_mean: 0.48,
                    clearness_std: 0.13,
                    ar_sigma: 0.055,
                    transits_per_hour: 2.2,
                },
                ConditionParams {
                    clearness_mean: 0.20,
                    clearness_std: 0.07,
                    ar_sigma: 0.035,
                    transits_per_hour: 1.0,
                },
            ],
            ar_rho_per_minute: 0.995,
            daily_drift_std: 0.08,
            fronts_per_day: 1.2,
            front_std: 0.26,
            transit_mean_minutes: 14.0,
            transit_depth: (0.30, 0.80),
            sensor_noise_std: 0.006,
            seasonal_amplitude: 0.05,
            stream_version: StreamVersion::V1,
        }
    }

    /// Returns this model tilted toward cloudier (`factor > 1`) or
    /// clearer (`factor < 1`) skies — the catalog generators' continuous
    /// cloudiness axis. Each transition row re-weights the chance of
    /// landing in the clear state by `1/factor` and the overcast state
    /// by `factor` (then renormalizes), and convective churn
    /// (`transits_per_hour`) scales with `√factor`. `factor = 1.0`
    /// returns the model bit-unchanged, so existing presets keep their
    /// exact trace streams. The result validates whenever `self` does
    /// and `factor` is finite and positive.
    pub fn with_cloudiness(mut self, factor: f64) -> WeatherModel {
        if factor == 1.0 {
            return self;
        }
        for row in &mut self.transition {
            row[0] /= factor;
            row[2] *= factor;
            let sum: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= sum;
            }
        }
        for condition in &mut self.conditions {
            condition.transits_per_hour *= factor.sqrt();
        }
        self
    }

    /// Validates that the transition matrix is row-stochastic and all
    /// parameters are in range. Returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        for (i, row) in self.transition.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(format!("transition row {i} sums to {sum}, not 1"));
            }
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                return Err(format!("transition row {i} has out-of-range probability"));
            }
        }
        for (i, c) in self.conditions.iter().enumerate() {
            if !(0.0..=1.2).contains(&c.clearness_mean) || c.clearness_std < 0.0 {
                return Err(format!("condition {i} clearness parameters out of range"));
            }
            if c.ar_sigma < 0.0 || c.transits_per_hour < 0.0 {
                return Err(format!("condition {i} noise parameters out of range"));
            }
        }
        if !(0.0..1.0).contains(&self.ar_rho_per_minute.abs()) {
            return Err("ar_rho_per_minute must be in [0, 1)".to_string());
        }
        if self.fronts_per_day < 0.0 || self.front_std < 0.0 || self.daily_drift_std < 0.0 {
            return Err("front/drift parameters must be non-negative".to_string());
        }
        let (lo, hi) = self.transit_depth;
        if !(0.0 < lo && lo <= hi && hi < 1.0) {
            return Err("transit_depth must satisfy 0 < lo <= hi < 1".to_string());
        }
        Ok(())
    }

    /// Parameters of a condition.
    pub fn params(&self, condition: DayCondition) -> ConditionParams {
        self.conditions[condition.index()]
    }

    /// Samples the next day's condition given the current one.
    pub fn step<R: Rng + ?Sized>(&self, current: DayCondition, rng: &mut R) -> DayCondition {
        let row = self.transition[current.index()];
        let draw: f64 = rng.gen();
        let mut acc = 0.0;
        for (idx, &p) in row.iter().enumerate() {
            acc += p;
            if draw < acc {
                return DayCondition::ALL[idx];
            }
        }
        DayCondition::Overcast
    }

    /// Stationary distribution of the day-condition chain (power
    /// iteration), in `DayCondition::ALL` order.
    pub fn stationary_distribution(&self) -> [f64; 3] {
        let mut pi = [1.0 / 3.0; 3];
        for _ in 0..500 {
            let mut next = [0.0; 3];
            for (&p, row) in pi.iter().zip(&self.transition) {
                for (n, &t) in next.iter_mut().zip(row) {
                    *n += p * t;
                }
            }
            pi = next;
        }
        pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn presets_validate() {
        for model in [
            WeatherModel::desert(),
            WeatherModel::temperate(),
            WeatherModel::marine(),
        ] {
            model.validate().expect("preset must be valid");
        }
    }

    #[test]
    fn validate_catches_bad_rows() {
        let mut m = WeatherModel::desert();
        m.transition[1][0] = 0.9; // row no longer sums to 1
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_depth() {
        let mut m = WeatherModel::desert();
        m.transit_depth = (0.9, 0.2);
        assert!(m.validate().is_err());
    }

    #[test]
    fn markov_chain_visits_states_proportionally() {
        let model = WeatherModel::desert();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut state = DayCondition::Clear;
        let mut counts = [0usize; 3];
        let steps = 200_000;
        for _ in 0..steps {
            state = model.step(state, &mut rng);
            counts[state.index()] += 1;
        }
        let pi = model.stationary_distribution();
        for i in 0..3 {
            let freq = counts[i] as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.02,
                "state {i}: empirical {freq} vs stationary {}",
                pi[i]
            );
        }
    }

    #[test]
    fn cloudiness_tilt_orders_stationary_clearness() {
        let base = WeatherModel::temperate();
        let clear_frac = |m: &WeatherModel| m.stationary_distribution()[0];
        let cloudier = base.clone().with_cloudiness(2.0);
        let clearer = base.clone().with_cloudiness(0.5);
        cloudier.validate().unwrap();
        clearer.validate().unwrap();
        assert!(clear_frac(&cloudier) < clear_frac(&base));
        assert!(clear_frac(&clearer) > clear_frac(&base));
        // Identity is bit-exact: existing presets keep their streams.
        assert_eq!(base.clone().with_cloudiness(1.0), base);
        // Every factor in the generators' range yields a valid model.
        for factor in [0.125, 0.25, 0.75, 1.5, 4.0, 8.0] {
            base.clone().with_cloudiness(factor).validate().unwrap();
        }
    }

    #[test]
    fn desert_is_clearer_than_temperate() {
        let d = WeatherModel::desert().stationary_distribution();
        let t = WeatherModel::temperate().stationary_distribution();
        assert!(d[0] > t[0] + 0.2, "desert {d:?} vs temperate {t:?}");
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        for model in [
            WeatherModel::desert(),
            WeatherModel::temperate(),
            WeatherModel::marine(),
        ] {
            let pi = model.stationary_distribution();
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn condition_display_and_all_order() {
        assert_eq!(DayCondition::Clear.to_string(), "clear");
        for (i, c) in DayCondition::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
