//! Deterministic synthetic-trace generation.

use crate::geometry;
use crate::sampling::poisson;
use crate::site::SiteConfig;
use crate::weather::DayCondition;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use solar_trace::{PowerTrace, TraceError};

/// A seeded generator producing irradiance traces for one site.
///
/// The generated unit is W/m² global horizontal irradiance. The same
/// `(config, seed)` pair always produces the same trace, independent of
/// platform, because the stream uses `ChaCha8Rng` and no
/// distribution-sampling code outside this crate.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_synth::{Site, TraceGenerator};
///
/// let a = TraceGenerator::new(Site::Npcs.config(), 1).generate_days(3)?;
/// let b = TraceGenerator::new(Site::Npcs.config(), 1).generate_days(3)?;
/// assert_eq!(a, b); // fully deterministic
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    config: SiteConfig,
    seed: u64,
}

/// A cloud transit event: a smooth notch carved into the day's profile.
#[derive(Copy, Clone, Debug)]
struct Transit {
    /// Centre of the event in hours.
    centre_h: f64,
    /// Half-width in hours.
    half_width_h: f64,
    /// Fraction of light removed at the centre, in (0, 1).
    depth: f64,
}

impl Transit {
    /// Multiplicative attenuation at time `t_h` (1 = no effect). The notch
    /// is a raised-cosine window so profiles stay smooth.
    fn factor(&self, t_h: f64) -> f64 {
        let x = (t_h - self.centre_h) / self.half_width_h;
        if x.abs() >= 1.0 {
            1.0
        } else {
            let window = 0.5 * (1.0 + (std::f64::consts::PI * x).cos());
            1.0 - self.depth * window
        }
    }
}

impl TraceGenerator {
    /// Creates a generator for `config` with a user seed.
    pub fn new(config: SiteConfig, seed: u64) -> Self {
        TraceGenerator { config, seed }
    }

    /// The site configuration.
    pub fn config(&self) -> &SiteConfig {
        &self.config
    }

    /// Generates `days` whole days of irradiance starting at day-of-year 1.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero (the trace would be empty).
    pub fn generate_days(&self, days: usize) -> Result<PowerTrace, TraceError> {
        self.generate_with_conditions(days).map(|(trace, _)| trace)
    }

    /// Generates a trace together with the sampled per-day conditions,
    /// useful for analyses that need the hidden weather state.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero.
    pub fn generate_with_conditions(
        &self,
        days: usize,
    ) -> Result<(PowerTrace, Vec<DayCondition>), TraceError> {
        let res = self.config.resolution;
        let spd = res.samples_per_day();
        let mut state = self.day_state();
        let mut samples = Vec::with_capacity(days * spd);
        let mut conditions = Vec::with_capacity(days);
        let mut day_buf = Vec::with_capacity(spd);
        for day in 0..days {
            conditions.push(self.generate_day_into(&mut state, day, &mut day_buf));
            samples.extend_from_slice(&day_buf);
        }
        let trace = PowerTrace::new(self.config.name.clone(), res, samples)?;
        Ok((trace, conditions))
    }

    /// The carried generator state at day 0, burn-in included. Both the
    /// batch path and the streaming path start here, so their RNG
    /// streams are identical by construction.
    pub(crate) fn day_state(&self) -> DayState {
        let res = self.config.resolution;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ self.config.seed_stream);
        let weather = &self.config.weather;

        // Burn in the day-condition chain so the first day is drawn close
        // to the stationary distribution.
        let mut condition = DayCondition::Clear;
        for _ in 0..16 {
            condition = weather.step(condition, &mut rng);
        }

        let rho = weather.ar_rho_per_minute.powf(res.as_seconds_f64() / 60.0);
        let step_h = res.as_seconds_f64() / 3600.0;
        DayState {
            rng,
            condition,
            // AR(1) deviation, persisted across days so dawn continues
            // the previous evening's air mass rather than resetting.
            ar_state: 0.0,
            rho,
            innovation_scale: (1.0 - rho * rho).sqrt(),
            // The hour-angle cosine grid depends only on the sample
            // spacing: computed once here, shared by every generated day
            // (the per-day transcendentals live in `DayGeometry`).
            cos_hour: geometry::hour_cosine_grid(res.samples_per_day(), step_h),
            fronts: Vec::new(),
            transits: Vec::new(),
        }
    }

    /// Generates one day of samples into `out` (replacing its contents),
    /// advancing the carried state; returns the day's condition. This is
    /// the single source of every sample both `generate_*` and the
    /// streaming [`crate::SlotStream`] emit.
    pub(crate) fn generate_day_into(
        &self,
        state: &mut DayState,
        day: usize,
        out: &mut Vec<f64>,
    ) -> DayCondition {
        let res = self.config.resolution;
        let spd = res.samples_per_day();
        let step_h = res.as_seconds_f64() / 3600.0;
        let weather = &self.config.weather;
        let DayState {
            rng,
            condition: day_condition,
            ar_state,
            rho,
            innovation_scale,
            cos_hour,
            fronts,
            transits,
        } = state;
        out.clear();

        let doy = (day % 365) as u32 + 1;
        *day_condition = weather.step(*day_condition, rng);
        let condition = *day_condition;
        let params = weather.params(condition);
        // Declination, sin φ sin δ, cos φ cos δ and the extraterrestrial
        // irradiance are day-invariant: computed once here instead of
        // inside the slot loop (bit-identical to the composed per-sample
        // geometry; see `DayGeometry`).
        let day_geom = geometry::DayGeometry::new(self.config.latitude_deg, doy);

        // Seasonal clearness modulation peaking at the *local* summer
        // solstice: the phase flips south of the equator (a −18%
        // monsoon swing means an austral wet season in austral summer,
        // not a copy of the northern calendar).
        let hemisphere = if self.config.latitude_deg < 0.0 {
            -1.0
        } else {
            1.0
        };
        let seasonal = hemisphere
            * self.config.weather.seasonal_amplitude
            * (std::f64::consts::TAU * (doy as f64 - 172.0) / 365.0).cos();
        let base_clearness =
            (params.clearness_mean + seasonal + params.clearness_std * normal(rng))
                .clamp(0.03, 1.08);
        // Per-day linear trend: slow synoptic evolution across the
        // day.
        let drift_slope = weather.daily_drift_std * normal(rng);
        // Frontal passages: step changes in base clearness that
        // persist for the rest of the day. These make hours-old
        // conditioning ratios actively misleading, which is what
        // bounds the useful Φ window (the paper's small optimal K).
        let front_count = poisson(weather.fronts_per_day, rng);
        fronts.clear();
        fronts.extend((0..front_count).map(|_| {
            let t_h = 6.0 + rng.gen::<f64>() * 12.0; // daylight hours
            (t_h, weather.front_std * normal(rng))
        }));
        fronts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("front times are finite"));

        self.sample_transits(doy, params.transits_per_hour, rng, transits);

        debug_assert_eq!(cos_hour.len(), spd);
        for (idx, &cos_omega) in cos_hour.iter().enumerate() {
            let t_h = idx as f64 * step_h;
            let sin_h = day_geom.sin_elevation(cos_omega);
            // Turbidity scales the cloudless ceiling itself; at the
            // default 0.0 the factor is exactly 1.0, so legacy streams
            // are bit-unchanged.
            let clear = self.config.clear_sky.ghi(sin_h) * (1.0 - self.config.turbidity);
            if clear <= 0.0 {
                *ar_state *= *rho; // decay quietly overnight
                out.push(0.0);
                continue;
            }
            *ar_state = *rho * *ar_state + params.ar_sigma * *innovation_scale * normal(rng);
            let drift = drift_slope * (t_h - 12.0) / 12.0;
            let front_shift: f64 = fronts
                .iter()
                .take_while(|&&(t_f, _)| t_f <= t_h)
                .map(|&(_, delta)| delta)
                .sum();
            let mut attenuation =
                (base_clearness + drift + front_shift + *ar_state).clamp(0.02, 1.08);
            for transit in transits.iter() {
                attenuation *= transit.factor(t_h);
            }
            let noise = 1.0 + weather.sensor_noise_std * normal(rng);
            let value = (clear * attenuation * noise).max(0.0);
            // Pyranometer noise floor: real instruments report ~0
            // below ~1 W/m²; without this, grazing-sun samples of
            // 1e-20 W/m² would appear and historical means at dawn
            // slots would be meaninglessly tiny.
            out.push(if value < 1.0 { 0.0 } else { value });
        }
        condition
    }

    /// Samples the day's cloud-transit events over the daylight window
    /// into `out` (replacing its contents — the buffer is carried in
    /// [`DayState`] so day generation allocates nothing per day).
    fn sample_transits(
        &self,
        doy: u32,
        rate_per_hour: f64,
        rng: &mut ChaCha8Rng,
        out: &mut Vec<Transit>,
    ) {
        out.clear();
        let day_len = geometry::day_length_hours(self.config.latitude_deg, doy);
        if day_len <= 0.0 || rate_per_hour <= 0.0 {
            return;
        }
        let sunrise = 12.0 - day_len / 2.0;
        let count = poisson(rate_per_hour * day_len, rng);
        let (depth_lo, depth_hi) = self.config.weather.transit_depth;
        out.extend((0..count).map(|_| {
            let centre_h = sunrise + rng.gen::<f64>() * day_len;
            let duration_min = (-self.config.weather.transit_mean_minutes
                * rng.gen::<f64>().max(1e-12).ln())
            .clamp(1.0, 90.0);
            Transit {
                centre_h,
                half_width_h: duration_min / 60.0 / 2.0,
                depth: depth_lo + rng.gen::<f64>() * (depth_hi - depth_lo),
            }
        }));
    }
}

/// The RNG/weather state carried from one generated day into the next.
/// Shared by the batch and streaming generation paths. Besides the
/// weather chain it owns the stream-invariant hour-angle cosine grid and
/// the per-day scratch buffers, so generating a day performs no heap
/// allocation in steady state.
#[derive(Clone, Debug)]
pub(crate) struct DayState {
    rng: ChaCha8Rng,
    condition: DayCondition,
    ar_state: f64,
    rho: f64,
    innovation_scale: f64,
    /// `cos ω` per sample index; depends only on the resolution.
    cos_hour: Vec<f64>,
    /// Reused frontal-passage scratch: `(time_h, clearness_shift)`.
    fronts: Vec<(f64, f64)>,
    /// Reused cloud-transit scratch.
    transits: Vec<Transit>,
}

/// Standard normal draw via Box–Muller (keeps us off external
/// distribution crates).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;
    use solar_trace::stats::TraceStats;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = TraceGenerator::new(Site::Spmd.config(), 9)
            .generate_days(5)
            .unwrap();
        let b = TraceGenerator::new(Site::Spmd.config(), 9)
            .generate_days(5)
            .unwrap();
        let c = TraceGenerator::new(Site::Spmd.config(), 10)
            .generate_days(5)
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sites_with_same_seed_differ() {
        let a = TraceGenerator::new(Site::Npcs.config(), 3)
            .generate_days(2)
            .unwrap();
        let b = TraceGenerator::new(Site::Pfci.config(), 3)
            .generate_days(2)
            .unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn night_is_dark_and_day_is_bright() {
        let trace = TraceGenerator::new(Site::Pfci.config(), 1)
            .generate_days(10)
            .unwrap();
        let spd = trace.samples_per_day();
        for day in 0..trace.days() {
            let d = trace.day(day).unwrap();
            // Midnight and ~3am are dark.
            assert_eq!(d[0], 0.0);
            assert_eq!(d[spd / 8], 0.0);
            // Noon is bright on every desert day.
            assert!(d[spd / 2] > 50.0, "day {day}: noon {}", d[spd / 2]);
        }
    }

    #[test]
    fn clear_desert_noon_is_physical() {
        // Winter-only noon peaks near 600 W/m² at 33°N; spanning into
        // summer the annual peak must reach the ~1 kW/m² regime.
        let trace = TraceGenerator::new(Site::Pfci.config(), 2)
            .generate_days(200)
            .unwrap();
        let peak = trace.peak_power();
        assert!(peak > 800.0 && peak < 1250.0, "peak {peak}");
    }

    #[test]
    fn variability_ordering_matches_paper() {
        // Desert sites must have lower day-to-day and intra-day
        // variability than the temperate/marine sites.
        let cv = |site: Site| {
            let t = TraceGenerator::new(site.config(), 11)
                .generate_days(60)
                .unwrap();
            TraceStats::of(&t).daily_energy_cv
        };
        let pfci = cv(Site::Pfci);
        let ornl = cv(Site::Ornl);
        let spmd = cv(Site::Spmd);
        assert!(
            pfci < ornl,
            "PFCI {pfci} should be steadier than ORNL {ornl}"
        );
        assert!(
            pfci < spmd,
            "PFCI {pfci} should be steadier than SPMD {spmd}"
        );
    }

    #[test]
    fn conditions_are_reported_per_day() {
        let (trace, conditions) = TraceGenerator::new(Site::Hsu.config(), 5)
            .generate_with_conditions(14)
            .unwrap();
        assert_eq!(conditions.len(), trace.days());
    }

    #[test]
    fn zero_days_is_an_error() {
        assert!(TraceGenerator::new(Site::Hsu.config(), 5)
            .generate_days(0)
            .is_err());
    }

    #[test]
    fn transit_factor_is_bounded_and_local() {
        let t = Transit {
            centre_h: 12.0,
            half_width_h: 0.25,
            depth: 0.5,
        };
        assert_eq!(t.factor(11.0), 1.0);
        assert_eq!(t.factor(13.0), 1.0);
        let centre = t.factor(12.0);
        assert!((centre - 0.5).abs() < 1e-12);
        for i in 0..100 {
            let x = 11.5 + i as f64 * 0.01;
            let f = t.factor(x);
            assert!((0.5..=1.0).contains(&f));
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lambda = 4.0;
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
