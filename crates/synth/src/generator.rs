//! Deterministic synthetic-trace generation.

use crate::geometry;
use crate::lanes::{NormalSource, SynthCounters};
use crate::sampling::{poisson, poisson_inversion};
use crate::site::SiteConfig;
use crate::weather::{DayCondition, StreamVersion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use solar_trace::{PowerTrace, TraceError};

/// A seeded generator producing irradiance traces for one site.
///
/// The generated unit is W/m² global horizontal irradiance. The same
/// `(config, seed)` pair always produces the same trace, independent of
/// platform, because the stream uses `ChaCha8Rng` and no
/// distribution-sampling code outside this crate.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_synth::{Site, TraceGenerator};
///
/// let a = TraceGenerator::new(Site::Npcs.config(), 1).generate_days(3)?;
/// let b = TraceGenerator::new(Site::Npcs.config(), 1).generate_days(3)?;
/// assert_eq!(a, b); // fully deterministic
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    config: SiteConfig,
    seed: u64,
}

/// A cloud transit event: a smooth notch carved into the day's profile.
#[derive(Copy, Clone, Debug)]
struct Transit {
    /// Centre of the event in hours.
    centre_h: f64,
    /// Half-width in hours.
    half_width_h: f64,
    /// Fraction of light removed at the centre, in (0, 1).
    depth: f64,
}

impl Transit {
    /// Multiplicative attenuation at time `t_h` (1 = no effect). The notch
    /// is a raised-cosine window so profiles stay smooth.
    fn factor(&self, t_h: f64) -> f64 {
        let x = (t_h - self.centre_h) / self.half_width_h;
        if x.abs() >= 1.0 {
            1.0
        } else {
            let window = 0.5 * (1.0 + (std::f64::consts::PI * x).cos());
            1.0 - self.depth * window
        }
    }
}

impl TraceGenerator {
    /// Creates a generator for `config` with a user seed.
    pub fn new(config: SiteConfig, seed: u64) -> Self {
        TraceGenerator { config, seed }
    }

    /// The site configuration.
    pub fn config(&self) -> &SiteConfig {
        &self.config
    }

    /// Generates `days` whole days of irradiance starting at day-of-year 1.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero (the trace would be empty).
    pub fn generate_days(&self, days: usize) -> Result<PowerTrace, TraceError> {
        self.generate_with_conditions(days).map(|(trace, _)| trace)
    }

    /// Generates a trace together with the sampled per-day conditions,
    /// useful for analyses that need the hidden weather state.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero.
    pub fn generate_with_conditions(
        &self,
        days: usize,
    ) -> Result<(PowerTrace, Vec<DayCondition>), TraceError> {
        self.generate_counted(days)
            .map(|(trace, conditions, _)| (trace, conditions))
    }

    /// Like [`TraceGenerator::generate_days`], but also returns the
    /// deterministic synthesis-cost counters (keystream blocks
    /// consumed, normal draws served) for the whole generation — the
    /// values the fleet engine merges into its run ledger once per
    /// work unit.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero.
    pub fn generate_days_counted(
        &self,
        days: usize,
    ) -> Result<(PowerTrace, SynthCounters), TraceError> {
        self.generate_counted(days)
            .map(|(trace, _, counters)| (trace, counters))
    }

    /// Like [`TraceGenerator::generate_days_counted`], but also
    /// returns a [`SynthCheckpoint`] at the generated horizon —
    /// [`TraceGenerator::resume_days_counted`] or
    /// [`TraceGenerator::slot_stream_from`] continue the identical
    /// keystream from there without replaying the generated days.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `days` is zero.
    pub fn generate_days_checkpointed(
        &self,
        days: usize,
    ) -> Result<(PowerTrace, SynthCounters, SynthCheckpoint), TraceError> {
        let res = self.config.resolution;
        let spd = res.samples_per_day();
        let mut state = self.day_state();
        let mut samples = Vec::with_capacity(days * spd);
        let mut day_buf = Vec::with_capacity(spd);
        for day in 0..days {
            self.generate_day_into(&mut state, day, &mut day_buf);
            samples.extend_from_slice(&day_buf);
        }
        let counters = state.counters();
        let trace = PowerTrace::new(self.config.name.clone(), res, samples)?;
        Ok((
            trace,
            counters,
            SynthCheckpoint {
                state,
                next_day: days,
            },
        ))
    }

    /// Continues generation from `checkpoint` until the horizon
    /// reaches `total_days`, returning only the appended days'
    /// samples, the synthesis counters of the appended work alone,
    /// and the advanced checkpoint. The appended samples are
    /// bit-identical to the corresponding tail of a cold
    /// `generate_days(total_days)` run — that is the whole point.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TooShort`] if `total_days` does not
    /// extend past the checkpoint's horizon.
    pub fn resume_days_counted(
        &self,
        checkpoint: SynthCheckpoint,
        total_days: usize,
    ) -> Result<(Vec<f64>, SynthCounters, SynthCheckpoint), TraceError> {
        let spd = self.config.resolution.samples_per_day();
        if total_days <= checkpoint.next_day {
            return Err(TraceError::TooShort {
                provided: total_days * spd,
                required: (checkpoint.next_day + 1) * spd,
            });
        }
        let SynthCheckpoint {
            mut state,
            next_day,
        } = checkpoint;
        let base = state.counters();
        let mut samples = Vec::with_capacity((total_days - next_day) * spd);
        let mut day_buf = Vec::with_capacity(spd);
        for day in next_day..total_days {
            self.generate_day_into(&mut state, day, &mut day_buf);
            samples.extend_from_slice(&day_buf);
        }
        let counters = state.counters().since(base);
        Ok((
            samples,
            counters,
            SynthCheckpoint {
                state,
                next_day: total_days,
            },
        ))
    }

    fn generate_counted(
        &self,
        days: usize,
    ) -> Result<(PowerTrace, Vec<DayCondition>, SynthCounters), TraceError> {
        let res = self.config.resolution;
        let spd = res.samples_per_day();
        let mut state = self.day_state();
        let mut samples = Vec::with_capacity(days * spd);
        let mut conditions = Vec::with_capacity(days);
        let mut day_buf = Vec::with_capacity(spd);
        for day in 0..days {
            conditions.push(self.generate_day_into(&mut state, day, &mut day_buf));
            samples.extend_from_slice(&day_buf);
        }
        let counters = state.counters();
        let trace = PowerTrace::new(self.config.name.clone(), res, samples)?;
        Ok((trace, conditions, counters))
    }

    /// The carried generator state at day 0, burn-in included. Both the
    /// batch path and the streaming path start here, so their RNG
    /// streams are identical by construction.
    pub(crate) fn day_state(&self) -> DayState {
        let res = self.config.resolution;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ self.config.seed_stream);
        let weather = &self.config.weather;

        // Burn in the day-condition chain so the first day is drawn close
        // to the stationary distribution.
        let mut condition = DayCondition::Clear;
        for _ in 0..16 {
            condition = weather.step(condition, &mut rng);
        }

        let rho = weather.ar_rho_per_minute.powf(res.as_seconds_f64() / 60.0);
        let step_h = res.as_seconds_f64() / 3600.0;
        DayState {
            rng,
            condition,
            // AR(1) deviation, persisted across days so dawn continues
            // the previous evening's air mass rather than resetting.
            ar_state: 0.0,
            rho,
            innovation_scale: (1.0 - rho * rho).sqrt(),
            // The hour-angle cosine grid depends only on the sample
            // spacing: computed once here, shared by every generated day
            // (the per-day transcendentals live in `DayGeometry`).
            cos_hour: geometry::hour_cosine_grid(res.samples_per_day(), step_h),
            fronts: Vec::new(),
            transits: Vec::new(),
            // The normal supply fixes the draw order for the life of
            // the stream: scalar per-draw Box–Muller on v1, batched
            // pairwise lanes on v2.
            normals: match weather.stream_version {
                StreamVersion::V1 => NormalSource::scalar(),
                StreamVersion::V2 => NormalSource::lanes(),
            },
            clear_panel: Vec::new(),
            innovation_panel: Vec::new(),
            noise_panel: Vec::new(),
        }
    }

    /// Generates one day of samples into `out` (replacing its contents),
    /// advancing the carried state; returns the day's condition. This is
    /// the single source of every sample both `generate_*` and the
    /// streaming [`crate::SlotStream`] emit.
    ///
    /// Dispatches on the site's
    /// [`StreamVersion`](crate::weather::StreamVersion): the two bodies
    /// sample the same model, but consume the keystream in different
    /// orders and must never be cross-edited (each order is pinned by
    /// its own golden digest).
    pub(crate) fn generate_day_into(
        &self,
        state: &mut DayState,
        day: usize,
        out: &mut Vec<f64>,
    ) -> DayCondition {
        match self.config.weather.stream_version {
            StreamVersion::V1 => self.generate_day_v1(state, day, out),
            StreamVersion::V2 => self.generate_day_v2(state, day, out),
        }
    }

    /// The v1 (scalar-order) day body. Every RNG call here is in the
    /// exact sequence the original scalar generator used — one
    /// Box–Muller draw at a time with the sin half discarded, Knuth
    /// Poisson counts — because the pinned v1 golden digests depend on
    /// that consumption byte-for-byte.
    fn generate_day_v1(
        &self,
        state: &mut DayState,
        day: usize,
        out: &mut Vec<f64>,
    ) -> DayCondition {
        let res = self.config.resolution;
        let spd = res.samples_per_day();
        let step_h = res.as_seconds_f64() / 3600.0;
        let weather = &self.config.weather;
        let DayState {
            rng,
            condition: day_condition,
            ar_state,
            rho,
            innovation_scale,
            cos_hour,
            fronts,
            transits,
            normals,
            ..
        } = state;
        out.clear();

        let doy = (day % 365) as u32 + 1;
        *day_condition = weather.step(*day_condition, rng);
        let condition = *day_condition;
        let params = weather.params(condition);
        // Declination, sin φ sin δ, cos φ cos δ and the extraterrestrial
        // irradiance are day-invariant: computed once here instead of
        // inside the slot loop (bit-identical to the composed per-sample
        // geometry; see `DayGeometry`).
        let day_geom = geometry::DayGeometry::new(self.config.latitude_deg, doy);

        // Seasonal clearness modulation peaking at the *local* summer
        // solstice: the phase flips south of the equator (a −18%
        // monsoon swing means an austral wet season in austral summer,
        // not a copy of the northern calendar).
        let hemisphere = if self.config.latitude_deg < 0.0 {
            -1.0
        } else {
            1.0
        };
        let seasonal = hemisphere
            * self.config.weather.seasonal_amplitude
            * (std::f64::consts::TAU * (doy as f64 - 172.0) / 365.0).cos();
        let base_clearness =
            (params.clearness_mean + seasonal + params.clearness_std * normals.next(rng))
                .clamp(0.03, 1.08);
        // Per-day linear trend: slow synoptic evolution across the
        // day.
        let drift_slope = weather.daily_drift_std * normals.next(rng);
        // Frontal passages: step changes in base clearness that
        // persist for the rest of the day. These make hours-old
        // conditioning ratios actively misleading, which is what
        // bounds the useful Φ window (the paper's small optimal K).
        let front_count = poisson(weather.fronts_per_day, rng);
        fronts.clear();
        fronts.extend((0..front_count).map(|_| {
            let t_h = 6.0 + rng.gen::<f64>() * 12.0; // daylight hours
            (t_h, weather.front_std * normals.next(rng))
        }));
        fronts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("front times are finite"));

        self.sample_transits(
            doy,
            params.transits_per_hour,
            rng,
            transits,
            StreamVersion::V1,
        );

        debug_assert_eq!(cos_hour.len(), spd);
        for (idx, &cos_omega) in cos_hour.iter().enumerate() {
            let t_h = idx as f64 * step_h;
            let sin_h = day_geom.sin_elevation(cos_omega);
            // Turbidity scales the cloudless ceiling itself; at the
            // default 0.0 the factor is exactly 1.0, so legacy streams
            // are bit-unchanged.
            let clear = self.config.clear_sky.ghi(sin_h) * (1.0 - self.config.turbidity);
            if clear <= 0.0 {
                *ar_state *= *rho; // decay quietly overnight
                out.push(0.0);
                continue;
            }
            *ar_state = *rho * *ar_state + params.ar_sigma * *innovation_scale * normals.next(rng);
            let drift = drift_slope * (t_h - 12.0) / 12.0;
            let front_shift: f64 = fronts
                .iter()
                .take_while(|&&(t_f, _)| t_f <= t_h)
                .map(|&(_, delta)| delta)
                .sum();
            let mut attenuation =
                (base_clearness + drift + front_shift + *ar_state).clamp(0.02, 1.08);
            for transit in transits.iter() {
                attenuation *= transit.factor(t_h);
            }
            let noise = 1.0 + weather.sensor_noise_std * normals.next(rng);
            let value = (clear * attenuation * noise).max(0.0);
            // Pyranometer noise floor: real instruments report ~0
            // below ~1 W/m²; without this, grazing-sun samples of
            // 1e-20 W/m² would appear and historical means at dawn
            // slots would be meaninglessly tiny.
            out.push(if value < 1.0 { 0.0 } else { value });
        }
        condition
    }

    /// The v2 (lane-order) day body: the same weather model as v1, but
    /// the keystream is consumed in structure-of-arrays order. The day
    /// header (condition step, clearness, drift, fronts, transits)
    /// draws first — with Poisson counts from the single-uniform
    /// inversion sampler — then three flat panels are built for the
    /// slot loop: the clear-sky GHI vector, one batched AR(1)
    /// innovation per daylight slot, and one batched sensor-noise
    /// normal per daylight slot. Normals come pairwise from the lane
    /// source (both Box–Muller halves consumed), which is what makes
    /// this a different — and faster — stream from v1.
    fn generate_day_v2(
        &self,
        state: &mut DayState,
        day: usize,
        out: &mut Vec<f64>,
    ) -> DayCondition {
        let res = self.config.resolution;
        let spd = res.samples_per_day();
        let step_h = res.as_seconds_f64() / 3600.0;
        let weather = &self.config.weather;
        let DayState {
            rng,
            condition: day_condition,
            ar_state,
            rho,
            innovation_scale,
            cos_hour,
            fronts,
            transits,
            normals,
            clear_panel,
            innovation_panel,
            noise_panel,
        } = state;
        out.clear();

        let doy = (day % 365) as u32 + 1;
        *day_condition = weather.step(*day_condition, rng);
        let condition = *day_condition;
        let params = weather.params(condition);
        let day_geom = geometry::DayGeometry::new(self.config.latitude_deg, doy);

        let hemisphere = if self.config.latitude_deg < 0.0 {
            -1.0
        } else {
            1.0
        };
        let seasonal = hemisphere
            * weather.seasonal_amplitude
            * (std::f64::consts::TAU * (doy as f64 - 172.0) / 365.0).cos();
        let base_clearness =
            (params.clearness_mean + seasonal + params.clearness_std * normals.next(rng))
                .clamp(0.03, 1.08);
        let drift_slope = weather.daily_drift_std * normals.next(rng);
        let front_count = poisson_inversion(weather.fronts_per_day, rng);
        fronts.clear();
        fronts.extend((0..front_count).map(|_| {
            let t_h = 6.0 + rng.gen::<f64>() * 12.0; // daylight hours
            (t_h, weather.front_std * normals.next(rng))
        }));
        fronts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("front times are finite"));

        self.sample_transits(
            doy,
            params.transits_per_hour,
            rng,
            transits,
            StreamVersion::V2,
        );

        // Panel 1: the clear-sky GHI vector. Pure geometry — no RNG —
        // so it vectorizes, and it tells us exactly how many daylight
        // slots need stochastic draws.
        debug_assert_eq!(cos_hour.len(), spd);
        clear_panel.clear();
        let mut daylight = 0usize;
        for &cos_omega in cos_hour.iter() {
            let sin_h = day_geom.sin_elevation(cos_omega);
            let clear = self.config.clear_sky.ghi(sin_h) * (1.0 - self.config.turbidity);
            if clear > 0.0 {
                daylight += 1;
            }
            clear_panel.push(clear);
        }

        // Panels 2 + 3: one bulk normal fill each — AR(1) innovations
        // and sensor noise for the daylight slots, in that order.
        innovation_panel.resize(daylight, 0.0);
        normals.fill(rng, innovation_panel.as_mut_slice());
        noise_panel.resize(daylight, 0.0);
        normals.fill(rng, noise_panel.as_mut_slice());

        // Assembly: pure trace math over the panels. Front shifts are
        // accumulated with a moving pointer (fronts are time-sorted,
        // and adding deltas in the same order as v1's prefix sum keeps
        // the arithmetic identical). Transits are applied afterwards,
        // per event over its own sample window, so the main loop never
        // scans the transit list.
        let mut front_ptr = 0usize;
        let mut front_shift = 0.0f64;
        let mut lane = 0usize;
        for (idx, &clear) in clear_panel.iter().enumerate() {
            if clear <= 0.0 {
                *ar_state *= *rho; // decay quietly overnight
                out.push(0.0);
                continue;
            }
            let t_h = idx as f64 * step_h;
            *ar_state =
                *rho * *ar_state + params.ar_sigma * *innovation_scale * innovation_panel[lane];
            let drift = drift_slope * (t_h - 12.0) / 12.0;
            while front_ptr < fronts.len() && fronts[front_ptr].0 <= t_h {
                front_shift += fronts[front_ptr].1;
                front_ptr += 1;
            }
            let attenuation = (base_clearness + drift + front_shift + *ar_state).clamp(0.02, 1.08);
            let noise = 1.0 + weather.sensor_noise_std * noise_panel[lane];
            lane += 1;
            out.push(clear * attenuation * noise);
        }

        // Transit pass: each event only touches the samples inside its
        // raised-cosine window (the factor is exactly 1 outside, so the
        // conservative index bounds lose nothing). Night samples are 0
        // and stay 0 under multiplication.
        for transit in transits.iter() {
            let lo = ((transit.centre_h - transit.half_width_h) / step_h)
                .floor()
                .max(0.0) as usize;
            let hi =
                (((transit.centre_h + transit.half_width_h) / step_h).ceil() as usize).min(spd - 1);
            for (offset, value) in out[lo.min(hi)..=hi].iter_mut().enumerate() {
                *value *= transit.factor((lo + offset) as f64 * step_h);
            }
        }

        // Pyranometer floor, vectorized over the day (subsumes the
        // `max(0)` guard: negatives are < 1 W/m² too).
        for value in out.iter_mut() {
            if *value < 1.0 {
                *value = 0.0;
            }
        }
        condition
    }

    /// Samples the day's cloud-transit events over the daylight window
    /// into `out` (replacing its contents — the buffer is carried in
    /// [`DayState`] so day generation allocates nothing per day). The
    /// stream version selects the count sampler (Knuth on v1, CDF
    /// inversion on v2); the per-event draws are uniform-only and
    /// shared.
    fn sample_transits(
        &self,
        doy: u32,
        rate_per_hour: f64,
        rng: &mut ChaCha8Rng,
        out: &mut Vec<Transit>,
        version: StreamVersion,
    ) {
        out.clear();
        let day_len = geometry::day_length_hours(self.config.latitude_deg, doy);
        if day_len <= 0.0 || rate_per_hour <= 0.0 {
            return;
        }
        let sunrise = 12.0 - day_len / 2.0;
        let count = match version {
            StreamVersion::V1 => poisson(rate_per_hour * day_len, rng),
            StreamVersion::V2 => poisson_inversion(rate_per_hour * day_len, rng),
        };
        let (depth_lo, depth_hi) = self.config.weather.transit_depth;
        out.extend((0..count).map(|_| {
            let centre_h = sunrise + rng.gen::<f64>() * day_len;
            let duration_min = (-self.config.weather.transit_mean_minutes
                * rng.gen::<f64>().max(1e-12).ln())
            .clamp(1.0, 90.0);
            Transit {
                centre_h,
                half_width_h: duration_min / 60.0 / 2.0,
                depth: depth_lo + rng.gen::<f64>() * (depth_hi - depth_lo),
            }
        }));
    }
}

/// The RNG/weather state carried from one generated day into the next.
/// Shared by the batch and streaming generation paths. Besides the
/// weather chain it owns the stream-invariant hour-angle cosine grid and
/// the per-day scratch buffers, so generating a day performs no heap
/// allocation in steady state.
#[derive(Clone, Debug)]
pub(crate) struct DayState {
    rng: ChaCha8Rng,
    condition: DayCondition,
    ar_state: f64,
    rho: f64,
    innovation_scale: f64,
    /// `cos ω` per sample index; depends only on the resolution.
    cos_hour: Vec<f64>,
    /// Reused frontal-passage scratch: `(time_h, clearness_shift)`.
    fronts: Vec<(f64, f64)>,
    /// Reused cloud-transit scratch.
    transits: Vec<Transit>,
    /// The stream's normal supply (scalar on v1, batched lanes on v2).
    normals: NormalSource,
    /// Reused v2 SoA panels: clear-sky GHI per slot, then one AR(1)
    /// innovation and one sensor-noise normal per *daylight* slot.
    clear_panel: Vec<f64>,
    innovation_panel: Vec<f64>,
    noise_panel: Vec<f64>,
}

impl DayState {
    /// Synthesis-cost counters at the stream's current position.
    pub(crate) fn counters(&self) -> SynthCounters {
        SynthCounters::at(&self.rng, self.normals.draws())
    }
}

/// A resume point for trace synthesis at a day boundary: the carried
/// generator state after some prefix of days, from which generation
/// continues bit-identically to a cold run over the longer horizon.
///
/// Produced by [`TraceGenerator::generate_days_checkpointed`] and
/// [`crate::SlotStream::checkpoint`]; consumed by
/// [`TraceGenerator::resume_days_counted`] and
/// [`TraceGenerator::slot_stream_from`]. Opaque — a checkpoint is
/// only meaningful for the exact `(config, seed)` generator that
/// produced it; resuming with a different generator silently yields a
/// foreign stream, so callers key stored checkpoints by the full
/// scenario identity.
#[derive(Clone, Debug)]
pub struct SynthCheckpoint {
    pub(crate) state: DayState,
    pub(crate) next_day: usize,
}

impl SynthCheckpoint {
    /// The first ungenerated day — equivalently, how many days of the
    /// stream lie behind this checkpoint.
    pub fn next_day(&self) -> usize {
        self.next_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;
    use solar_trace::stats::TraceStats;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = TraceGenerator::new(Site::Spmd.config(), 9)
            .generate_days(5)
            .unwrap();
        let b = TraceGenerator::new(Site::Spmd.config(), 9)
            .generate_days(5)
            .unwrap();
        let c = TraceGenerator::new(Site::Spmd.config(), 10)
            .generate_days(5)
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sites_with_same_seed_differ() {
        let a = TraceGenerator::new(Site::Npcs.config(), 3)
            .generate_days(2)
            .unwrap();
        let b = TraceGenerator::new(Site::Pfci.config(), 3)
            .generate_days(2)
            .unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn night_is_dark_and_day_is_bright() {
        let trace = TraceGenerator::new(Site::Pfci.config(), 1)
            .generate_days(10)
            .unwrap();
        let spd = trace.samples_per_day();
        for day in 0..trace.days() {
            let d = trace.day(day).unwrap();
            // Midnight and ~3am are dark.
            assert_eq!(d[0], 0.0);
            assert_eq!(d[spd / 8], 0.0);
            // Noon is bright on every desert day.
            assert!(d[spd / 2] > 50.0, "day {day}: noon {}", d[spd / 2]);
        }
    }

    #[test]
    fn clear_desert_noon_is_physical() {
        // Winter-only noon peaks near 600 W/m² at 33°N; spanning into
        // summer the annual peak must reach the ~1 kW/m² regime.
        let trace = TraceGenerator::new(Site::Pfci.config(), 2)
            .generate_days(200)
            .unwrap();
        let peak = trace.peak_power();
        assert!(peak > 800.0 && peak < 1250.0, "peak {peak}");
    }

    #[test]
    fn variability_ordering_matches_paper() {
        // Desert sites must have lower day-to-day and intra-day
        // variability than the temperate/marine sites.
        let cv = |site: Site| {
            let t = TraceGenerator::new(site.config(), 11)
                .generate_days(60)
                .unwrap();
            TraceStats::of(&t).daily_energy_cv
        };
        let pfci = cv(Site::Pfci);
        let ornl = cv(Site::Ornl);
        let spmd = cv(Site::Spmd);
        assert!(
            pfci < ornl,
            "PFCI {pfci} should be steadier than ORNL {ornl}"
        );
        assert!(
            pfci < spmd,
            "PFCI {pfci} should be steadier than SPMD {spmd}"
        );
    }

    #[test]
    fn conditions_are_reported_per_day() {
        let (trace, conditions) = TraceGenerator::new(Site::Hsu.config(), 5)
            .generate_with_conditions(14)
            .unwrap();
        assert_eq!(conditions.len(), trace.days());
    }

    #[test]
    fn zero_days_is_an_error() {
        assert!(TraceGenerator::new(Site::Hsu.config(), 5)
            .generate_days(0)
            .is_err());
    }

    #[test]
    fn transit_factor_is_bounded_and_local() {
        let t = Transit {
            centre_h: 12.0,
            half_width_h: 0.25,
            depth: 0.5,
        };
        assert_eq!(t.factor(11.0), 1.0);
        assert_eq!(t.factor(13.0), 1.0);
        let centre = t.factor(12.0);
        assert!((centre - 0.5).abs() < 1e-12);
        for i in 0..100 {
            let x = 11.5 + i as f64 * 0.01;
            let f = t.factor(x);
            assert!((0.5..=1.0).contains(&f));
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lambda = 4.0;
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 50_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| crate::lanes::scalar_normal(&mut rng))
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    fn v2_config(site: Site) -> SiteConfig {
        let mut config = site.config();
        config.weather.stream_version = StreamVersion::V2;
        config
    }

    #[test]
    fn v2_stream_is_deterministic_and_differs_from_v1() {
        let v1 = TraceGenerator::new(Site::Spmd.config(), 9)
            .generate_days(5)
            .unwrap();
        let a = TraceGenerator::new(v2_config(Site::Spmd), 9)
            .generate_days(5)
            .unwrap();
        let b = TraceGenerator::new(v2_config(Site::Spmd), 9)
            .generate_days(5)
            .unwrap();
        assert_eq!(a, b);
        // The lane order is a different stream by design.
        assert_ne!(a.samples(), v1.samples());
    }

    #[test]
    fn v2_stream_is_physical() {
        let trace = TraceGenerator::new(v2_config(Site::Pfci), 2)
            .generate_days(200)
            .unwrap();
        let spd = trace.samples_per_day();
        for day in 0..trace.days() {
            let d = trace.day(day).unwrap();
            assert_eq!(d[0], 0.0, "day {day}: midnight must be dark");
            assert!(d[spd / 2] > 50.0, "day {day}: noon {}", d[spd / 2]);
        }
        let peak = trace.peak_power();
        assert!(peak > 800.0 && peak < 1250.0, "peak {peak}");
    }

    #[test]
    fn v2_statistics_match_v1_closely() {
        // Same model, different draw order: summary statistics must
        // agree even though individual samples differ.
        for site in [Site::Pfci, Site::Spmd] {
            let v1 = TraceGenerator::new(site.config(), 11)
                .generate_days(120)
                .unwrap();
            let v2 = TraceGenerator::new(v2_config(site), 11)
                .generate_days(120)
                .unwrap();
            let s1 = TraceStats::of(&v1);
            let s2 = TraceStats::of(&v2);
            let rel = (s1.mean_power - s2.mean_power).abs() / s1.mean_power;
            assert!(rel < 0.1, "{site:?}: mean power diverged by {rel}");
            let cv_gap = (s1.daily_energy_cv - s2.daily_energy_cv).abs();
            assert!(cv_gap < 0.1, "{site:?}: energy CV gap {cv_gap}");
        }
    }

    #[test]
    fn checkpointed_generation_resumes_bit_identically() {
        for site_config in [Site::Hsu.config(), v2_config(Site::Hsu)] {
            let generator = TraceGenerator::new(site_config, 7);
            let cold = generator.generate_days(10).unwrap();
            let (prefix, prefix_counters, checkpoint) =
                generator.generate_days_checkpointed(6).unwrap();
            assert_eq!(checkpoint.next_day(), 6);
            assert_eq!(prefix.samples(), &cold.samples()[..prefix.samples().len()]);

            let (tail, tail_counters, advanced) = generator
                .resume_days_counted(checkpoint.clone(), 10)
                .unwrap();
            assert_eq!(advanced.next_day(), 10);
            let spd = prefix.samples_per_day();
            assert_eq!(tail.len(), 4 * spd);
            assert!(tail
                .iter()
                .zip(&cold.samples()[6 * spd..])
                .all(|(a, b)| a.to_bits() == b.to_bits()));

            // Segment counters sum to the cold accounting.
            let (_, cold_counters) = generator.generate_days_counted(10).unwrap();
            let mut sum = prefix_counters;
            sum.add(tail_counters);
            assert_eq!(sum, cold_counters);

            // A horizon at or before the checkpoint is rejected.
            assert!(generator.resume_days_counted(checkpoint, 6).is_err());
        }
    }

    #[test]
    fn counted_generation_reports_stream_costs() {
        for (version, site_config) in [
            (StreamVersion::V1, Site::Hsu.config()),
            (StreamVersion::V2, v2_config(Site::Hsu)),
        ] {
            let (trace, counters) = TraceGenerator::new(site_config, 7)
                .generate_days_counted(10)
                .unwrap();
            assert_eq!(trace.days(), 10);
            assert!(
                counters.keystream_blocks > 0,
                "{version:?}: no keystream accounted"
            );
            // At least one innovation + one noise normal per daylight
            // slot, plus the per-day header draws.
            assert!(
                counters.normal_draws > 2 * 10,
                "{version:?}: draws {}",
                counters.normal_draws
            );
        }
    }
}
