//! Site presets mirroring the paper's six NREL MIDC measurement sites.
//!
//! The paper's Table I lists the sites with their state, number of
//! observations, days and resolution. The presets below pair each site
//! with its real latitude and a climate model chosen so that the
//! *qualitative variability ordering* of the six sites matches what the
//! paper's per-site MAPE results imply: the desert sites (NPCS, PFCI)
//! predict easily, the humid/continental ones (SPMD, ECSU, ORNL, HSU) are
//! harder.

use crate::clearsky::ClearSkyModel;
use crate::weather::WeatherModel;
use solar_trace::Resolution;

/// One of the six paper data-set sites.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Site {
    /// NREL Solar Radiation Research Laboratory area, Golden, Colorado
    /// (paper code SPMD) — continental, 5-minute resolution.
    Spmd,
    /// Elizabeth City State University, North Carolina (ECSU) — humid
    /// subtropical, 5-minute resolution.
    Ecsu,
    /// Oak Ridge National Laboratory, Tennessee (ORNL) — humid, the
    /// paper's most variable site, 1-minute resolution.
    Ornl,
    /// Humboldt State University, Arcata, California (HSU) — marine/foggy
    /// coast, 1-minute resolution.
    Hsu,
    /// Nevada Power Clark Station, Las Vegas, Nevada (NPCS) — desert,
    /// 1-minute resolution.
    Npcs,
    /// Phoenix, Arizona (PFCI) — desert, the paper's least variable site,
    /// 1-minute resolution.
    Pfci,
}

impl Site {
    /// All six sites in the paper's Table I order.
    pub const ALL: [Site; 6] = [
        Site::Spmd,
        Site::Ecsu,
        Site::Ornl,
        Site::Hsu,
        Site::Npcs,
        Site::Pfci,
    ];

    /// The paper's data-set code for the site.
    pub fn code(self) -> &'static str {
        match self {
            Site::Spmd => "SPMD",
            Site::Ecsu => "ECSU",
            Site::Ornl => "ORNL",
            Site::Hsu => "HSU",
            Site::Npcs => "NPCS",
            Site::Pfci => "PFCI",
        }
    }

    /// US state abbreviation, as in Table I.
    pub fn state(self) -> &'static str {
        match self {
            Site::Spmd => "CO",
            Site::Ecsu => "NC",
            Site::Ornl => "TN",
            Site::Hsu => "CA",
            Site::Npcs => "NV",
            Site::Pfci => "AZ",
        }
    }

    /// The generator configuration for this site.
    pub fn config(self) -> SiteConfig {
        let (latitude_deg, resolution, weather, seed_stream) = match self {
            Site::Spmd => {
                let mut w = WeatherModel::temperate();
                // Front Range convection: fewer stable clear days than the
                // generic temperate preset (paper finds SPMD harder than
                // ECSU/HSU, just below ORNL).
                w.transition = [[0.46, 0.40, 0.14], [0.34, 0.45, 0.21], [0.26, 0.45, 0.29]];
                w.conditions[1].ar_sigma = 0.085;
                (39.74, Resolution::FIVE_MINUTES, w, 0x5350)
            }
            Site::Ecsu => {
                let mut w = WeatherModel::temperate();
                // Coastal NC: slightly steadier than the continental preset.
                w.transition = [[0.54, 0.35, 0.11], [0.38, 0.44, 0.18], [0.30, 0.44, 0.26]];
                w.conditions[1].transits_per_hour = 2.6;
                (36.29, Resolution::FIVE_MINUTES, w, 0x4543)
            }
            Site::Ornl => {
                let mut w = WeatherModel::temperate();
                // The paper's hardest site: even more broken-cloud churn.
                w.transition = [[0.50, 0.39, 0.11], [0.24, 0.52, 0.24], [0.12, 0.45, 0.43]];
                w.conditions[1].transits_per_hour = 4.2;
                w.conditions[1].ar_sigma = 0.095;
                (35.93, Resolution::ONE_MINUTE, w, 0x4F52)
            }
            Site::Hsu => (
                40.88,
                Resolution::ONE_MINUTE,
                WeatherModel::marine(),
                0x4853,
            ),
            Site::Npcs => {
                let mut w = WeatherModel::desert();
                // Slightly less stable than PFCI, matching the paper's
                // NPCS > PFCI error ordering.
                w.transition[0] = [0.77, 0.18, 0.05];
                w.conditions[0].ar_sigma = 0.028;
                w.conditions[1].transits_per_hour = 2.5;
                (36.10, Resolution::ONE_MINUTE, w, 0x4E50)
            }
            Site::Pfci => (
                33.45,
                Resolution::ONE_MINUTE,
                WeatherModel::desert(),
                0x5046,
            ),
        };
        SiteConfig {
            name: self.code().to_string(),
            latitude_deg,
            resolution,
            clear_sky: ClearSkyModel::Haurwitz,
            weather,
            seed_stream,
            turbidity: 0.0,
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Full configuration of a synthetic measurement site.
///
/// Construct via [`Site::config`] for paper presets, or build one directly
/// for custom experiments.
///
/// # Example
///
/// ```
/// use solar_synth::{Site, SiteConfig};
///
/// let config: SiteConfig = Site::Ornl.config();
/// assert_eq!(config.name, "ORNL");
/// assert_eq!(config.resolution.as_seconds(), 60);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SiteConfig {
    /// Site label used for generated traces.
    pub name: String,
    /// Geographic latitude in degrees (north positive).
    pub latitude_deg: f64,
    /// Sampling resolution of the generated trace.
    pub resolution: Resolution,
    /// Clear-sky model for the cloudless envelope.
    pub clear_sky: ClearSkyModel,
    /// Stochastic weather model.
    pub weather: WeatherModel,
    /// Per-site seed stream mixed into the generator seed so different
    /// sites never share random sequences even with equal user seeds.
    pub seed_stream: u64,
    /// Fraction of the clear-sky irradiance removed by stable
    /// atmospheric haze/aerosols, in `[0, 0.8]` (0 = the clean
    /// envelope). Unlike the stochastic weather attenuation this is
    /// deterministic: it scales the cloudless ceiling itself — the
    /// catalog generators' turbidity axis.
    pub turbidity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_have_valid_weather() {
        for site in Site::ALL {
            site.config().weather.validate().expect("valid preset");
        }
    }

    #[test]
    fn resolutions_match_table_one() {
        assert_eq!(Site::Spmd.config().resolution, Resolution::FIVE_MINUTES);
        assert_eq!(Site::Ecsu.config().resolution, Resolution::FIVE_MINUTES);
        for site in [Site::Ornl, Site::Hsu, Site::Npcs, Site::Pfci] {
            assert_eq!(site.config().resolution, Resolution::ONE_MINUTE);
        }
    }

    #[test]
    fn desert_sites_are_clearest() {
        let clear_frac = |s: Site| s.config().weather.stationary_distribution()[0];
        for desert in [Site::Npcs, Site::Pfci] {
            for humid in [Site::Spmd, Site::Ecsu, Site::Ornl, Site::Hsu] {
                assert!(
                    clear_frac(desert) > clear_frac(humid),
                    "{desert} should be clearer than {humid}"
                );
            }
        }
    }

    #[test]
    fn codes_and_states_match_paper() {
        assert_eq!(Site::Spmd.code(), "SPMD");
        assert_eq!(Site::Spmd.state(), "CO");
        assert_eq!(Site::Pfci.state(), "AZ");
        assert_eq!(Site::ALL.len(), 6);
    }

    #[test]
    fn seed_streams_are_distinct() {
        let mut streams: Vec<u64> = Site::ALL.iter().map(|s| s.config().seed_stream).collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 6);
    }

    #[test]
    fn latitudes_are_plausible_us() {
        for site in Site::ALL {
            let lat = site.config().latitude_deg;
            assert!((25.0..50.0).contains(&lat), "{site}: {lat}");
        }
    }
}
