//! Property tests for the synthetic-irradiance substrate.

use proptest::prelude::*;
use solar_synth::{geometry, ClearSkyModel, Site, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn traces_are_physical(site_idx in 0usize..6, seed in 0u64..1000, days in 1usize..10) {
        let site = Site::ALL[site_idx];
        let trace = TraceGenerator::new(site.config(), seed)
            .generate_days(days)
            .unwrap();
        prop_assert_eq!(trace.days(), days);
        // Non-negative and bounded by a generous clear-sky ceiling.
        for &v in trace.samples() {
            prop_assert!(v >= 0.0);
            prop_assert!(v < 1400.0, "sample {v} exceeds physical GHI");
        }
        // Midnight is dark on every day.
        for d in 0..days {
            prop_assert_eq!(trace.day(d).unwrap()[0], 0.0);
        }
    }

    #[test]
    fn determinism_holds_for_any_seed(site_idx in 0usize..6, seed in 0u64..1000) {
        let site = Site::ALL[site_idx];
        let a = TraceGenerator::new(site.config(), seed).generate_days(2).unwrap();
        let b = TraceGenerator::new(site.config(), seed).generate_days(2).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn longer_generation_extends_shorter(seed in 0u64..200) {
        // The first day of a 3-day trace equals the single-day trace:
        // generation is a prefix-stable stream per (site, seed)?  It is
        // not guaranteed by construction (per-day draws interleave with
        // per-sample draws), so assert the weaker but important property:
        // equal lengths of the common prefix structure — day count and
        // darkness pattern agree.
        let site = Site::Pfci;
        let short = TraceGenerator::new(site.config(), seed).generate_days(1).unwrap();
        let long = TraceGenerator::new(site.config(), seed).generate_days(3).unwrap();
        prop_assert_eq!(short.day(0).unwrap(), long.day(0).unwrap());
    }

    #[test]
    fn elevation_bounds(lat in -60.0f64..60.0, doy in 1u32..=365, hour in 0.0f64..24.0) {
        let s = geometry::sin_elevation_at(lat, doy, hour);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn clear_sky_bounded_by_extraterrestrial(doy in 1u32..=365, sin_h in 0.0f64..=1.0) {
        let g_on = geometry::extraterrestrial_normal(doy);
        for model in [ClearSkyModel::Haurwitz, ClearSkyModel::KastenCzeplak] {
            let ghi = model.ghi(sin_h);
            prop_assert!(ghi >= 0.0);
            prop_assert!(ghi <= g_on, "{model}: {ghi} vs extraterrestrial {g_on}");
        }
    }

    #[test]
    fn day_length_complements_across_equator(lat in 0.0f64..65.0, doy in 1u32..=365) {
        // Northern day + southern day at the same date ≈ 24 h (up to the
        // clamped polar cases).
        let north = geometry::day_length_hours(lat, doy);
        let south = geometry::day_length_hours(-lat, doy);
        prop_assert!((north + south - 24.0).abs() < 0.05, "{north} + {south}");
    }
}
