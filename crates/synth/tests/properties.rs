//! Property tests for the synthetic-irradiance substrate.

use proptest::prelude::*;
use solar_synth::{geometry, ClearSkyModel, Site, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hoisted day-constant geometry (`DayGeometry` + the hour-angle
    /// cosine grid) reproduces the composed per-sample
    /// `sin_elevation_at` **bit-for-bit** for any latitude, day of year
    /// and slot spacing — the contract that lets the generator compute
    /// four transcendentals per day instead of per sample without
    /// moving a single trace bit.
    #[test]
    fn day_constant_geometry_is_bit_identical_to_direct_elevation(
        latitude_deg in -90.0f64..90.0,
        day_of_year in 1u32..=366,
        spd_idx in 0usize..5,
    ) {
        let samples_per_day = [24usize, 48, 96, 288, 1440][spd_idx];
        let day = geometry::DayGeometry::new(latitude_deg, day_of_year);
        let step_hours = 24.0 / samples_per_day as f64;
        let grid = geometry::hour_cosine_grid(samples_per_day, step_hours);
        prop_assert_eq!(grid.len(), samples_per_day);
        for (idx, &cos_omega) in grid.iter().enumerate() {
            let t_h = idx as f64 * step_hours;
            let direct = geometry::sin_elevation_at(latitude_deg, day_of_year, t_h);
            let hoisted = day.sin_elevation(cos_omega);
            prop_assert_eq!(
                direct.to_bits(),
                hoisted.to_bits(),
                "lat {} doy {} sample {}: {} vs {}",
                latitude_deg, day_of_year, idx, direct, hoisted
            );
        }
        prop_assert_eq!(
            day.extraterrestrial_normal.to_bits(),
            geometry::extraterrestrial_normal(day_of_year).to_bits()
        );
        prop_assert_eq!(
            day.declination_rad.to_bits(),
            geometry::declination_rad(day_of_year).to_bits()
        );
    }

    #[test]
    fn traces_are_physical(site_idx in 0usize..6, seed in 0u64..1000, days in 1usize..10) {
        let site = Site::ALL[site_idx];
        let trace = TraceGenerator::new(site.config(), seed)
            .generate_days(days)
            .unwrap();
        prop_assert_eq!(trace.days(), days);
        // Non-negative and bounded by a generous clear-sky ceiling.
        for &v in trace.samples() {
            prop_assert!(v >= 0.0);
            prop_assert!(v < 1400.0, "sample {v} exceeds physical GHI");
        }
        // Midnight is dark on every day.
        for d in 0..days {
            prop_assert_eq!(trace.day(d).unwrap()[0], 0.0);
        }
    }

    #[test]
    fn determinism_holds_for_any_seed(site_idx in 0usize..6, seed in 0u64..1000) {
        let site = Site::ALL[site_idx];
        let a = TraceGenerator::new(site.config(), seed).generate_days(2).unwrap();
        let b = TraceGenerator::new(site.config(), seed).generate_days(2).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn longer_generation_extends_shorter(seed in 0u64..200) {
        // The first day of a 3-day trace equals the single-day trace:
        // generation is a prefix-stable stream per (site, seed)?  It is
        // not guaranteed by construction (per-day draws interleave with
        // per-sample draws), so assert the weaker but important property:
        // equal lengths of the common prefix structure — day count and
        // darkness pattern agree.
        let site = Site::Pfci;
        let short = TraceGenerator::new(site.config(), seed).generate_days(1).unwrap();
        let long = TraceGenerator::new(site.config(), seed).generate_days(3).unwrap();
        prop_assert_eq!(short.day(0).unwrap(), long.day(0).unwrap());
    }

    #[test]
    fn elevation_bounds(lat in -60.0f64..60.0, doy in 1u32..=365, hour in 0.0f64..24.0) {
        let s = geometry::sin_elevation_at(lat, doy, hour);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn clear_sky_bounded_by_extraterrestrial(doy in 1u32..=365, sin_h in 0.0f64..=1.0) {
        let g_on = geometry::extraterrestrial_normal(doy);
        for model in [ClearSkyModel::Haurwitz, ClearSkyModel::KastenCzeplak] {
            let ghi = model.ghi(sin_h);
            prop_assert!(ghi >= 0.0);
            prop_assert!(ghi <= g_on, "{model}: {ghi} vs extraterrestrial {g_on}");
        }
    }

    #[test]
    fn day_length_complements_across_equator(lat in 0.0f64..65.0, doy in 1u32..=365) {
        // Northern day + southern day at the same date ≈ 24 h (up to the
        // clamped polar cases).
        let north = geometry::day_length_hours(lat, doy);
        let south = geometry::day_length_hours(-lat, doy);
        prop_assert!((north + south - 24.0).abs() < 0.05, "{north} + {south}");
    }
}
