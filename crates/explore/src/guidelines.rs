//! Extraction of the paper's §IV-B parameter-tuning guidelines from sweep
//! results.
//!
//! The paper distils its grid results into three rules of thumb:
//! D can be fixed at 10–11, K = 2 is near-optimal everywhere, and α
//! should grow with N (0.5–0.6 at N = 24 up to ≈1 at N = 288). These
//! helpers measure how much a given data set deviates from those rules.

use crate::sweep::SweepResult;

/// The smallest D on the grid whose best achievable MAPE (over α and K)
/// is within `margin` (absolute fraction, e.g. `0.01` = one MAPE point)
/// of the global optimum — the paper's justification for D ≈ 10–11.
///
/// Returns `None` for an empty evaluation.
pub fn smallest_adequate_d(result: &SweepResult, margin: f64) -> Option<usize> {
    if result.eval_count() == 0 {
        return None;
    }
    let best = result.best_by_mape().mape;
    result
        .grid()
        .days()
        .iter()
        .copied()
        .filter(|&d| {
            result
                .best_at_days(d)
                .map(|c| c.mape <= best + margin)
                .unwrap_or(false)
        })
        .min()
}

/// The absolute MAPE penalty (fraction) of fixing K to `k` versus the
/// global optimum — the paper's "K = 2 is very close to minimum" check.
///
/// Returns `None` if `k` is not on the grid or nothing was evaluated.
pub fn k_penalty(result: &SweepResult, k: usize) -> Option<f64> {
    if result.eval_count() == 0 {
        return None;
    }
    let best = result.best_by_mape().mape;
    result.best_at_k(k).map(|c| c.mape - best)
}

/// The absolute MAPE penalty (fraction) of fixing α to the guideline
/// value versus the global optimum.
///
/// Returns `None` if `alpha` is not on the grid or nothing was evaluated.
pub fn alpha_penalty(result: &SweepResult, alpha: f64) -> Option<f64> {
    if result.eval_count() == 0 {
        return None;
    }
    let ai = result.grid().alpha_index(alpha)?;
    let best = result.best_by_mape().mape;
    let best_at_alpha = (0..result.grid().days().len())
        .flat_map(|di| (0..result.grid().ks().len()).map(move |ki| (di, ki)))
        .map(|(di, ki)| result.mape(ai, di, ki))
        .fold(f64::INFINITY, f64::min);
    Some(best_at_alpha - best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ParamGrid;
    use crate::sweep::sweep;
    use pred_metrics::EvalProtocol;
    use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

    fn noisy_view_trace() -> PowerTrace {
        let n = 24;
        let mut samples = Vec::new();
        let mut state = 0xACEDu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..35 {
            let scale = 1.0 + 0.4 * next();
            for s in 0..n {
                let x = (s as f64 / n as f64 - 0.5) * 6.0;
                let base = 900.0 * (-x * x).exp();
                samples.push(if base < 20.0 {
                    0.0
                } else {
                    (base * scale * (1.0 + 0.2 * next())).max(0.0)
                });
            }
        }
        PowerTrace::new("g", Resolution::from_minutes(60).unwrap(), samples).unwrap()
    }

    #[test]
    fn guideline_metrics_are_consistent() {
        let trace = noisy_view_trace();
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let result = sweep(&view, &ParamGrid::paper(), &EvalProtocol::paper());

        // Penalties are non-negative and zero at the optimum's own values.
        let best = result.best_by_mape();
        assert_eq!(k_penalty(&result, best.k).map(|p| p < 1e-15), Some(true));
        for k in 1..=6 {
            assert!(k_penalty(&result, k).unwrap() >= -1e-15);
        }
        assert!(alpha_penalty(&result, best.alpha).unwrap() < 1e-15);

        // A huge margin admits the smallest D; a zero margin admits at
        // least the optimum's D.
        assert_eq!(smallest_adequate_d(&result, 1.0), Some(2));
        let tight = smallest_adequate_d(&result, 0.0).unwrap();
        assert!(tight <= best.days);

        // Missing grid values yield None.
        assert!(k_penalty(&result, 9).is_none());
        assert!(alpha_penalty(&result, 0.33).is_none());
    }
}
