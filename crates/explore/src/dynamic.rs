//! Clairvoyant dynamic-parameter evaluation (the paper's Table V).
//!
//! For every prediction instant the clairvoyant selector picks, from the
//! candidate grid, the (α, K) — or only K at fixed α, or only α at fixed
//! K — that minimizes *that instant's* error. The resulting MAPE is the
//! floor any causal dynamic-selection algorithm could reach, which is how
//! the paper motivates dynamic algorithms.

use pred_metrics::EvalProtocol;
use solar_predict::dynamic::{ensemble_steps, predict_from_step, EnsembleStep};
use solar_trace::SlotView;

/// Results of the clairvoyant dynamic study at one (trace, N, D), in the
/// layout of the paper's Table V.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DynamicOutcome {
    /// History depth used.
    pub days: usize,
    /// MAPE (fraction) with both α and K chosen per prediction.
    pub both_mape: f64,
    /// Best fixed α when only K adapts, and the achieved MAPE.
    pub k_only: (f64, f64),
    /// Best fixed K when only α adapts, and the achieved MAPE.
    pub alpha_only: (usize, f64),
    /// Number of evaluation points.
    pub count: usize,
}

/// Evaluates the clairvoyant dynamic selectors over a slotted trace.
///
/// * `d` — history depth (the paper fixes D for the dynamic study; pass
///   the static optimum).
/// * `alphas` — candidate α grid (the paper's `0 ≤ α ≤ 1`, step 0.1).
/// * `k_max` — candidate `K ∈ [1, k_max]` (the paper's 6).
///
/// The same inclusion rules as the static protocol apply, so the numbers
/// are directly comparable to a sweep's static MAPE.
///
/// # Panics
///
/// Panics if `alphas` is empty, `d == 0`, or `k_max` is not in
/// `[1, N)`.
pub fn clairvoyant_eval(
    view: &SlotView<'_>,
    d: usize,
    alphas: &[f64],
    k_max: usize,
    protocol: &EvalProtocol,
) -> DynamicOutcome {
    assert!(!alphas.is_empty(), "alpha grid must be non-empty");
    let steps = ensemble_steps(view, d, k_max);
    let peak = steps.iter().map(|s| s.actual_mean).fold(0.0, f64::max);
    let threshold = protocol.roi().threshold(peak);
    let first_day = protocol.first_eval_day();

    let mut count = 0usize;
    let mut sum_both = 0.0;
    // Per fixed α: sum of min-over-K errors.
    let mut sum_k_only = vec![0.0_f64; alphas.len()];
    // Per fixed K: sum of min-over-α errors.
    let mut sum_alpha_only = vec![0.0_f64; k_max];

    let included =
        |s: &EnsembleStep| s.day >= first_day && s.actual_mean >= threshold && s.actual_mean > 0.0;

    for step in steps.iter().filter(|s| included(s)) {
        count += 1;
        let inv = 1.0 / step.actual_mean;
        let mut best_overall = f64::INFINITY;
        let mut best_per_k = vec![f64::INFINITY; k_max];
        for (ai, &alpha) in alphas.iter().enumerate() {
            let mut best_for_alpha = f64::INFINITY;
            for k in 1..=k_max {
                let pred = predict_from_step(step, alpha, k);
                let err = ((step.actual_mean - pred) * inv).abs();
                best_for_alpha = best_for_alpha.min(err);
                best_per_k[k - 1] = best_per_k[k - 1].min(err);
                best_overall = best_overall.min(err);
            }
            sum_k_only[ai] += best_for_alpha;
        }
        for (ki, &e) in best_per_k.iter().enumerate() {
            sum_alpha_only[ki] += e;
        }
        sum_both += best_overall;
    }

    let denom = count.max(1) as f64;
    let (best_alpha_idx, best_alpha_sum) = sum_k_only
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty alpha grid");
    let (best_k_idx, best_k_sum) = sum_alpha_only
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("k_max >= 1");

    DynamicOutcome {
        days: d,
        both_mape: sum_both / denom,
        k_only: (alphas[best_alpha_idx], best_alpha_sum / denom),
        alpha_only: (best_k_idx + 1, best_k_sum / denom),
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ParamGrid;
    use crate::sweep::sweep;
    use solar_trace::{PowerTrace, Resolution, SlotsPerDay};

    /// Noisy trace with 4 samples per slot, so the slot mean differs from
    /// the boundary sample and pure persistence is not trivially exact.
    fn bumpy_trace(days: usize, n: usize) -> PowerTrace {
        let m = 4;
        let mut samples = Vec::with_capacity(days * n * m);
        let mut state = 0xBEEFu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..days {
            let day_scale = 1.0 + 0.5 * next();
            for s in 0..n * m {
                let x = (s as f64 / (n * m) as f64 - 0.5) * 6.0;
                let base = 900.0 * (-x * x).exp();
                let v = base * day_scale * (1.0 + 0.3 * next());
                samples.push(if base < 20.0 { 0.0 } else { v.max(0.0) });
            }
        }
        PowerTrace::new(
            "bumpy",
            Resolution::from_seconds(86_400 / (n * m) as u32).unwrap(),
            samples,
        )
        .unwrap()
    }

    #[test]
    fn clairvoyant_orderings_hold() {
        // The paper's Table V structure: both <= k_only, both <= alpha_only,
        // and every dynamic mode <= the static optimum at the same D.
        let n = 24;
        let trace = bumpy_trace(40, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let protocol = EvalProtocol::paper();
        let alphas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let d = 10;
        let outcome = clairvoyant_eval(&view, d, &alphas, 6, &protocol);

        assert!(outcome.count > 100);
        assert!(outcome.both_mape <= outcome.k_only.1 + 1e-12);
        assert!(outcome.both_mape <= outcome.alpha_only.1 + 1e-12);

        // Static optimum at the same D over the same grid.
        let grid = ParamGrid::builder().days(vec![d]).build().unwrap();
        let static_best = sweep(&view, &grid, &protocol).best_by_mape();
        assert!(outcome.k_only.1 <= static_best.mape + 1e-12);
        assert!(outcome.alpha_only.1 <= static_best.mape + 1e-12);
        assert!(
            outcome.both_mape < static_best.mape,
            "dynamic must strictly win on noisy data"
        );
    }

    #[test]
    fn perfect_periodic_data_gives_zero_everywhere() {
        let n = 24;
        let day: Vec<f64> = (0..n)
            .map(|s| {
                let x = (s as f64 / n as f64 - 0.5) * 6.0;
                let v = 900.0 * (-x * x).exp();
                if v < 20.0 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        let samples: Vec<f64> = (0..30).flat_map(|_| day.clone()).collect();
        let trace = PowerTrace::new(
            "periodic",
            Resolution::from_seconds(86_400 / n as u32).unwrap(),
            samples,
        )
        .unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let outcome = clairvoyant_eval(&view, 5, &[0.0, 0.5, 1.0], 3, &EvalProtocol::paper());
        assert!(outcome.both_mape < 1e-12);
        assert!(outcome.k_only.1 < 1e-12);
        assert!(outcome.alpha_only.1 < 1e-12);
    }

    #[test]
    fn count_matches_static_sweep() {
        let n = 24;
        let trace = bumpy_trace(30, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let protocol = EvalProtocol::paper();
        let outcome = clairvoyant_eval(&view, 5, &[0.5], 2, &protocol);
        let grid = ParamGrid::builder()
            .alphas(vec![0.5])
            .days(vec![5])
            .ks(vec![1, 2])
            .build()
            .unwrap();
        let result = sweep(&view, &grid, &protocol);
        assert_eq!(outcome.count, result.eval_count());
    }
}
