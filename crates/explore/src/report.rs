//! Paper-style text tables and CSV export.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A simple aligned text table, used by the experiment binaries to print
/// rows in the shape of the paper's tables.
///
/// # Example
///
/// ```
/// use param_explore::report::TextTable;
///
/// let mut table = TextTable::new(vec!["Data set", "MAPE"]);
/// table.push_row(vec!["SPMD".into(), "15.80%".into()]);
/// let text = table.to_string();
/// assert!(text.contains("SPMD"));
/// assert!(text.contains("MAPE"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TextTable {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header row.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Writes the table as CSV to `writer` (header first). Cells
    /// containing commas or quotes are quoted.
    ///
    /// The `writer` is taken by value; pass `&mut writer` to keep
    /// ownership.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        writeln!(
            writer,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                writer,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }

    /// Saves the table as CSV at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        self.write_csv(std::io::BufWriter::new(file))
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            #[allow(clippy::needless_range_loop)]
            for i in 0..columns {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as the paper prints percentages ("15.80%").
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["Site", "alpha", "MAPE"]);
        t.push_row(vec!["SPMD".into(), "0.7".into(), "15.80%".into()]);
        t.push_row(vec!["PFCI".into(), "0.6".into(), "6.59%".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("Site"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("SPMD"));
        // Columns align: 'alpha' column starts at the same offset.
        let off_header = lines[0].find("alpha").unwrap();
        let off_row = lines[2].find("0.7").unwrap();
        assert_eq!(off_header, off_row);
    }

    #[test]
    fn csv_output_quotes_when_needed() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "x".into()]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"with,comma\""));
        assert!(text.contains("\"with\"\"quote\""));
    }

    #[test]
    fn save_csv_creates_directories() {
        let dir = std::env::temp_dir().join("param_explore_report_test/nested");
        let path = dir.join("t.csv");
        sample().save_csv(&path).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn pct_formats_like_paper() {
        assert_eq!(pct(0.158), "15.80%");
        assert_eq!(pct(0.0659), "6.59%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.headers().len(), 3);
        assert_eq!(t.rows()[1][0], "PFCI");
    }
}
