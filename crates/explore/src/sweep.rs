//! The one-pass grid sweep engine.

use crate::grid::ParamGrid;
use pred_metrics::EvalProtocol;
use solar_predict::DayHistory;
use solar_trace::SlotView;
use std::collections::VecDeque;

/// One optimized configuration with its achieved errors, as reported in
/// the paper's Tables II and III.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OptimalConfig {
    /// The weighting parameter α.
    pub alpha: f64,
    /// The history depth D.
    pub days: usize,
    /// The conditioning window K.
    pub k: usize,
    /// Achieved MAPE (fraction) against mean slot power.
    pub mape: f64,
    /// Achieved MAPE′ (fraction) against slot-start samples.
    pub mape_prime: f64,
}

impl std::fmt::Display for OptimalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "alpha={} D={} K={} MAPE={:.2}%",
            self.alpha,
            self.days,
            self.k,
            self.mape * 100.0
        )
    }
}

/// The dense result of a sweep: per-configuration error sums.
#[derive(Clone, Debug)]
pub struct SweepResult {
    grid: ParamGrid,
    slots_per_day: usize,
    count: usize,
    sum_mape: Vec<f64>,
    sum_prime: Vec<f64>,
}

impl SweepResult {
    /// The grid this result covers.
    pub fn grid(&self) -> &ParamGrid {
        &self.grid
    }

    /// The slot count per day the sweep ran at.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// Number of evaluation points that passed the protocol filters
    /// (identical for every configuration, as §IV-A requires).
    pub fn eval_count(&self) -> usize {
        self.count
    }

    #[inline]
    fn idx(&self, ai: usize, di: usize, ki: usize) -> usize {
        (ai * self.grid.days().len() + di) * self.grid.ks().len() + ki
    }

    /// MAPE (fraction) of the configuration at grid indices
    /// `(alpha_idx, days_idx, k_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for the grid.
    pub fn mape(&self, alpha_idx: usize, days_idx: usize, k_idx: usize) -> f64 {
        let v = self.sum_mape[self.idx(alpha_idx, days_idx, k_idx)];
        if self.count == 0 {
            0.0
        } else {
            v / self.count as f64
        }
    }

    /// MAPE′ (fraction) of the configuration at grid indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for the grid.
    pub fn mape_prime(&self, alpha_idx: usize, days_idx: usize, k_idx: usize) -> f64 {
        let v = self.sum_prime[self.idx(alpha_idx, days_idx, k_idx)];
        if self.count == 0 {
            0.0
        } else {
            v / self.count as f64
        }
    }

    fn config_indices(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let na = self.grid.alphas().len();
        let nd = self.grid.days().len();
        let nk = self.grid.ks().len();
        (0..na).flat_map(move |ai| (0..nd).flat_map(move |di| (0..nk).map(move |ki| (ai, di, ki))))
    }

    fn config_at(&self, ai: usize, di: usize, ki: usize) -> OptimalConfig {
        OptimalConfig {
            alpha: self.grid.alphas()[ai],
            days: self.grid.days()[di],
            k: self.grid.ks()[ki],
            mape: self.mape(ai, di, ki),
            mape_prime: self.mape_prime(ai, di, ki),
        }
    }

    /// The configuration minimizing MAPE (the paper's optimization
    /// objective; first-found wins ties).
    pub fn best_by_mape(&self) -> OptimalConfig {
        let (ai, di, ki) = self
            .config_indices()
            .min_by(|&(a1, d1, k1), &(a2, d2, k2)| {
                self.mape(a1, d1, k1)
                    .partial_cmp(&self.mape(a2, d2, k2))
                    .expect("mape sums are finite")
            })
            .expect("grid is non-empty");
        self.config_at(ai, di, ki)
    }

    /// The configuration minimizing MAPE′ (the comparison objective of
    /// Table II's left half).
    pub fn best_by_mape_prime(&self) -> OptimalConfig {
        let (ai, di, ki) = self
            .config_indices()
            .min_by(|&(a1, d1, k1), &(a2, d2, k2)| {
                self.mape_prime(a1, d1, k1)
                    .partial_cmp(&self.mape_prime(a2, d2, k2))
                    .expect("mape sums are finite")
            })
            .expect("grid is non-empty");
        self.config_at(ai, di, ki)
    }

    /// The best configuration with K fixed to `k` (the paper's
    /// `MAPE@K=2` column). Returns `None` if `k` is not on the grid.
    pub fn best_at_k(&self, k: usize) -> Option<OptimalConfig> {
        let ki = self.grid.k_index(k)?;
        let (ai, di) = (0..self.grid.alphas().len())
            .flat_map(|ai| (0..self.grid.days().len()).map(move |di| (ai, di)))
            .min_by(|&(a1, d1), &(a2, d2)| {
                self.mape(a1, d1, ki)
                    .partial_cmp(&self.mape(a2, d2, ki))
                    .expect("mape sums are finite")
            })?;
        Some(self.config_at(ai, di, ki))
    }

    /// MAPE as a function of D at fixed α and K (the paper's Fig. 7
    /// curves). Returns `None` if α or K is not on the grid.
    pub fn mape_vs_days(&self, alpha: f64, k: usize) -> Option<Vec<(usize, f64)>> {
        let ai = self.grid.alpha_index(alpha)?;
        let ki = self.grid.k_index(k)?;
        Some(
            self.grid
                .days()
                .iter()
                .enumerate()
                .map(|(di, &d)| (d, self.mape(ai, di, ki)))
                .collect(),
        )
    }

    /// The best configuration with D fixed (used by the D-guideline
    /// analysis). Returns `None` if `days` is not on the grid.
    pub fn best_at_days(&self, days: usize) -> Option<OptimalConfig> {
        let di = self.grid.days_index(days)?;
        let (ai, ki) = (0..self.grid.alphas().len())
            .flat_map(|ai| (0..self.grid.ks().len()).map(move |ki| (ai, ki)))
            .min_by(|&(a1, k1), &(a2, k2)| {
                self.mape(a1, di, k1)
                    .partial_cmp(&self.mape(a2, di, k2))
                    .expect("mape sums are finite")
            })?;
        Some(self.config_at(ai, di, ki))
    }
}

/// Sweeps the full (α, D, K) grid over one slotted trace in a single
/// pass, under the paper's evaluation protocol.
///
/// The engine reproduces the streaming [`solar_predict::WcmaPredictor`]
/// exactly (wrap-previous-day policy): η ratios are frozen at observation
/// time, day rollover pushes the finished day before the next-slot mean
/// is read, and warm-up predictions degenerate to persistence.
///
/// # Panics
///
/// Panics if the grid's `k_max` is not below the view's slots per day.
pub fn sweep(view: &SlotView<'_>, grid: &ParamGrid, protocol: &EvalProtocol) -> SweepResult {
    let n = view.slots_per_day();
    let days_total = view.days();
    let d_max = grid.d_max();
    let k_max = grid.k_max();
    assert!(k_max < n, "grid k_max {k_max} must be below N={n}");

    let n_alpha = grid.alphas().len();
    let n_days = grid.days().len();
    let n_k = grid.ks().len();
    let mut sum_mape = vec![0.0_f64; n_alpha * n_days * n_k];
    let mut sum_prime = vec![0.0_f64; n_alpha * n_days * n_k];
    let mut count = 0usize;

    // ROI peak over evaluable slots (every slot with a closing boundary,
    // i.e. all but the very last), matching
    // `PredictionLog::peak_actual_mean` of a runner log.
    let total = view.total_slots();
    let peak = view.mean_series()[..total.saturating_sub(1)]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let threshold = protocol.roi().threshold(peak);
    let first_eval_day = protocol.first_eval_day() as usize;

    let mut history = DayHistory::new(n, d_max);
    let mut current = vec![0.0_f64; n];
    // Per-D ring of the last k_max η ratios, most recent first.
    let mut rings: Vec<VecDeque<f64>> = vec![VecDeque::with_capacity(k_max); n_days];
    let mut prefix = Vec::with_capacity(d_max);
    // Scratch: conditioned term per (D, K).
    let mut cond = vec![0.0_f64; n_days * n_k];

    for day in 0..days_total {
        for slot in 0..n {
            let measured = view.start_sample(day, slot);
            current[slot] = measured;

            // Freeze this slot's η per D (history excludes today).
            let filled = history.prefix_sums(slot, d_max, &mut prefix);
            for (di, &d) in grid.days().iter().enumerate() {
                let eta = if filled == 0 {
                    1.0
                } else {
                    let take = d.min(filled);
                    let mu = prefix[take - 1] / take as f64;
                    solar_predict::conditioning_ratio(measured, Some(mu))
                };
                let ring = &mut rings[di];
                if ring.len() == k_max {
                    ring.pop_back();
                }
                ring.push_front(eta);
            }

            // Day rollover before the boundary-slot mean is read.
            let (b_day, b_slot) = if slot + 1 == n {
                (day + 1, 0)
            } else {
                (day, slot + 1)
            };
            if slot + 1 == n {
                history.push_day(&current);
            }
            if b_day >= days_total {
                continue; // final slot: no closing boundary
            }

            // The prediction estimates the just-entered slot (day, slot);
            // protocol filters decide whether it counts, and the expensive
            // per-config math is skipped otherwise.
            let mean_t = view.mean_power(day, slot);
            if day < first_eval_day || mean_t < threshold || mean_t == 0.0 {
                continue;
            }
            let start_t = view.start_sample(b_day, b_slot);
            count += 1;

            let warm = history.is_empty();
            debug_assert!(!warm, "eval days start after warm-up");

            let filled_t = history.prefix_sums(b_slot, d_max, &mut prefix);
            for (di, &d) in grid.days().iter().enumerate() {
                let take = d.min(filled_t);
                let mu_next = prefix[take - 1] / take as f64;
                // Φ for every K of the grid via the S1/Sw recurrence.
                let ring = &rings[di];
                let mut s1 = 0.0;
                let mut sw = 0.0;
                let mut next_k = 0usize; // index into grid.ks()
                for k in 1..=k_max {
                    let r = ring.get(k - 1).copied().unwrap_or(1.0);
                    s1 += r;
                    sw += s1;
                    if next_k < n_k && grid.ks()[next_k] == k {
                        let phi = sw / (k * (k + 1) / 2) as f64;
                        cond[di * n_k + next_k] = mu_next * phi;
                        next_k += 1;
                    }
                }
            }

            let inv_mean = 1.0 / mean_t;
            for (ai, &alpha) in grid.alphas().iter().enumerate() {
                let pers = alpha * measured;
                let beta = 1.0 - alpha;
                let base = ai * n_days * n_k;
                for (ci, &c) in cond.iter().enumerate() {
                    let pred = pers + beta * c;
                    sum_mape[base + ci] += ((mean_t - pred) * inv_mean).abs();
                    sum_prime[base + ci] += ((start_t - pred) * inv_mean).abs();
                }
            }
        }
    }

    SweepResult {
        grid: grid.clone(),
        slots_per_day: n,
        count,
        sum_mape,
        sum_prime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pred_metrics::EvalProtocol;
    use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
    use solar_trace::{PowerTrace, Resolution, SlotsPerDay};

    /// Deterministic bumpy trace: solar envelope with pseudo-random
    /// day-to-day and slot-to-slot modulation.
    fn bumpy_trace(days: usize, n: usize) -> PowerTrace {
        let mut samples = Vec::with_capacity(days * n);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..days {
            let day_scale = 1.0 + 0.5 * next();
            for s in 0..n {
                let x = (s as f64 / n as f64 - 0.5) * 6.0;
                let base = 900.0 * (-x * x).exp();
                let v = base * day_scale * (1.0 + 0.3 * next());
                samples.push(if base < 20.0 { 0.0 } else { v.max(0.0) });
            }
        }
        PowerTrace::new(
            "bumpy",
            Resolution::from_seconds(86_400 / n as u32).unwrap(),
            samples,
        )
        .unwrap()
    }

    #[test]
    fn sweep_matches_streaming_predictor_exactly() {
        let n = 24usize;
        let trace = bumpy_trace(40, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 0.3, 0.7, 1.0])
            .days(vec![2, 5, 11])
            .ks(vec![1, 3, 6])
            .build()
            .unwrap();
        let protocol = EvalProtocol::paper();
        let result = sweep(&view, &grid, &protocol);
        assert!(result.eval_count() > 100);

        for (ai, &alpha) in grid.alphas().iter().enumerate() {
            for (di, &d) in grid.days().iter().enumerate() {
                for (ki, &k) in grid.ks().iter().enumerate() {
                    let params = WcmaParams::new(alpha, d, k, n).unwrap();
                    let log = run_predictor(&view, &mut WcmaPredictor::new(params));
                    let summary = protocol.evaluate(&log);
                    assert_eq!(summary.count, result.eval_count());
                    let sweep_mape = result.mape(ai, di, ki);
                    assert!(
                        (summary.mape - sweep_mape).abs() < 1e-12,
                        "alpha {alpha} D {d} K {k}: streaming {} vs sweep {}",
                        summary.mape,
                        sweep_mape
                    );
                    let sweep_prime = result.mape_prime(ai, di, ki);
                    assert!(
                        (summary.mape_prime - sweep_prime).abs() < 1e-12,
                        "alpha {alpha} D {d} K {k} (prime)"
                    );
                }
            }
        }
    }

    #[test]
    fn best_by_mape_is_global_minimum() {
        let n = 24;
        let trace = bumpy_trace(30, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 0.5, 1.0])
            .days(vec![2, 8])
            .ks(vec![1, 2])
            .build()
            .unwrap();
        let result = sweep(&view, &grid, &EvalProtocol::paper());
        let best = result.best_by_mape();
        for ai in 0..3 {
            for di in 0..2 {
                for ki in 0..2 {
                    assert!(best.mape <= result.mape(ai, di, ki) + 1e-15);
                }
            }
        }
    }

    #[test]
    fn best_at_k_fixes_k() {
        let n = 24;
        let trace = bumpy_trace(30, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let result = sweep(
            &view,
            &ParamGrid::builder()
                .alphas(vec![0.0, 0.5, 1.0])
                .days(vec![3, 6])
                .ks(vec![1, 2, 4])
                .build()
                .unwrap(),
            &EvalProtocol::paper(),
        );
        let at2 = result.best_at_k(2).unwrap();
        assert_eq!(at2.k, 2);
        assert!(at2.mape >= result.best_by_mape().mape - 1e-15);
        assert!(result.best_at_k(5).is_none());
    }

    #[test]
    fn mape_vs_days_has_one_point_per_d() {
        let n = 24;
        let trace = bumpy_trace(30, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 0.5])
            .days(vec![2, 4, 8])
            .ks(vec![1, 2])
            .build()
            .unwrap();
        let result = sweep(&view, &grid, &EvalProtocol::paper());
        let curve = result.mape_vs_days(0.5, 2).unwrap();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].0, 2);
        assert_eq!(curve[2].0, 8);
        assert!(result.mape_vs_days(0.25, 2).is_none());
    }

    #[test]
    fn single_sample_slots_make_alpha_one_exact() {
        // One sample per slot: ē_n equals the boundary sample, so α = 1
        // gives MAPE = 0 for *any* data — the mechanism behind the
        // paper's Table III 0† rows at N = 288 on 5-minute traces.
        let n = 24;
        let trace = bumpy_trace(40, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let result = sweep(&view, &ParamGrid::paper(), &EvalProtocol::paper());
        let best = result.best_by_mape();
        assert_eq!(best.alpha, 1.0);
        assert!(best.mape < 1e-12, "mape {}", best.mape);
    }

    #[test]
    fn multi_sample_slots_favor_blended_alpha() {
        // With several samples per slot the boundary sample no longer
        // equals the slot mean, so the optimum moves off α = 1 and the
        // error is non-zero — the regime of the paper's N ≤ 96 results.
        let n = 24usize;
        let m = 4; // samples per slot
        let mut samples = Vec::new();
        let mut state = 0x5EEDu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..40 {
            let scale = 1.0 + 0.5 * next();
            for s in 0..n * m {
                let x = (s as f64 / (n * m) as f64 - 0.5) * 6.0;
                let base = 900.0 * (-x * x).exp();
                let v = base * scale * (1.0 + 0.4 * next());
                samples.push(if base < 20.0 { 0.0 } else { v.max(0.0) });
            }
        }
        let trace = PowerTrace::new(
            "multi",
            Resolution::from_seconds(86_400 / (n * m) as u32).unwrap(),
            samples,
        )
        .unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let result = sweep(&view, &ParamGrid::paper(), &EvalProtocol::paper());
        let best = result.best_by_mape();
        assert!(best.mape > 0.01, "noisy data cannot be predicted exactly");
        assert!(
            best.alpha < 1.0,
            "slot-mean reference penalizes pure persistence"
        );
    }

    #[test]
    fn empty_eval_window_gives_zero_errors() {
        let n = 24;
        let trace = bumpy_trace(5, n); // fewer days than the 20-day warm-up
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let result = sweep(
            &view,
            &ParamGrid::builder()
                .alphas(vec![0.5])
                .days(vec![2])
                .ks(vec![1])
                .build()
                .unwrap(),
            &EvalProtocol::paper(),
        );
        assert_eq!(result.eval_count(), 0);
        assert_eq!(result.mape(0, 0, 0), 0.0);
    }
}
