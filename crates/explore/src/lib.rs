//! Design-space exploration for the WCMA prediction parameters.
//!
//! The paper's evaluation (§IV) is a grid optimization: for each data set
//! and each sampling rate `N`, find the (α, D, K) minimizing the average
//! prediction error, then study the trends. Done naively this costs one
//! full predictor run per grid point (11 × 19 × 6 = 1254 runs per
//! data set per `N`). The [`sweep`] engine here does it in **one pass**:
//!
//! * `μ_D` for every `D ∈ [2, 20]` comes from per-slot prefix sums
//!   (`O(D_max)` per slot, `O(1)` per `D`),
//! * `Φ_K` for every `K ∈ [1, 6]` comes from the `S1/Sw` recurrence
//!   (`O(K_max)` per (slot, D)),
//! * every α is then a single multiply-add per configuration.
//!
//! A test asserts the sweep is *numerically identical* to running the
//! streaming predictor per configuration under the paper's protocol.
//!
//! The [`dynamic`] module evaluates the paper's §IV-C clairvoyant
//! dynamic-parameter selection, and [`report`] renders paper-style tables
//! and CSV files.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use param_explore::{sweep, ParamGrid};
//! use pred_metrics::EvalProtocol;
//! use solar_trace::{PowerTrace, Resolution, SlotsPerDay, SlotView};
//!
//! // One sample per slot: the slot mean equals the boundary sample, so
//! // the optimizer finds the paper's degenerate α = 1 optimum (Table
//! // III's N = 288 rows on 5-minute data).
//! let day: Vec<f64> = (0..24).map(|h| if (6..18).contains(&h) { 700.0 } else { 0.0 }).collect();
//! let samples: Vec<f64> = (0..40).flat_map(|_| day.clone()).collect();
//! let trace = PowerTrace::new("p", Resolution::from_minutes(60)?, samples)?;
//! let view = SlotView::new(&trace, SlotsPerDay::new(24)?)?;
//!
//! let grid = ParamGrid::builder().alphas(vec![0.0, 0.5, 1.0]).days(vec![2, 5]).ks(vec![1, 2]).build()?;
//! let result = sweep(&view, &grid, &EvalProtocol::paper());
//! let best = result.best_by_mape();
//! assert_eq!(best.alpha, 1.0);
//! assert!(best.mape < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod dynamic;
mod grid;
pub mod guidelines;
pub mod report;
mod sweep;

pub use grid::{GridError, ParamGrid, ParamGridBuilder};
pub use sweep::{sweep, OptimalConfig, SweepResult};
