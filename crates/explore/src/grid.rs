//! Parameter grids for exploration.

use std::fmt;

/// Error from building an invalid parameter grid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// A grid axis is empty.
    EmptyAxis {
        /// Which axis ("alphas", "days", "ks").
        axis: &'static str,
    },
    /// An α value is outside `[0, 1]` or not finite.
    InvalidAlpha {
        /// The offending value.
        alpha: f64,
    },
    /// A D value is zero.
    InvalidDays,
    /// A K value is zero.
    InvalidK,
    /// The K axis is not strictly ascending (required by the incremental
    /// Φ recurrence).
    UnsortedKs,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyAxis { axis } => write!(f, "grid axis {axis} is empty"),
            GridError::InvalidAlpha { alpha } => {
                write!(f, "grid alpha {alpha} must be a finite value in [0, 1]")
            }
            GridError::InvalidDays => write!(f, "grid days values must be at least 1"),
            GridError::InvalidK => write!(f, "grid k values must be at least 1"),
            GridError::UnsortedKs => write!(f, "grid k axis must be strictly ascending"),
        }
    }
}

impl std::error::Error for GridError {}

/// The (α, D, K) exploration grid.
///
/// # Example
///
/// ```
/// use param_explore::ParamGrid;
///
/// let grid = ParamGrid::paper();
/// assert_eq!(grid.alphas().len(), 11);
/// assert_eq!(grid.days().len(), 19); // 2 ..= 20
/// assert_eq!(grid.ks().len(), 6);    // 1 ..= 6
/// assert_eq!(grid.configs(), 11 * 19 * 6);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParamGrid {
    alphas: Vec<f64>,
    days: Vec<usize>,
    ks: Vec<usize>,
}

impl ParamGrid {
    /// The paper's §IV-A exploration ranges: α ∈ {0.0, 0.1, …, 1.0},
    /// D ∈ [2, 20], K ∈ [1, 6].
    pub fn paper() -> Self {
        ParamGrid {
            alphas: (0..=10).map(|i| i as f64 / 10.0).collect(),
            days: (2..=20).collect(),
            ks: (1..=6).collect(),
        }
    }

    /// Starts a builder.
    pub fn builder() -> ParamGridBuilder {
        ParamGridBuilder::default()
    }

    /// The α axis.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// The D axis.
    pub fn days(&self) -> &[usize] {
        &self.days
    }

    /// The K axis (strictly ascending).
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// Total number of configurations.
    pub fn configs(&self) -> usize {
        self.alphas.len() * self.days.len() * self.ks.len()
    }

    /// Largest D in the grid.
    pub fn d_max(&self) -> usize {
        self.days
            .iter()
            .copied()
            .max()
            .expect("non-empty by construction")
    }

    /// Largest K in the grid.
    pub fn k_max(&self) -> usize {
        *self.ks.last().expect("non-empty by construction")
    }

    /// A refinement grid centred on one configuration: for each axis,
    /// the centre value plus its midpoints toward the nearest grid
    /// neighbours (α), and the integer midpoints toward the nearest
    /// neighbours (D, K). This is the coarse-to-fine step a tuning loop
    /// iterates: evaluate a coarse grid, pick the best cell, refine
    /// around it, re-score, repeat until the budget runs out.
    ///
    /// The centre itself is always in the refined grid, so a refinement
    /// round can never lose the incumbent. Values are deduplicated and
    /// sorted, keeping the K-axis contract (strictly ascending).
    ///
    /// Returns `None` if any centre coordinate is not on this grid.
    pub fn refined_around(&self, alpha: f64, days: usize, k: usize) -> Option<ParamGrid> {
        let ai = self.alpha_index(alpha)?;
        let di = self.days_index(days)?;
        let ki = self.k_index(k)?;

        let mut alphas = vec![alpha];
        if ai > 0 {
            alphas.push((self.alphas[ai - 1] + alpha) / 2.0);
        }
        if ai + 1 < self.alphas.len() {
            alphas.push((alpha + self.alphas[ai + 1]) / 2.0);
        }
        alphas.sort_by(f64::total_cmp);
        alphas.dedup();

        // Integer midpoints round *away* from the centre, so adjacent
        // values stay reachable (midpoint of 1 and 2 is 1 again under
        // flooring both ways — the search would never try K = 2).
        let mut day_values = vec![days];
        if di > 0 {
            day_values.push((self.days[di - 1] + days) / 2);
        }
        if di + 1 < self.days.len() {
            day_values.push((days + self.days[di + 1]).div_ceil(2));
        }
        day_values.sort_unstable();
        day_values.dedup();

        let mut ks = vec![k];
        if ki > 0 {
            ks.push((self.ks[ki - 1] + k) / 2);
        }
        if ki + 1 < self.ks.len() {
            ks.push((k + self.ks[ki + 1]).div_ceil(2));
        }
        ks.sort_unstable();
        ks.dedup();

        Some(ParamGrid {
            alphas,
            days: day_values,
            ks,
        })
    }

    /// Index of an exact α value, if present.
    pub fn alpha_index(&self, alpha: f64) -> Option<usize> {
        self.alphas.iter().position(|&a| a == alpha)
    }

    /// Index of a D value, if present.
    pub fn days_index(&self, days: usize) -> Option<usize> {
        self.days.iter().position(|&d| d == days)
    }

    /// Index of a K value, if present.
    pub fn k_index(&self, k: usize) -> Option<usize> {
        self.ks.iter().position(|&v| v == k)
    }
}

impl Default for ParamGrid {
    fn default() -> Self {
        ParamGrid::paper()
    }
}

/// Builder for [`ParamGrid`]; unset axes default to the paper's ranges.
#[derive(Clone, Debug, Default)]
pub struct ParamGridBuilder {
    alphas: Option<Vec<f64>>,
    days: Option<Vec<usize>>,
    ks: Option<Vec<usize>>,
}

impl ParamGridBuilder {
    /// Sets the α axis.
    pub fn alphas(mut self, alphas: Vec<f64>) -> Self {
        self.alphas = Some(alphas);
        self
    }

    /// Sets the D axis.
    pub fn days(mut self, days: Vec<usize>) -> Self {
        self.days = Some(days);
        self
    }

    /// Sets the K axis (must be strictly ascending).
    pub fn ks(mut self, ks: Vec<usize>) -> Self {
        self.ks = Some(ks);
        self
    }

    /// Validates and builds the grid.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] if any axis is empty or holds out-of-range
    /// values, or if the K axis is not strictly ascending.
    pub fn build(self) -> Result<ParamGrid, GridError> {
        let paper = ParamGrid::paper();
        let alphas = self.alphas.unwrap_or(paper.alphas);
        let days = self.days.unwrap_or(paper.days);
        let ks = self.ks.unwrap_or(paper.ks);
        if alphas.is_empty() {
            return Err(GridError::EmptyAxis { axis: "alphas" });
        }
        if days.is_empty() {
            return Err(GridError::EmptyAxis { axis: "days" });
        }
        if ks.is_empty() {
            return Err(GridError::EmptyAxis { axis: "ks" });
        }
        if let Some(&alpha) = alphas
            .iter()
            .find(|a| !a.is_finite() || !(0.0..=1.0).contains(*a))
        {
            return Err(GridError::InvalidAlpha { alpha });
        }
        if days.contains(&0) {
            return Err(GridError::InvalidDays);
        }
        if ks.contains(&0) {
            return Err(GridError::InvalidK);
        }
        if ks.windows(2).any(|w| w[0] >= w[1]) {
            return Err(GridError::UnsortedKs);
        }
        Ok(ParamGrid { alphas, days, ks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_dimensions() {
        let g = ParamGrid::paper();
        assert_eq!(g.configs(), 1254);
        assert_eq!(g.d_max(), 20);
        assert_eq!(g.k_max(), 6);
        assert_eq!(g, ParamGrid::default());
    }

    #[test]
    fn index_lookups() {
        let g = ParamGrid::paper();
        assert_eq!(g.alpha_index(0.7), Some(7));
        assert_eq!(g.alpha_index(0.75), None);
        assert_eq!(g.days_index(2), Some(0));
        assert_eq!(g.k_index(6), Some(5));
    }

    #[test]
    fn refined_grid_keeps_centre_and_halves_spacing() {
        let g = ParamGrid::builder()
            .alphas(vec![0.0, 0.5, 1.0])
            .days(vec![2, 10, 20])
            .ks(vec![1, 4, 6])
            .build()
            .unwrap();
        let r = g.refined_around(0.5, 10, 4).unwrap();
        assert_eq!(r.alphas(), &[0.25, 0.5, 0.75]);
        assert_eq!(r.days(), &[6, 10, 15]);
        assert_eq!(r.ks(), &[2, 4, 5]);
        // Refinement of a refinement keeps shrinking around the centre.
        let rr = r.refined_around(0.5, 10, 4).unwrap();
        assert_eq!(rr.alphas(), &[0.375, 0.5, 0.625]);
        // Off-grid centres are rejected.
        assert!(g.refined_around(0.3, 10, 4).is_none());
        assert!(g.refined_around(0.5, 11, 4).is_none());
        assert!(g.refined_around(0.5, 10, 5).is_none());
    }

    #[test]
    fn refined_grid_at_axis_edges_stays_valid() {
        let g = ParamGrid::builder()
            .alphas(vec![0.0, 1.0])
            .days(vec![2, 3])
            .ks(vec![1, 2])
            .build()
            .unwrap();
        let r = g.refined_around(0.0, 2, 1).unwrap();
        assert_eq!(r.alphas(), &[0.0, 0.5]);
        // Integer midpoints collapse onto neighbours without duplicates
        // or K-order violations.
        assert_eq!(r.days(), &[2, 3]);
        assert_eq!(r.ks(), &[1, 2]);
        // A single-point grid refines to itself.
        let point = ParamGrid::builder()
            .alphas(vec![0.7])
            .days(vec![10])
            .ks(vec![2])
            .build()
            .unwrap();
        let rp = point.refined_around(0.7, 10, 2).unwrap();
        assert_eq!(rp.configs(), 1);
    }

    #[test]
    fn builder_defaults_to_paper() {
        let g = ParamGrid::builder().build().unwrap();
        assert_eq!(g, ParamGrid::paper());
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            ParamGrid::builder().alphas(vec![]).build(),
            Err(GridError::EmptyAxis { axis: "alphas" })
        ));
        assert!(matches!(
            ParamGrid::builder().alphas(vec![1.5]).build(),
            Err(GridError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            ParamGrid::builder().days(vec![0]).build(),
            Err(GridError::InvalidDays)
        ));
        assert!(matches!(
            ParamGrid::builder().ks(vec![2, 1]).build(),
            Err(GridError::UnsortedKs)
        ));
        assert!(matches!(
            ParamGrid::builder().ks(vec![1, 1]).build(),
            Err(GridError::UnsortedKs)
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            GridError::EmptyAxis { axis: "ks" },
            GridError::InvalidAlpha { alpha: -1.0 },
            GridError::InvalidDays,
            GridError::InvalidK,
            GridError::UnsortedKs,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
