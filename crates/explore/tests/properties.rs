//! Property tests for the exploration engines (DESIGN.md §6): the sweep
//! must equal naive per-configuration evaluation, and the clairvoyant
//! bound must never lose to any fixed configuration.

use param_explore::dynamic::clairvoyant_eval;
use param_explore::{sweep, ParamGrid};
use pred_metrics::EvalProtocol;
use proptest::prelude::*;
use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

const N: usize = 12;
const M: usize = 3; // samples per slot

/// Random multi-day trace with M samples per slot and solar structure
/// (zeros outside a daylight window).
fn trace_strategy() -> impl Strategy<Value = PowerTrace> {
    (4usize..8).prop_flat_map(|days| {
        proptest::collection::vec(5.0f64..1200.0, days * N * M).prop_map(move |mut samples| {
            for (i, v) in samples.iter_mut().enumerate() {
                let slot = (i / M) % N;
                if !(3..9).contains(&slot) {
                    *v = 0.0;
                }
            }
            PowerTrace::new(
                "prop",
                Resolution::from_seconds(86_400 / (N * M) as u32).unwrap(),
                samples,
            )
            .unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sweep_equals_naive_on_random_traces(
        trace in trace_strategy(),
        alpha_idx in 0usize..3,
        d in 1usize..5,
        k in 1usize..4,
    ) {
        let alphas = [0.0, 0.5, 1.0];
        let alpha = alphas[alpha_idx];
        let view = SlotView::new(&trace, SlotsPerDay::new(N as u32).unwrap()).unwrap();
        let protocol = EvalProtocol::new(0.10, 2);
        let grid = ParamGrid::builder()
            .alphas(vec![alpha])
            .days(vec![d])
            .ks(vec![k])
            .build()
            .unwrap();
        let result = sweep(&view, &grid, &protocol);
        let params = WcmaParams::new(alpha, d, k, N).unwrap();
        let log = run_predictor(&view, &mut WcmaPredictor::new(params));
        let summary = protocol.evaluate(&log);
        prop_assert_eq!(summary.count, result.eval_count());
        prop_assert!((summary.mape - result.mape(0, 0, 0)).abs() < 1e-12);
        prop_assert!((summary.mape_prime - result.mape_prime(0, 0, 0)).abs() < 1e-12);
    }

    #[test]
    fn clairvoyant_never_loses_to_any_fixed_config(trace in trace_strategy()) {
        let view = SlotView::new(&trace, SlotsPerDay::new(N as u32).unwrap()).unwrap();
        let protocol = EvalProtocol::new(0.10, 2);
        let alphas: Vec<f64> = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let d = 3;
        let k_max = 3;
        let outcome = clairvoyant_eval(&view, d, &alphas, k_max, &protocol);
        let grid = ParamGrid::builder()
            .alphas(alphas.clone())
            .days(vec![d])
            .ks((1..=k_max).collect())
            .build()
            .unwrap();
        let result = sweep(&view, &grid, &protocol);
        let static_best = result.best_by_mape();
        prop_assert!(outcome.both_mape <= static_best.mape + 1e-9);
        prop_assert!(outcome.k_only.1 <= static_best.mape + 1e-9);
        prop_assert!(outcome.alpha_only.1 <= static_best.mape + 1e-9);
        prop_assert!(outcome.both_mape <= outcome.k_only.1 + 1e-9);
        prop_assert!(outcome.both_mape <= outcome.alpha_only.1 + 1e-9);
    }

    #[test]
    fn best_at_k_and_days_are_consistent_restrictions(trace in trace_strategy()) {
        let view = SlotView::new(&trace, SlotsPerDay::new(N as u32).unwrap()).unwrap();
        let protocol = EvalProtocol::new(0.10, 2);
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 0.5, 1.0])
            .days(vec![2, 4])
            .ks(vec![1, 3])
            .build()
            .unwrap();
        let result = sweep(&view, &grid, &protocol);
        let best = result.best_by_mape();
        // Restricting to the optimum's own K or D reproduces the optimum.
        prop_assert!((result.best_at_k(best.k).unwrap().mape - best.mape).abs() < 1e-15);
        prop_assert!((result.best_at_days(best.days).unwrap().mape - best.mape).abs() < 1e-15);
        // Every restriction is no better than the global best.
        for k in [1usize, 3] {
            prop_assert!(result.best_at_k(k).unwrap().mape + 1e-15 >= best.mape);
        }
    }
}
