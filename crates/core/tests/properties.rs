//! Property-based tests for the predictor invariants of DESIGN.md §6.

use proptest::prelude::*;
use solar_predict::dynamic::{ensemble_steps, predict_from_step};
use solar_predict::fixed_point::FixedWcmaPredictor;
use solar_predict::{
    run_predictor, CandidateBank, EwmaPredictor, MovingAveragePredictor, PersistencePredictor,
    Predictor, WcmaParams, WcmaPredictor,
};
use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

const N: usize = 24;

/// A random multi-day trace at N slots/day (1 sample per slot).
fn trace_strategy(max_days: usize) -> impl Strategy<Value = PowerTrace> {
    (2..=max_days).prop_flat_map(|days| {
        proptest::collection::vec(0.0f64..1400.0, days * N).prop_map(|samples| {
            PowerTrace::new(
                "prop",
                Resolution::from_seconds(86_400 / N as u32).unwrap(),
                samples,
            )
            .unwrap()
        })
    })
}

fn view(trace: &PowerTrace) -> SlotView<'_> {
    SlotView::new(trace, SlotsPerDay::new(N as u32).unwrap()).unwrap()
}

/// A random trace with solar structure: slots 0..6 and 18..24 dark, the
/// rest daylight bounded away from zero.
fn solar_like_strategy(max_days: usize) -> impl Strategy<Value = PowerTrace> {
    (2..=max_days).prop_flat_map(|days| {
        proptest::collection::vec(30.0f64..1400.0, days * 12).prop_map(move |daylight| {
            let mut samples = Vec::with_capacity(days * N);
            let mut it = daylight.into_iter();
            for _ in 0..days {
                for slot in 0..N {
                    if (6..18).contains(&slot) {
                        samples.push(it.next().expect("sized above"));
                    } else {
                        samples.push(0.0);
                    }
                }
            }
            PowerTrace::new(
                "solar-like",
                Resolution::from_seconds(86_400 / N as u32).unwrap(),
                samples,
            )
            .unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wcma_alpha_one_equals_persistence(trace in trace_strategy(6)) {
        let v = view(&trace);
        let params = WcmaParams::new(1.0, 5, 3, N).unwrap();
        let wcma_log = run_predictor(&v, &mut WcmaPredictor::new(params));
        let pers_log = run_predictor(&v, &mut PersistencePredictor::new(N));
        for (a, b) in wcma_log.records().iter().zip(pers_log.records()) {
            prop_assert_eq!(a.predicted, b.predicted);
        }
    }

    #[test]
    fn wcma_predictions_are_finite_nonnegative(
        trace in trace_strategy(6),
        alpha in 0.0f64..=1.0,
        d in 1usize..8,
        k in 1usize..6,
    ) {
        let v = view(&trace);
        let params = WcmaParams::new(alpha, d, k, N).unwrap();
        let log = run_predictor(&v, &mut WcmaPredictor::new(params));
        for r in &log {
            prop_assert!(r.predicted.is_finite());
            prop_assert!(r.predicted >= 0.0);
        }
    }

    #[test]
    fn ensemble_agrees_with_streaming(trace in trace_strategy(5), alpha in 0.0f64..=1.0) {
        let v = view(&trace);
        let d = 4;
        let k_max = 4;
        let steps = ensemble_steps(&v, d, k_max);
        for k in 1..=k_max {
            let params = WcmaParams::new(alpha, d, k, N).unwrap();
            let log = run_predictor(&v, &mut WcmaPredictor::new(params));
            prop_assert_eq!(log.len(), steps.len());
            for (rec, step) in log.records().iter().zip(&steps) {
                if step.day == 0 && (step.slot as usize) < k {
                    continue; // run-start window differences
                }
                let ens = predict_from_step(step, alpha, k);
                prop_assert!(
                    (rec.predicted - ens).abs() < 1e-9,
                    "alpha {} K {} d{} s{}: {} vs {}",
                    alpha, k, step.day, step.slot, rec.predicted, ens
                );
            }
        }
    }

    #[test]
    fn moving_average_equals_history_mean(trace in trace_strategy(6), d in 1usize..6) {
        let v = view(&trace);
        let mut p = MovingAveragePredictor::new(d, N).unwrap();
        let log = run_predictor(&v, &mut p);
        // After warm-up, every prediction is the true mean of the target
        // *boundary* slot over the last d days. Records are keyed by the
        // just-entered slot; the boundary is one slot later.
        for r in log.records().iter().filter(|r| r.day as usize > d) {
            let (day, slot) = (r.day as usize, r.slot as usize);
            let (b_day, b_slot) = if slot + 1 == N { (day + 1, 0) } else { (day, slot + 1) };
            let take = d.min(b_day);
            let mean: f64 = (1..=take)
                .map(|back| v.start_sample(b_day - back, b_slot))
                .sum::<f64>()
                / take as f64;
            prop_assert!((r.predicted - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn fixed_point_tracks_float(trace in solar_like_strategy(6)) {
        // Q16.16 is only claimed for the solar domain: dark nights, day
        // samples bounded away from zero (a tiny historical mean would
        // blow the η ratio past the Q16 range — real MCU ports guard the
        // same way the region of interest does).
        let v = view(&trace);
        let params = WcmaParams::new(0.7, 4, 3, N).unwrap();
        let float_log = run_predictor(&v, &mut WcmaPredictor::new(params));
        let fixed_log = run_predictor(&v, &mut FixedWcmaPredictor::new(params));
        for (f, q) in float_log.records().iter().zip(fixed_log.records()) {
            let tol = 0.5 + 0.01 * f.predicted.abs();
            prop_assert!(
                (f.predicted - q.predicted).abs() < tol,
                "d{} s{}: {} vs {}", f.day, f.slot, f.predicted, q.predicted
            );
        }
    }

    #[test]
    fn ewma_estimates_stay_within_observed_range(trace in trace_strategy(6)) {
        let v = view(&trace);
        let mut p = EwmaPredictor::new(0.5, N).unwrap();
        run_predictor(&v, &mut p);
        for slot in 0..N {
            if let Some(est) = p.estimate(slot) {
                let lo = (0..v.days()).map(|d| v.start_sample(d, slot)).fold(f64::INFINITY, f64::min);
                let hi = (0..v.days()).map(|d| v.start_sample(d, slot)).fold(0.0, f64::max);
                prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn reset_reproduces_run(trace in trace_strategy(4), alpha in 0.0f64..=1.0) {
        let v = view(&trace);
        let params = WcmaParams::new(alpha, 3, 2, N).unwrap();
        let mut p = WcmaPredictor::new(params);
        let first = run_predictor(&v, &mut p);
        p.reset();
        let second = run_predictor(&v, &mut p);
        prop_assert_eq!(first, second);
    }

    /// The batched kernel is the solo kernel: over a random trace, a
    /// [`CandidateBank`] holding a whole (α, D, K) grid emits, for every
    /// candidate at every slot, the bit-identical prediction its solo
    /// [`WcmaPredictor`] emits — the contract that lets one trace pass
    /// score a tuner round's whole grid.
    #[test]
    fn candidate_bank_matches_solo_runs_on_random_traces(
        trace in trace_strategy(6),
        alpha_seed in 0u32..4,
    ) {
        let alphas = [
            vec![0.0, 1.0],
            vec![0.3],
            vec![0.25, 0.5, 0.75],
            vec![0.7, 0.9],
        ][alpha_seed as usize].clone();
        let mut grid = Vec::new();
        for &alpha in &alphas {
            for days in [1usize, 4, 11] {
                for k in [1usize, 3, 6] {
                    grid.push(WcmaParams::new(alpha, days, k, N).unwrap());
                }
            }
        }
        let mut bank = CandidateBank::new(grid.clone()).unwrap();
        let mut solos: Vec<WcmaPredictor> =
            grid.into_iter().map(WcmaPredictor::new).collect();
        let v = view(&trace);
        for day in 0..v.days() {
            for slot in 0..N {
                let measured = v.start_sample(day, slot);
                let banked = bank.observe_and_predict(measured).to_vec();
                for (idx, solo) in solos.iter_mut().enumerate() {
                    let expected = solo.observe_and_predict(measured);
                    prop_assert_eq!(
                        banked[idx].to_bits(),
                        expected.to_bits(),
                        "day {} slot {} candidate {}: {} vs {}",
                        day, slot, idx, banked[idx], expected
                    );
                }
            }
        }
    }
}
