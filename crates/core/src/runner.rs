//! Driving predictors over slotted traces.

use crate::predictor::Predictor;
use pred_metrics::{PredictionLog, PredictionRecord, RecordSink};
use solar_trace::SlotView;

/// Runs a streaming predictor over every slot of a view, in time order,
/// and logs one [`PredictionRecord`] per prediction.
///
/// Index semantics follow the paper's Fig. 4 / Eq. 6–7: the prediction
/// `ê(n+1)` made after sampling the boundary of slot `n` estimates the
/// energy of slot `n` itself — the interval between boundaries `n` and
/// `n+1`. Each record therefore carries, at coordinates `(day, slot)` of
/// the *just-entered* slot:
///
/// * `actual_mean` — the mean power over that slot (`ē_n`, the MAPE
///   reference of Eq. 7), and
/// * `actual_start` — the measured sample at the *next* boundary
///   (`e(n+1)`, the MAPE′ reference of Eq. 6).
///
/// The final slot of the trace has no next boundary and is skipped. This
/// is exactly the reading under which the paper's Table III `N = 288`
/// rows on 5-minute data report `MAPE = 0` at `α = 1`: with one sample
/// per slot, `ē_n = ẽ(n) = ê(n+1)`.
///
/// # Panics
///
/// Panics if `predictor.slots_per_day() != view.slots_per_day()` — running
/// a predictor at the wrong discretization is always a bug.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::{run_predictor, PersistencePredictor};
/// use solar_trace::{PowerTrace, Resolution, SlotsPerDay, SlotView};
///
/// let trace = PowerTrace::new("t", Resolution::from_minutes(30)?, vec![10.0; 96])?;
/// let view = SlotView::new(&trace, SlotsPerDay::new(48)?)?;
/// let mut p = PersistencePredictor::new(48);
/// let log = run_predictor(&view, &mut p);
/// // 96 slots; the last one has no closing boundary sample.
/// assert_eq!(log.len(), 95);
/// # Ok(())
/// # }
/// ```
pub fn run_predictor(view: &SlotView<'_>, predictor: &mut dyn Predictor) -> PredictionLog {
    run_predictor_observed(view, predictor, |_, _, measured| measured)
}

/// [`run_predictor`] with an observation transform: `observe(day, slot,
/// sample)` returns what the predictor actually sees in place of the
/// true slot-boundary sample — a corrupted sensor reading, a quantized
/// ADC value, a telemetry gap.
///
/// The logged references (`actual_start`, `actual_mean`) stay ground
/// truth, so the resulting log scores the predictor against what the
/// sky delivered while it observed something else. Index semantics are
/// identical to [`run_predictor`] (which delegates here with the
/// identity transform).
///
/// This is a thin wrapper over [`StreamedPredictorRun`] — the push-style
/// core that slot streams drive directly — so view-driven and
/// stream-driven metrics passes are bit-identical by construction.
///
/// # Panics
///
/// Panics if `predictor.slots_per_day() != view.slots_per_day()`.
pub fn run_predictor_observed(
    view: &SlotView<'_>,
    predictor: &mut dyn Predictor,
    mut observe: impl FnMut(usize, usize, f64) -> f64,
) -> PredictionLog {
    let n = view.slots_per_day();
    assert_eq!(
        predictor.slots_per_day(),
        n,
        "predictor configured for N={} but view has N={}",
        predictor.slots_per_day(),
        n
    );
    let mut run = StreamedPredictorRun::with_capacity(predictor, n, view.days() * n);
    for day in 0..view.days() {
        for slot in 0..n {
            let true_start = view.start_sample(day, slot);
            let observed = observe(day, slot, true_start);
            run.on_slot(day, slot, observed, true_start, view.mean_power(day, slot));
        }
    }
    run.finish()
}

/// The metrics pass as a push-style state machine: feed slots in time
/// order with [`StreamedPredictorRun::on_slot`], collect the sink with
/// [`StreamedPredictorRun::finish`].
///
/// A prediction made at slot `n`'s boundary needs the *next* boundary
/// sample as its MAPE′ reference, so the machine holds one pending
/// record and completes it when the following slot arrives; the final
/// slot of a run has no closing boundary and is dropped — exactly the
/// semantics of [`run_predictor`], which wraps this type.
///
/// The sink decides what happens to completed records: a
/// [`PredictionLog`] materializes them (the default; what
/// [`run_predictor_observed`] collects), while a
/// [`pred_metrics::StreamingEval`] folds each record straight into
/// protocol accumulators so a multi-year pass needs O(1) memory.
pub struct StreamedPredictorRun<'a, S: RecordSink = PredictionLog> {
    predictor: &'a mut dyn Predictor,
    feed: PredictionFeed<S>,
}

/// The record-assembly half of a metrics pass, decoupled from *how* the
/// prediction was computed: feed `(slot, prediction, references)` in
/// time order and completed [`PredictionRecord`]s flow into the sink
/// with exactly the pending-boundary semantics of
/// [`StreamedPredictorRun`] (which wraps this type around its own
/// predictor).
///
/// This is what lets a [`CandidateBank`](crate::CandidateBank) drive
/// many candidates' metrics passes from one observation pass: the bank
/// computes each candidate's prediction once per slot, and each
/// candidate owns a `PredictionFeed` — the records, and therefore every
/// evaluated summary, are bit-identical to a solo run's.
pub struct PredictionFeed<S: RecordSink = PredictionLog> {
    sink: S,
    /// `(day, slot, predicted, actual_mean)` of the just-entered slot,
    /// awaiting the next boundary sample.
    pending: Option<(u32, u32, f64, f64)>,
}

impl<S: RecordSink> PredictionFeed<S> {
    /// Starts a feed pushing completed records into `sink`.
    pub fn new(sink: S) -> Self {
        PredictionFeed {
            sink,
            pending: None,
        }
    }

    /// Reconstructs a feed mid-run: `sink` already holds the prefix's
    /// completed records and `pending` is the record awaiting its
    /// closing boundary, both captured at the same slot (see
    /// [`PredictionFeed::pending`]). Continuing the identical slot
    /// sequence pushes a record stream bit-identical to an
    /// uninterrupted run's.
    pub fn resume(sink: S, pending: Option<(u32, u32, f64, f64)>) -> Self {
        PredictionFeed { sink, pending }
    }

    /// The `(day, slot, predicted, actual_mean)` record awaiting its
    /// closing boundary — together with a clone of the sink, the
    /// feed's whole carried state, exposed for day-boundary
    /// checkpointing.
    pub fn pending(&self) -> Option<(u32, u32, f64, f64)> {
        self.pending
    }

    /// The sink as filled so far (checkpoint capture clones it while
    /// the run keeps going).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Feeds the slot at `(day, slot)` with an already-computed
    /// `predicted` value; `true_start` and `true_mean` are the
    /// ground-truth references entering the record.
    pub fn on_slot(
        &mut self,
        day: usize,
        slot: usize,
        predicted: f64,
        true_start: f64,
        true_mean: f64,
    ) {
        self.flush_pending(true_start);
        self.open_pending(day, slot, predicted, true_mean);
    }

    /// Completes the pending record, if any, against the next boundary
    /// sample. [`PredictionFeed::on_slot`] is exactly this followed by
    /// [`PredictionFeed::open_pending`]; a caller that knows up front
    /// which slots an evaluation protocol will discard (the decision
    /// depends only on the record's day and reference mean — never on
    /// the prediction) can call the halves selectively and skip record
    /// assembly on discarded slots entirely, with a bit-identical
    /// record stream reaching the sink.
    pub fn flush_pending(&mut self, true_start: f64) {
        if let Some((p_day, p_slot, predicted, actual_mean)) = self.pending.take() {
            self.sink.push_record(PredictionRecord {
                day: p_day,
                slot: p_slot,
                predicted,
                actual_start: true_start,
                actual_mean,
            });
        }
    }

    /// Opens this slot's record, completed by the next
    /// [`PredictionFeed::flush_pending`] (see there for when to call
    /// the halves directly).
    pub fn open_pending(&mut self, day: usize, slot: usize, predicted: f64, true_mean: f64) {
        self.pending = Some((day as u32, slot as u32, predicted, true_mean));
    }

    /// Ends the feed, dropping the final slot's pending record (it has
    /// no closing boundary) and returning the sink.
    pub fn finish(self) -> S {
        self.sink
    }
}

impl<'a> StreamedPredictorRun<'a, PredictionLog> {
    /// Starts a log-collecting run at discretization `n`.
    ///
    /// # Panics
    ///
    /// Panics if `predictor.slots_per_day() != n`.
    pub fn new(predictor: &'a mut dyn Predictor, n: usize) -> Self {
        Self::with_capacity(predictor, n, 0)
    }

    /// [`StreamedPredictorRun::new`] with the log preallocated for
    /// `slots` records — pass the expected slot count when the horizon
    /// is known up front (a multi-year run logs tens of thousands of
    /// records; growing by reallocation costs repeated copies).
    ///
    /// # Panics
    ///
    /// Panics if `predictor.slots_per_day() != n`.
    pub fn with_capacity(predictor: &'a mut dyn Predictor, n: usize, slots: usize) -> Self {
        Self::with_sink(predictor, n, PredictionLog::with_capacity(n, slots))
    }
}

impl<'a, S: RecordSink> StreamedPredictorRun<'a, S> {
    /// Starts a run feeding completed records into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `predictor.slots_per_day() != n`.
    pub fn with_sink(predictor: &'a mut dyn Predictor, n: usize, sink: S) -> Self {
        assert_eq!(
            predictor.slots_per_day(),
            n,
            "predictor configured for N={} but stream has N={}",
            predictor.slots_per_day(),
            n
        );
        StreamedPredictorRun {
            predictor,
            feed: PredictionFeed::new(sink),
        }
    }

    /// Feeds the slot at `(day, slot)`: the predictor observes
    /// `observed` (possibly corrupted), while `true_start` and
    /// `true_mean` are the ground-truth references entering the record.
    pub fn on_slot(
        &mut self,
        day: usize,
        slot: usize,
        observed: f64,
        true_start: f64,
        true_mean: f64,
    ) {
        let predicted = self.predictor.observe_and_predict(observed);
        self.feed
            .on_slot(day, slot, predicted, true_start, true_mean);
    }

    /// Ends the run, dropping the final slot's pending record (it has no
    /// closing boundary) and returning the sink.
    pub fn finish(self) -> S {
        self.feed.finish()
    }

    /// Captures a [`DayCheckpoint`] of the run at its current
    /// position, leaving the live run untouched. Meaningful at day
    /// boundaries (after the last slot of a day, before the first of
    /// the next), where it pairs with a trace checkpoint at the same
    /// horizon. Returns `None` when the predictor does not support
    /// [`Predictor::snapshot`] — the caller falls back to replay.
    pub fn checkpoint(&self) -> Option<DayCheckpoint<S>>
    where
        S: Clone,
    {
        Some(DayCheckpoint {
            predictor: self.predictor.snapshot()?,
            sink: self.feed.sink().clone(),
            pending: self.feed.pending(),
        })
    }

    /// Resumes a run from the halves of a [`DayCheckpoint`]:
    /// `predictor` carries the snapshotted state (the caller borrows
    /// it out of the checkpoint, or restores it elsewhere), `sink`
    /// holds the prefix's completed records, `pending` its record
    /// awaiting a closing boundary. Feeding the remaining slots makes
    /// the finished sink bit-identical to an uninterrupted run's.
    ///
    /// # Panics
    ///
    /// Panics if `predictor.slots_per_day() != n`.
    pub fn resume_with_sink(
        predictor: &'a mut dyn Predictor,
        n: usize,
        sink: S,
        pending: Option<(u32, u32, f64, f64)>,
    ) -> Self {
        assert_eq!(
            predictor.slots_per_day(),
            n,
            "predictor configured for N={} but stream has N={}",
            predictor.slots_per_day(),
            n
        );
        StreamedPredictorRun {
            predictor,
            feed: PredictionFeed::resume(sink, pending),
        }
    }
}

/// A day-boundary checkpoint of a [`StreamedPredictorRun`]: the deep-
/// copied predictor plus the metrics half (sink + pending record) at
/// the same boundary. Resume by borrowing `predictor` mutably into
/// [`StreamedPredictorRun::resume_with_sink`] together with the other
/// two fields; the continued run's finished sink is bit-identical to
/// an uninterrupted run over the full horizon.
///
/// The metrics half is plain data (`PredictionRecord`s or streaming
/// accumulators, serde-gated in `pred_metrics`); the predictor half is
/// a live state machine and is persisted by keeping the checkpoint
/// itself alive (e.g. inside a fleet cache), not by serialization.
pub struct DayCheckpoint<S: RecordSink> {
    /// The predictor's snapshotted state at the boundary.
    pub predictor: Box<dyn Predictor>,
    /// The sink with every record completed before the boundary.
    pub sink: S,
    /// The record awaiting its closing boundary sample.
    pub pending: Option<(u32, u32, f64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::PersistencePredictor;
    use solar_trace::{PowerTrace, Resolution, SlotsPerDay};

    fn view_of(samples: Vec<f64>) -> PowerTrace {
        PowerTrace::new("t", Resolution::from_minutes(30).unwrap(), samples).unwrap()
    }

    #[test]
    fn records_current_interval_references() {
        // 15-minute samples, N = 48 -> 2 samples per slot.
        let mut samples = vec![0.0; 96];
        samples[1] = 42.0; // slot 0 second sample (mean changes)
        samples[2] = 10.0; // slot 1 boundary sample
        let trace = PowerTrace::new("t", Resolution::from_minutes(15).unwrap(), samples).unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let mut p = PersistencePredictor::new(48);
        let log = run_predictor(&view, &mut p);
        let first = log.records()[0];
        // The prediction made at boundary 0 is logged against slot 0: its
        // mean (Eq. 7) and the next boundary sample (Eq. 6).
        assert_eq!(first.day, 0);
        assert_eq!(first.slot, 0);
        assert_eq!(first.predicted, 0.0); // persistence of boundary 0
        assert_eq!(first.actual_start, 10.0); // boundary of slot 1
        assert_eq!(first.actual_mean, 21.0); // (0 + 42)/2
    }

    #[test]
    fn single_sample_slots_make_persistence_exact() {
        // One sample per slot: ē_n equals the boundary sample, so
        // persistence has zero Eq. 7 error — the paper's Table III 0†.
        let trace = view_of((0..96).map(|i| (i * 7 % 23) as f64).collect());
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let mut p = PersistencePredictor::new(48);
        let log = run_predictor(&view, &mut p);
        for r in &log {
            assert_eq!(r.predicted, r.actual_mean);
        }
    }

    #[test]
    fn last_day_boundary_is_covered() {
        let trace = view_of((0..96).map(|i| i as f64).collect());
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let mut p = PersistencePredictor::new(48);
        let log = run_predictor(&view, &mut p);
        // The prediction made at day 0 slot 47 closes at day 1 slot 0's
        // boundary and is logged against (0, 47).
        let rec = log
            .records()
            .iter()
            .find(|r| r.day == 0 && r.slot == 47)
            .unwrap();
        assert_eq!(rec.predicted, view.start_sample(0, 47));
        assert_eq!(rec.actual_start, view.start_sample(1, 0));
        assert_eq!(rec.actual_mean, view.mean_power(0, 47));
        // The very last slot has no closing boundary: no record.
        assert!(!log.records().iter().any(|r| r.day == 1 && r.slot == 47));
    }

    #[test]
    fn observed_identity_matches_run_predictor() {
        let trace = view_of((0..96).map(|i| (i * 13 % 37) as f64).collect());
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let a = run_predictor(&view, &mut PersistencePredictor::new(48));
        let b = run_predictor_observed(&view, &mut PersistencePredictor::new(48), |_, _, m| m);
        assert_eq!(a, b);
    }

    #[test]
    fn observation_transform_corrupts_inputs_not_references() {
        let trace = view_of((0..96).map(|i| 10.0 + i as f64).collect());
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        // The predictor sees zeros everywhere; the log's references must
        // still be the true trace values.
        let log = run_predictor_observed(&view, &mut PersistencePredictor::new(48), |_, _, _| 0.0);
        for r in &log {
            assert_eq!(r.predicted, 0.0);
            assert!(r.actual_mean > 0.0);
        }
    }

    #[test]
    fn day_checkpoint_resume_is_bit_identical() {
        use crate::wcma::WcmaPredictor;
        let trace = view_of((0..4 * 96).map(|i| (i * 31 % 211) as f64).collect());
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let n = 48;
        let params = crate::params::WcmaParamsBuilder::new()
            .alpha(0.7)
            .days(2)
            .k(2)
            .slots_per_day(n)
            .build()
            .unwrap();
        let cold = run_predictor(&view, &mut WcmaPredictor::new(params));

        // Run two days, checkpoint at the boundary, resume from the
        // checkpoint alone and feed the remaining days.
        let mut live = WcmaPredictor::new(params);
        let mut run = StreamedPredictorRun::new(&mut live, n);
        for day in 0..2 {
            for slot in 0..n {
                let s = view.start_sample(day, slot);
                run.on_slot(day, slot, s, s, view.mean_power(day, slot));
            }
        }
        let mut ckpt = run.checkpoint().expect("wcma snapshots");
        drop(run);
        let mut resumed = StreamedPredictorRun::resume_with_sink(
            ckpt.predictor.as_mut(),
            n,
            ckpt.sink,
            ckpt.pending,
        );
        for day in 2..view.days() {
            for slot in 0..n {
                let s = view.start_sample(day, slot);
                resumed.on_slot(day, slot, s, s, view.mean_power(day, slot));
            }
        }
        assert_eq!(resumed.finish(), cold);
    }

    #[test]
    #[should_panic(expected = "predictor configured for")]
    fn mismatched_n_panics() {
        let trace = view_of(vec![0.0; 96]);
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let mut p = PersistencePredictor::new(24);
        let _ = run_predictor(&view, &mut p);
    }
}
