//! Degenerate baselines: persistence and plain moving average.
//!
//! These are the two corners of the WCMA formula — α = 1, and α = 0 with
//! Φ ≡ 1 — implemented standalone so comparisons don't pay WCMA's
//! bookkeeping and so tests can cross-check the corners.

use crate::error::ParamError;
use crate::history::DayHistory;
use crate::predictor::Predictor;

/// Predicts the next slot as the just-measured value: `ê(n+1) = ẽ(n)`.
///
/// This is what the paper observes WCMA converges to as `N → 288`
/// (α → 1): at short horizons the current sample is the best estimate.
///
/// # Example
///
/// ```
/// use solar_predict::{PersistencePredictor, Predictor};
///
/// let mut p = PersistencePredictor::new(48);
/// assert_eq!(p.observe_and_predict(640.0), 640.0);
/// ```
#[derive(Clone, Debug)]
pub struct PersistencePredictor {
    slots_per_day: usize,
}

impl PersistencePredictor {
    /// Creates a persistence predictor (the slot count only labels the
    /// configuration; the prediction rule does not use it).
    pub fn new(slots_per_day: usize) -> Self {
        PersistencePredictor { slots_per_day }
    }
}

impl Predictor for PersistencePredictor {
    fn observe_and_predict(&mut self, measured: f64) -> f64 {
        measured
    }

    fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "persistence"
    }

    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

/// Predicts the next slot as its mean over the last `D` days:
/// `ê(n+1) = μ_D(n+1)` — WCMA with α = 0 and the conditioning factor
/// disabled.
///
/// Falls back to persistence until one day of history exists.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::{MovingAveragePredictor, Predictor};
///
/// let mut p = MovingAveragePredictor::new(3, 4)?;
/// for _ in 0..3 {
///     for &v in &[0.0, 10.0, 20.0, 10.0] {
///         p.observe_and_predict(v);
///     }
/// }
/// // Identical days: the average of slot 1 is exactly slot 1.
/// assert_eq!(p.observe_and_predict(0.0), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct MovingAveragePredictor {
    days: usize,
    history: DayHistory,
    current: Vec<f64>,
    cursor: usize,
}

impl MovingAveragePredictor {
    /// Creates a moving-average predictor over `days` past days.
    ///
    /// # Errors
    ///
    /// * [`ParamError::InvalidDays`] if `days == 0`.
    /// * [`ParamError::InvalidSlots`] if `slots_per_day < 2`.
    pub fn new(days: usize, slots_per_day: usize) -> Result<Self, ParamError> {
        if days == 0 {
            return Err(ParamError::InvalidDays { days });
        }
        if slots_per_day < 2 {
            return Err(ParamError::InvalidSlots { slots_per_day });
        }
        Ok(MovingAveragePredictor {
            days,
            history: DayHistory::new(slots_per_day, days),
            current: vec![0.0; slots_per_day],
            cursor: 0,
        })
    }

    /// The history depth D.
    pub fn days(&self) -> usize {
        self.days
    }
}

impl Predictor for MovingAveragePredictor {
    fn observe_and_predict(&mut self, measured: f64) -> f64 {
        let n = self.history.slots();
        self.current[self.cursor] = measured;
        let target = (self.cursor + 1) % n;
        if self.cursor + 1 == n {
            let finished = std::mem::replace(&mut self.current, vec![0.0; n]);
            self.history.push_day(&finished);
            self.cursor = 0;
        } else {
            self.cursor += 1;
        }
        self.history.mean(target, self.days).unwrap_or(measured)
    }

    fn slots_per_day(&self) -> usize {
        self.history.slots()
    }

    fn reset(&mut self) {
        self.history.clear();
        self.current.fill(0.0);
        self.cursor = 0;
    }

    fn name(&self) -> &str {
        "moving-average"
    }

    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_echoes_input() {
        let mut p = PersistencePredictor::new(24);
        for v in [0.0, 1.5, 900.0] {
            assert_eq!(p.observe_and_predict(v), v);
        }
        p.reset();
        assert_eq!(p.name(), "persistence");
        assert_eq!(p.slots_per_day(), 24);
    }

    #[test]
    fn moving_average_validates() {
        assert!(MovingAveragePredictor::new(0, 24).is_err());
        assert!(MovingAveragePredictor::new(3, 1).is_err());
    }

    #[test]
    fn moving_average_averages_past_days() {
        let mut p = MovingAveragePredictor::new(2, 2).unwrap();
        // Day 1: [10, 20]; day 2: [30, 40].
        p.observe_and_predict(10.0);
        p.observe_and_predict(20.0);
        p.observe_and_predict(30.0);
        // Observing slot 1 of day 2 completes the day; prediction targets
        // slot 0 of day 3: mean of {10, 30} = 20.
        let pred = p.observe_and_predict(40.0);
        assert_eq!(pred, 20.0);
        // Next: slot 0 observed, targets slot 1: mean of {20, 40} = 30.
        let pred = p.observe_and_predict(99.0);
        assert_eq!(pred, 30.0);
    }

    #[test]
    fn moving_average_warmup_is_persistence() {
        let mut p = MovingAveragePredictor::new(3, 4).unwrap();
        assert_eq!(p.observe_and_predict(7.0), 7.0);
        assert_eq!(p.observe_and_predict(8.0), 8.0);
    }

    #[test]
    fn moving_average_reset() {
        let mut p = MovingAveragePredictor::new(2, 2).unwrap();
        for v in [1.0, 2.0, 3.0, 4.0] {
            p.observe_and_predict(v);
        }
        p.reset();
        assert_eq!(p.observe_and_predict(5.0), 5.0); // warm-up again
        assert_eq!(p.days(), 2);
        assert_eq!(p.name(), "moving-average");
    }
}
