//! The WCMA predictor of Recas et al. — the algorithm the paper
//! evaluates (its Eq. 1–5).

use crate::history::DayHistory;
use crate::params::{KWindowPolicy, WcmaParams};
use crate::predictor::Predictor;
use std::collections::VecDeque;

/// Upper bound on a single conditioning ratio `η = ẽ / μ_D`.
///
/// At dawn the historical mean of a slot can be arbitrarily small (the
/// sun only just started reaching it on recent days), which would let a
/// single ratio blow `Φ` — and the next K predictions — up by orders of
/// magnitude. Deployed WCMA implementations bound the ratio; "today is
/// 50× brighter than usual" already carries no extra information for
/// conditioning. The bound is shared by every engine in the workspace
/// (streaming, ensemble, sweep, fixed point).
pub const MAX_CONDITIONING_RATIO: f64 = 50.0;

/// The η ratio of Eq. 4 with the night/warm-up guard (`μ = 0 → η = 1`)
/// and the [`MAX_CONDITIONING_RATIO`] bound applied.
///
/// # Example
///
/// ```
/// use solar_predict::conditioning_ratio;
///
/// assert_eq!(conditioning_ratio(450.0, Some(300.0)), 1.5);
/// assert_eq!(conditioning_ratio(450.0, None), 1.0);       // warm-up
/// assert_eq!(conditioning_ratio(450.0, Some(0.0)), 1.0);  // night slot
/// assert_eq!(conditioning_ratio(450.0, Some(1e-9)), 50.0); // dawn guard
/// ```
pub fn conditioning_ratio(measured: f64, mu: Option<f64>) -> f64 {
    match mu {
        Some(mu) if mu > 0.0 => (measured / mu).min(MAX_CONDITIONING_RATIO),
        _ => 1.0,
    }
}

/// The intermediate quantities of one WCMA prediction, exposed so studies
/// (and the paper's §IV-C analysis of which term dominates) don't have to
/// recompute them.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WcmaTerms {
    /// The persistence term input `ẽ(n)` (the weighted contribution is
    /// `α · ẽ(n)`).
    pub persistence: f64,
    /// The mean of the target slot over the last D days, `μ_D(n+1)`.
    pub mu_next: f64,
    /// The conditioning factor `Φ_K` (Eq. 3).
    pub phi: f64,
    /// The full conditioned-average term `μ_D(n+1) · Φ_K`.
    pub conditioned_average: f64,
}

/// Weighted Conditioned Moving-Average predictor (Recas et al., VITAE'09):
///
/// ```text
/// ê(n+1) = α · ẽ(n) + (1 − α) · μ_D(n+1) · Φ_K
/// Φ_K    = Σ θ(k) η(k) / Σ θ(k),   θ(k) = k / K,
/// η(k)   = ẽ(n−K+k) / μ_D(n−K+k)
/// ```
///
/// Implementation notes (these mirror what deployed MCU firmware does and
/// are shared with the sweep/ensemble engines, which are tested to agree
/// exactly):
///
/// * each slot's η ratio is computed **once, when the slot is observed**,
///   against the history as of that moment, and kept in a K-deep ring —
///   so a ratio never changes retroactively when the day rolls over;
/// * night slots (historical mean 0) and the warm-up period use the
///   neutral ratio η = 1;
/// * until one full day of history exists there is no `μ_D`, so the
///   predictor degenerates to persistence (`ê = ẽ(n)`). The paper's
///   protocol skips the first 20 days, so warm-up never affects reported
///   numbers.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::{Predictor, WcmaParams, WcmaPredictor};
///
/// let params = WcmaParams::new(0.7, 4, 2, 24)?;
/// let mut wcma = WcmaPredictor::new(params);
/// // Feed a few identical days of a toy profile.
/// let day: Vec<f64> = (0..24).map(|h| if (6..18).contains(&h) { 500.0 } else { 0.0 }).collect();
/// let mut last = 0.0;
/// for _ in 0..5 {
///     for &sample in &day {
///         last = wcma.observe_and_predict(sample);
///     }
/// }
/// // After identical days, midnight is predicted dark.
/// assert_eq!(last, wcma.last_terms().unwrap().persistence * 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WcmaPredictor {
    params: WcmaParams,
    history: DayHistory,
    /// Slot-start measurements of the current (incomplete) day.
    current: Vec<f64>,
    /// Next slot index to observe.
    cursor: usize,
    /// Last K η ratios, most recent first.
    ratios: VecDeque<f64>,
    /// How many of the ring entries belong to the current day.
    ratios_today: usize,
    /// The θ weight vector `(K − i) / K`, a pure function of (K): built
    /// once at construction instead of K divisions per slot.
    thetas: Vec<f64>,
    last_terms: Option<WcmaTerms>,
}

impl WcmaPredictor {
    /// Creates a WCMA predictor with the given parameters.
    pub fn new(params: WcmaParams) -> Self {
        WcmaPredictor {
            history: DayHistory::new(params.slots_per_day(), params.days()),
            current: vec![0.0; params.slots_per_day()],
            cursor: 0,
            ratios: VecDeque::with_capacity(params.k()),
            ratios_today: 0,
            thetas: theta_weights(params.k()),
            last_terms: None,
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &WcmaParams {
        &self.params
    }

    /// The intermediate terms of the most recent prediction, if any.
    pub fn last_terms(&self) -> Option<WcmaTerms> {
        self.last_terms
    }

    /// Number of complete days observed so far (saturating at D).
    pub fn days_observed(&self) -> usize {
        self.history.days_stored()
    }

    /// Computes `Φ_K` from the ratio ring. Entry `i` (most recent first)
    /// carries weight `θ(i) = (K − i) / K`; missing or out-of-policy
    /// entries are treated per the configured [`KWindowPolicy`].
    fn phi(&self) -> f64 {
        phi_over_ring(
            &self.thetas,
            &self.ratios,
            self.ratios_today,
            self.params.k_policy(),
        )
    }
}

/// The θ weight vector of Eq. 3 for a window of `k`: entry `i` (most
/// recent ratio first) is `(k − i) / k`.
pub(crate) fn theta_weights(k: usize) -> Vec<f64> {
    (0..k).map(|i| (k - i) as f64 / k as f64).collect()
}

/// The Φ computation shared by [`WcmaPredictor`] and the
/// [`CandidateBank`](crate::CandidateBank): a weighted mean over the
/// most recent `thetas.len()` ring entries, with `today` saying how many
/// ring entries belong to the current day (the clamp policy excludes
/// older ones). The ring may be deeper than the window — only the first
/// `thetas.len()` entries are read — which is what lets one ring serve
/// every K of a candidate bank.
pub(crate) fn phi_over_ring(
    thetas: &[f64],
    ratios: &VecDeque<f64>,
    today: usize,
    policy: KWindowPolicy,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &theta) in thetas.iter().enumerate() {
        let eta = match ratios.get(i) {
            Some(&r) => {
                if matches!(policy, KWindowPolicy::ClampRenormalize) && i >= today {
                    // Entry from before today's first slot: excluded,
                    // weights renormalized over the rest.
                    continue;
                }
                r
            }
            // Start of the run: neutral ratio, matching the ensemble
            // engine.
            None => match policy {
                KWindowPolicy::WrapPreviousDay => 1.0,
                KWindowPolicy::ClampRenormalize => continue,
            },
        };
        num += theta * eta;
        den += theta;
    }
    if den > 0.0 {
        num / den
    } else {
        1.0
    }
}

impl Predictor for WcmaPredictor {
    fn observe_and_predict(&mut self, measured: f64) -> f64 {
        let n = self.params.slots_per_day();
        let d = self.params.days();
        self.current[self.cursor] = measured;

        // Freeze this slot's η against the history as of now.
        let eta = conditioning_ratio(measured, self.history.mean(self.cursor, d));
        if self.ratios.len() == self.params.k() {
            self.ratios.pop_back();
        }
        self.ratios.push_front(eta);
        self.ratios_today = (self.ratios_today + 1).min(self.params.k());

        let phi = self.phi();

        // Identify the target slot; at the last slot of the day, today
        // becomes the most recent history row before predicting tomorrow's
        // first slot.
        let target = (self.cursor + 1) % n;
        if self.cursor + 1 == n {
            // The day buffer is pushed in place and reused — no per-day
            // allocation on the hot path.
            self.history.push_day(&self.current);
            self.current.fill(0.0);
            self.cursor = 0;
            self.ratios_today = 0;
        } else {
            self.cursor += 1;
        }

        match self.history.mean(target, d) {
            Some(mu_next) => {
                let alpha = self.params.alpha();
                let conditioned = mu_next * phi;
                self.last_terms = Some(WcmaTerms {
                    persistence: measured,
                    mu_next,
                    phi,
                    conditioned_average: conditioned,
                });
                alpha * measured + (1.0 - alpha) * conditioned
            }
            None => {
                // Warm-up: no history yet, fall back to persistence.
                self.last_terms = Some(WcmaTerms {
                    persistence: measured,
                    mu_next: measured,
                    phi: 1.0,
                    conditioned_average: measured,
                });
                measured
            }
        }
    }

    fn slots_per_day(&self) -> usize {
        self.params.slots_per_day()
    }

    fn reset(&mut self) {
        self.history.clear();
        self.current.fill(0.0);
        self.cursor = 0;
        self.ratios.clear();
        self.ratios_today = 0;
        self.last_terms = None;
    }

    fn name(&self) -> &str {
        "wcma"
    }

    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(alpha: f64, days: usize, k: usize, n: usize) -> WcmaParams {
        WcmaParams::new(alpha, days, k, n).unwrap()
    }

    /// Feeds `days` copies of `day` and returns predictions from the last
    /// fed day.
    fn run_days(predictor: &mut WcmaPredictor, day: &[f64], days: usize) -> Vec<f64> {
        let mut last = Vec::new();
        for _ in 0..days {
            last.clear();
            for &s in day {
                last.push(predictor.observe_and_predict(s));
            }
        }
        last
    }

    fn toy_day(n: usize) -> Vec<f64> {
        (0..n)
            .map(|s| {
                let x = (s as f64 / n as f64 - 0.5) * 6.0;
                (900.0 * (-x * x).exp() * 100.0).round() / 100.0
            })
            .collect()
    }

    #[test]
    fn alpha_one_is_pure_persistence() {
        let mut p = WcmaPredictor::new(params(1.0, 5, 2, 24));
        let day = toy_day(24);
        let preds = run_days(&mut p, &day, 4);
        for (s, &pred) in preds.iter().enumerate() {
            assert_eq!(pred, day[s], "slot {s}");
        }
    }

    #[test]
    fn alpha_zero_is_exact_on_periodic_days() {
        let mut p = WcmaPredictor::new(params(0.0, 5, 2, 24));
        let day = toy_day(24);
        let preds = run_days(&mut p, &day, 8);
        // Prediction emitted at slot s targets slot s+1 (wrapping).
        for (s, &pred) in preds.iter().enumerate() {
            let target = (s + 1) % 24;
            assert!(
                (pred - day[target]).abs() < 1e-9,
                "slot {s} -> {target}: {pred} vs {}",
                day[target]
            );
        }
    }

    #[test]
    fn warmup_first_day_is_persistence() {
        let mut p = WcmaPredictor::new(params(0.3, 5, 2, 24));
        let day = toy_day(24);
        for (s, &sample) in day.iter().enumerate().take(23) {
            let pred = p.observe_and_predict(sample);
            assert_eq!(pred, sample, "slot {s} during warm-up");
        }
    }

    #[test]
    fn brighter_day_scales_prediction_up() {
        // History: dim days. Current day: 50% brighter. Φ should push the
        // conditioned term above the historical mean.
        let n = 24;
        let dim = toy_day(n);
        let bright: Vec<f64> = dim.iter().map(|v| v * 1.5).collect();
        let mut p = WcmaPredictor::new(params(0.0, 5, 3, n));
        run_days(&mut p, &dim, 6);
        // Walk the bright day to noon.
        let mut pred_noon = 0.0;
        for &sample in bright.iter().take(n / 2 + 1) {
            pred_noon = p.observe_and_predict(sample);
        }
        let terms = p.last_terms().unwrap();
        assert!(
            terms.phi > 1.4 && terms.phi < 1.6,
            "phi {} should track the 1.5x brightening",
            terms.phi
        );
        let target = n / 2 + 1;
        let rel = (pred_noon - bright[target]).abs() / bright[target];
        assert!(rel < 0.05, "prediction {pred_noon} vs {}", bright[target]);
    }

    #[test]
    fn terms_compose_into_prediction() {
        let n = 24;
        let day = toy_day(n);
        let alpha = 0.6;
        let mut p = WcmaPredictor::new(params(alpha, 4, 2, n));
        let mut pred = 0.0;
        for _ in 0..3 {
            for &s in &day {
                pred = p.observe_and_predict(s);
            }
        }
        let t = p.last_terms().unwrap();
        let recomposed = alpha * t.persistence + (1.0 - alpha) * t.conditioned_average;
        assert!((pred - recomposed).abs() < 1e-12);
        assert!((t.conditioned_average - t.mu_next * t.phi).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state() {
        let n = 24;
        let day = toy_day(n);
        let mut p = WcmaPredictor::new(params(0.5, 4, 2, n));
        run_days(&mut p, &day, 3);
        p.reset();
        assert_eq!(p.days_observed(), 0);
        assert!(p.last_terms().is_none());
        // Behaves like a fresh predictor: warm-up persistence.
        assert_eq!(p.observe_and_predict(123.0), 123.0);
    }

    #[test]
    fn predictions_are_finite_and_nonnegative() {
        let n = 48;
        let mut p = WcmaPredictor::new(params(0.4, 10, 6, n));
        // Adversarial profile with zeros and spikes.
        for i in 0..(n * 30) {
            let v = match i % 7 {
                0 => 0.0,
                1 => 1200.0,
                _ => (i % 13) as f64 * 37.0,
            };
            let pred = p.observe_and_predict(v);
            assert!(pred.is_finite() && pred >= 0.0, "step {i}: {pred}");
        }
    }

    #[test]
    fn clamp_policy_matches_wrap_mid_day() {
        // Away from the day boundary the two policies see identical
        // windows, so predictions must agree.
        let n = 24;
        let day = toy_day(n);
        let base = params(0.5, 4, 3, n);
        let clamped = crate::params::WcmaParamsBuilder::new()
            .alpha(0.5)
            .days(4)
            .k(3)
            .slots_per_day(n)
            .k_policy(KWindowPolicy::ClampRenormalize)
            .build()
            .unwrap();
        let mut a = WcmaPredictor::new(base);
        let mut b = WcmaPredictor::new(clamped);
        for d in 0..4 {
            for (s, &v) in day.iter().enumerate() {
                let pa = a.observe_and_predict(v);
                let pb = b.observe_and_predict(v);
                if s >= 3 {
                    assert!((pa - pb).abs() < 1e-12, "day {d} slot {s}");
                }
            }
        }
    }

    #[test]
    fn phi_uses_weighted_recent_ratios() {
        // Hand-computed Φ: history of constant 100s, then a day starting
        // 120, 110 with K = 2: η ring = [1.1 (recent), 1.2], weights 1 and
        // 0.5 → Φ = (1·1.1 + 0.5·1.2) / 1.5.
        let n = 4;
        let mut p = WcmaPredictor::new(params(0.0, 3, 2, n));
        for _ in 0..3 {
            for _ in 0..n {
                p.observe_and_predict(100.0);
            }
        }
        p.observe_and_predict(120.0);
        let pred = p.observe_and_predict(110.0);
        let phi = (1.0 * 1.1 + 0.5 * 1.2) / 1.5;
        assert!((p.last_terms().unwrap().phi - phi).abs() < 1e-12);
        assert!((pred - 100.0 * phi).abs() < 1e-9);
    }

    #[test]
    fn name_is_wcma() {
        let p = WcmaPredictor::new(params(0.5, 4, 2, 24));
        assert_eq!(p.name(), "wcma");
        assert_eq!(p.slots_per_day(), 24);
    }
}
