//! Dynamic parameter selection (paper §IV-C).
//!
//! The paper shows that letting α and/or K vary *per prediction* — chosen
//! clairvoyantly to minimize each prediction's error — gains more than 10%
//! absolute MAPE at small N, and motivates future causal selection
//! algorithms.
//!
//! This module provides both halves:
//!
//! * [`ensemble_steps`] — one pass over a trace computing, for every
//!   prediction instant, the persistence term and the conditioned-average
//!   term for *every* K at once. Any (α, K) prediction is then one
//!   fused-multiply away ([`predict_from_step`]), which is what makes the
//!   clairvoyant tables (and the sweep engine) cheap.
//! * [`CausalDynamicWcma`] — a *causal* (deployable) selector that scores
//!   each (α, K) configuration by its recent prediction errors and uses
//!   the current best — the paper's suggested future work, implemented.

use crate::history::DayHistory;
use crate::predictor::Predictor;
use solar_trace::SlotView;

/// The per-prediction-instant data of the WCMA ensemble: everything
/// needed to form `ê(n+1)` for any (α, K) at a fixed D.
///
/// Index semantics match [`crate::run_predictor`]: the prediction made at
/// the boundary of slot `n` estimates slot `n` itself, so `(day, slot)`
/// name the just-entered slot, `actual_mean` is its mean power (Eq. 7
/// reference) and `actual_start` is the sample at the *next* boundary
/// (Eq. 6 reference).
#[derive(Clone, Debug, PartialEq)]
pub struct EnsembleStep {
    /// Day of the slot being estimated, 0-based.
    pub day: u32,
    /// Slot index within its day.
    pub slot: u32,
    /// The persistence input `ẽ(n)`.
    pub persistence: f64,
    /// `μ_D(n+1) · Φ_K` for `K = 1 ..= k_max` (index `K − 1`).
    pub cond: Vec<f64>,
    /// Sample at the next boundary (MAPE′ reference).
    pub actual_start: f64,
    /// Mean power of the slot (MAPE reference).
    pub actual_mean: f64,
}

/// Forms the WCMA prediction `α · persistence + (1 − α) · cond[k]` from a
/// step.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the step's `k_max`.
#[inline]
pub fn predict_from_step(step: &EnsembleStep, alpha: f64, k: usize) -> f64 {
    alpha * step.persistence + (1.0 - alpha) * step.cond[k - 1]
}

/// Runs the WCMA ensemble over a slotted trace at history depth `d`,
/// producing one [`EnsembleStep`] per prediction whose target slot lies
/// inside the trace.
///
/// The conditioned terms are computed incrementally over K via
///
/// ```text
/// S1(K) = S1(K−1) + r[K−1]           (plain ratio sum)
/// Sw(K) = Sw(K−1) + S1(K)            (weighted ratio sum)
/// Φ_K   = Sw(K) / (K (K + 1) / 2)
/// ```
///
/// where `r[i]` is the η ratio `i` slots before the current one — an
/// O(k_max) step instead of O(k_max²). Consistency with
/// [`WcmaPredictor`](crate::WcmaPredictor) (wrap-previous-day policy) is
/// guaranteed by test.
///
/// During warm-up (no stored day yet) the persistence value is used for
/// every term, matching the streaming predictor.
///
/// # Panics
///
/// Panics if `d == 0`, `k_max == 0` or `k_max >= view.slots_per_day()`.
pub fn ensemble_steps(view: &SlotView<'_>, d: usize, k_max: usize) -> Vec<EnsembleStep> {
    let n = view.slots_per_day();
    assert!(d >= 1, "d must be at least 1");
    assert!(k_max >= 1 && k_max < n, "k_max must be in [1, N)");
    let days = view.days();
    let mut history = DayHistory::new(n, d);
    let mut current = vec![0.0; n];
    // Ring of the last k_max η ratios, most recent first.
    let mut ratios = std::collections::VecDeque::with_capacity(k_max);
    let mut steps = Vec::with_capacity(days * n);

    for day in 0..days {
        for slot in 0..n {
            let measured = view.start_sample(day, slot);
            current[slot] = measured;

            // η for the just-observed slot.
            let eta = crate::wcma::conditioning_ratio(measured, history.mean(slot, d));
            if ratios.len() == k_max {
                ratios.pop_back();
            }
            ratios.push_front(eta);

            let (b_day, b_slot) = if slot + 1 == n {
                (day + 1, 0)
            } else {
                (day, slot + 1)
            };
            if slot + 1 == n {
                history.push_day(&current);
            }
            // Warm-up is judged after any rollover push, matching the
            // streaming predictor's post-push μ lookup.
            let warm = history.is_empty();
            if b_day >= days {
                continue; // the final slot has no closing boundary
            }

            let cond: Vec<f64> = if warm {
                vec![measured; k_max]
            } else {
                let mu_next = history
                    .mean(b_slot, d)
                    .expect("history non-empty after warm-up");
                let mut cond = Vec::with_capacity(k_max);
                let mut s1 = 0.0;
                let mut sw = 0.0;
                for k in 1..=k_max {
                    // Ratios older than what we have (very first slots of
                    // the run) count as neutral.
                    let r = ratios.get(k - 1).copied().unwrap_or(1.0);
                    s1 += r;
                    sw += s1;
                    let phi = sw / (k * (k + 1) / 2) as f64;
                    cond.push(mu_next * phi);
                }
                cond
            };

            steps.push(EnsembleStep {
                day: day as u32,
                slot: slot as u32,
                persistence: measured,
                cond,
                actual_start: view.start_sample(b_day, b_slot),
                actual_mean: view.mean_power(day, slot),
            });
        }
    }
    steps
}

/// A causal dynamic-parameter WCMA: scores every (α, K) configuration by
/// an exponentially discounted average of its recent absolute percentage
/// errors and predicts with the configuration currently scoring best.
///
/// Scoring reference: configurations are judged against the **realized
/// mean power of the elapsed slot**, approximated by the trapezoid of its
/// two boundary samples. Judging against the raw boundary sample instead
/// would re-introduce exactly the bias the paper's §III warns about —
/// the selector would chase MAPE′-optimal (low-α) configurations while
/// the management-relevant error is MAPE. A deployed node observes the
/// realized slot energy anyway (storage coulomb counting), so this
/// reference is causal.
///
/// Scoring region: only slots whose realized mean reaches 10% of the
/// running peak update the scores — the online counterpart of the
/// paper's §III region of interest. Without it, dawn/dusk ramp slots
/// (huge percentage errors, irrelevant to management) dominate the
/// discounted score and drag the selection toward the wrong
/// configuration.
///
/// This is the deployable counterpart of the paper's clairvoyant study:
/// it needs no future knowledge and costs `O(|α| · K_max)` per slot; the
/// `dynamic-causal` experiment measures how much of the clairvoyant gain
/// it captures.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::dynamic::CausalDynamicWcma;
/// use solar_predict::Predictor;
///
/// let mut p = CausalDynamicWcma::new(20, 6, vec![0.0, 0.5, 1.0], 0.85, 24)?;
/// let pred = p.observe_and_predict(100.0);
/// assert!(pred.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CausalDynamicWcma {
    d: usize,
    k_max: usize,
    alphas: Vec<f64>,
    score_decay: f64,
    slots_per_day: usize,
    history: DayHistory,
    current: Vec<f64>,
    cursor: usize,
    ratios: std::collections::VecDeque<f64>,
    /// Number of time-of-day buckets with independent scores.
    buckets: usize,
    /// Discounted error score per (bucket, configuration).
    scores: Vec<f64>,
    /// Last emitted prediction per configuration.
    last_preds: Vec<f64>,
    has_last: bool,
    /// The boundary sample observed when `last_preds` were formed, used
    /// to reconstruct the elapsed slot's trapezoid mean.
    prev_measured: f64,
    /// Running peak of realized slot means — the online region-of-
    /// interest reference.
    running_peak: f64,
    chosen: (usize, usize),
}

impl CausalDynamicWcma {
    /// Creates a causal dynamic selector.
    ///
    /// * `d` — history depth (fixed, like the paper's Table V).
    /// * `k_max` — configurations use `K = 1 ..= k_max`.
    /// * `alphas` — candidate α values.
    /// * `score_decay` — per-slot discount of past errors in `(0, 1)`;
    ///   higher means longer memory.
    ///
    /// Scores are kept per time-of-day bucket (see
    /// [`CausalDynamicWcma::with_buckets`]); this constructor uses six
    /// buckets, which lets morning, noon and evening converge to
    /// different configurations — the within-profile variation the
    /// paper's §IV-C observes.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParamError`] if any range is violated.
    pub fn new(
        d: usize,
        k_max: usize,
        alphas: Vec<f64>,
        score_decay: f64,
        slots_per_day: usize,
    ) -> Result<Self, crate::ParamError> {
        let buckets = 6.min(slots_per_day);
        Self::with_buckets(d, k_max, alphas, score_decay, slots_per_day, buckets)
    }

    /// Creates a causal dynamic selector with an explicit number of
    /// time-of-day score buckets (1 = a single global score table).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParamError`] if any range is violated
    /// (`buckets` must be in `[1, slots_per_day]`, reported as an invalid
    /// slot count).
    pub fn with_buckets(
        d: usize,
        k_max: usize,
        alphas: Vec<f64>,
        score_decay: f64,
        slots_per_day: usize,
        buckets: usize,
    ) -> Result<Self, crate::ParamError> {
        if buckets == 0 || buckets > slots_per_day {
            return Err(crate::ParamError::InvalidSlots {
                slots_per_day: buckets,
            });
        }
        if d == 0 {
            return Err(crate::ParamError::InvalidDays { days: d });
        }
        if slots_per_day < 2 {
            return Err(crate::ParamError::InvalidSlots { slots_per_day });
        }
        if k_max == 0 || k_max >= slots_per_day {
            return Err(crate::ParamError::InvalidK {
                k: k_max,
                slots_per_day,
            });
        }
        if alphas.is_empty()
            || alphas
                .iter()
                .any(|a| !a.is_finite() || !(0.0..=1.0).contains(a))
        {
            return Err(crate::ParamError::InvalidAlpha {
                alpha: alphas
                    .iter()
                    .copied()
                    .find(|a| !a.is_finite() || !(0.0..=1.0).contains(a))
                    .unwrap_or(f64::NAN),
            });
        }
        if !score_decay.is_finite() || !(0.0..1.0).contains(&score_decay) {
            return Err(crate::ParamError::InvalidGamma { gamma: score_decay });
        }
        let configs = alphas.len() * k_max;
        Ok(CausalDynamicWcma {
            d,
            k_max,
            alphas,
            score_decay,
            slots_per_day,
            history: DayHistory::new(slots_per_day, d),
            current: vec![0.0; slots_per_day],
            cursor: 0,
            ratios: std::collections::VecDeque::with_capacity(k_max),
            buckets,
            scores: vec![0.0; configs * buckets],
            last_preds: vec![0.0; configs],
            has_last: false,
            prev_measured: 0.0,
            running_peak: 0.0,
            chosen: (0, 0),
        })
    }

    /// The most recently chosen configuration as `(α, K)`.
    pub fn chosen(&self) -> (f64, usize) {
        (self.alphas[self.chosen.0], self.chosen.1 + 1)
    }

    /// The time-of-day bucket of a slot index.
    fn bucket_of(&self, slot: usize) -> usize {
        slot * self.buckets / self.slots_per_day
    }

    fn config_index(&self, alpha_idx: usize, k_idx: usize) -> usize {
        alpha_idx * self.k_max + k_idx
    }
}

impl Predictor for CausalDynamicWcma {
    fn observe_and_predict(&mut self, measured: f64) -> f64 {
        // 1. Score the previous round's predictions against the elapsed
        //    slot's realized mean (trapezoid of its boundary samples),
        //    inside the online region of interest only.
        if self.has_last {
            let slot_mean = 0.5 * (self.prev_measured + measured);
            self.running_peak = self.running_peak.max(slot_mean);
            if slot_mean >= 0.1 * self.running_peak && slot_mean > 0.0 {
                let elapsed_slot = (self.cursor + self.slots_per_day - 1) % self.slots_per_day;
                let base = self.bucket_of(elapsed_slot) * self.last_preds.len();
                for (idx, &pred) in self.last_preds.iter().enumerate() {
                    let pct = ((slot_mean - pred) / slot_mean).abs();
                    self.scores[base + idx] =
                        self.score_decay * self.scores[base + idx] + (1.0 - self.score_decay) * pct;
                }
            }
        }
        self.prev_measured = measured;

        // 2. Update ensemble state (mirrors `ensemble_steps`).
        let n = self.slots_per_day;
        self.current[self.cursor] = measured;
        let eta = crate::wcma::conditioning_ratio(measured, self.history.mean(self.cursor, self.d));
        if self.ratios.len() == self.k_max {
            self.ratios.pop_back();
        }
        self.ratios.push_front(eta);

        let target = (self.cursor + 1) % n;
        if self.cursor + 1 == n {
            let finished = std::mem::replace(&mut self.current, vec![0.0; n]);
            self.history.push_day(&finished);
            self.cursor = 0;
        } else {
            self.cursor += 1;
        }
        let warm = self.history.is_empty();

        // 3. Predictions for every configuration.
        let cond: Vec<f64> = if warm {
            vec![measured; self.k_max]
        } else {
            let mu_next = self
                .history
                .mean(target, self.d)
                .expect("history non-empty");
            let mut cond = Vec::with_capacity(self.k_max);
            let mut s1 = 0.0;
            let mut sw = 0.0;
            for k in 1..=self.k_max {
                let r = self.ratios.get(k - 1).copied().unwrap_or(1.0);
                s1 += r;
                sw += s1;
                cond.push(mu_next * sw / (k * (k + 1) / 2) as f64);
            }
            cond
        };
        for (ai, &alpha) in self.alphas.iter().enumerate() {
            for (ki, &c) in cond.iter().enumerate() {
                let idx = self.config_index(ai, ki);
                self.last_preds[idx] = alpha * measured + (1.0 - alpha) * c;
            }
        }
        self.has_last = true;

        // 4. Use the best-scoring configuration for the target slot's
        //    time-of-day bucket.
        let configs = self.last_preds.len();
        let base = self.bucket_of(target) * configs;
        let best = self.scores[base..base + configs]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.chosen = (best / self.k_max, best % self.k_max);
        self.last_preds[best]
    }

    fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    fn reset(&mut self) {
        self.history.clear();
        self.current.fill(0.0);
        self.cursor = 0;
        self.ratios.clear();
        self.scores.fill(0.0);
        self.last_preds.fill(0.0);
        self.has_last = false;
        self.prev_measured = 0.0;
        self.running_peak = 0.0;
        self.chosen = (0, 0);
    }

    fn name(&self) -> &str {
        "dynamic-causal"
    }

    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WcmaParams;
    use crate::runner::run_predictor;
    use crate::wcma::WcmaPredictor;
    use solar_trace::{PowerTrace, Resolution, SlotsPerDay};

    fn bumpy_trace(days: usize, n: usize) -> PowerTrace {
        // Deterministic pseudo-noisy solar-ish profile.
        let mut samples = Vec::with_capacity(days * n);
        for d in 0..days {
            for s in 0..n {
                let x = (s as f64 / n as f64 - 0.5) * 6.0;
                let base = 900.0 * (-x * x).exp();
                let wobble =
                    1.0 + 0.3 * ((d * 7 + s * 13) as f64).sin() * (base > 50.0) as u8 as f64;
                samples.push((base * wobble).max(0.0));
            }
        }
        PowerTrace::new(
            "bumpy",
            Resolution::from_seconds(86_400 / n as u32).unwrap(),
            samples,
        )
        .unwrap()
    }

    #[test]
    fn ensemble_matches_streaming_wcma_for_every_k_and_alpha() {
        let n = 24;
        let trace = bumpy_trace(12, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let d = 5;
        let k_max = 6;
        let steps = ensemble_steps(&view, d, k_max);
        for &alpha in &[0.0, 0.3, 0.7, 1.0] {
            for k in 1..=k_max {
                let params = WcmaParams::new(alpha, d, k, n).unwrap();
                let mut wcma = WcmaPredictor::new(params);
                let log = run_predictor(&view, &mut wcma);
                assert_eq!(log.len(), steps.len());
                for (rec, step) in log.records().iter().zip(&steps) {
                    assert_eq!((rec.day, rec.slot), (step.day, step.slot));
                    let ens = predict_from_step(step, alpha, k);
                    // Skip the very first slots where the streaming
                    // predictor's K window can reach before the run start.
                    if step.day == 0 && (step.slot as usize) < k {
                        continue;
                    }
                    assert!(
                        (rec.predicted - ens).abs() < 1e-9,
                        "alpha {alpha} K {k} d{} s{}: {} vs {}",
                        step.day,
                        step.slot,
                        rec.predicted,
                        ens
                    );
                }
            }
        }
    }

    #[test]
    fn ensemble_references_match_view() {
        let n = 24usize;
        let trace = bumpy_trace(4, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        for step in ensemble_steps(&view, 3, 2) {
            let (day, slot) = (step.day as usize, step.slot as usize);
            let (b_day, b_slot) = if slot + 1 == n {
                (day + 1, 0)
            } else {
                (day, slot + 1)
            };
            assert_eq!(step.actual_start, view.start_sample(b_day, b_slot));
            assert_eq!(step.actual_mean, view.mean_power(day, slot));
        }
    }

    #[test]
    fn clairvoyant_over_steps_beats_any_fixed_config() {
        let n = 24;
        let trace = bumpy_trace(30, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let steps = ensemble_steps(&view, 5, 6);
        let alphas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let roi = 90.0; // only meaningful slots
        let mut best_fixed = f64::INFINITY;
        for &alpha in &alphas {
            for k in 1..=6 {
                let mape: f64 = steps
                    .iter()
                    .filter(|s| s.actual_mean > roi)
                    .map(|s| {
                        ((s.actual_mean - predict_from_step(s, alpha, k)) / s.actual_mean).abs()
                    })
                    .sum::<f64>();
                best_fixed = best_fixed.min(mape);
            }
        }
        let clairvoyant: f64 = steps
            .iter()
            .filter(|s| s.actual_mean > roi)
            .map(|s| {
                alphas
                    .iter()
                    .flat_map(|&a| (1..=6).map(move |k| (a, k)))
                    .map(|(a, k)| {
                        ((s.actual_mean - predict_from_step(s, a, k)) / s.actual_mean).abs()
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!(
            clairvoyant <= best_fixed + 1e-9,
            "clairvoyant {clairvoyant} must not exceed best fixed {best_fixed}"
        );
    }

    #[test]
    fn causal_dynamic_is_valid_predictor() {
        let n = 24;
        let trace = bumpy_trace(20, n);
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let mut p = CausalDynamicWcma::new(5, 6, vec![0.0, 0.25, 0.5, 0.75, 1.0], 0.85, n).unwrap();
        let log = run_predictor(&view, &mut p);
        assert_eq!(log.len(), view.total_slots() - 1);
        for r in &log {
            assert!(r.predicted.is_finite() && r.predicted >= 0.0);
        }
        let (alpha, k) = p.chosen();
        assert!((0.0..=1.0).contains(&alpha));
        assert!((1..=6).contains(&k));
    }

    #[test]
    fn causal_dynamic_validates_inputs() {
        assert!(CausalDynamicWcma::new(0, 6, vec![0.5], 0.8, 24).is_err());
        assert!(CausalDynamicWcma::new(5, 0, vec![0.5], 0.8, 24).is_err());
        assert!(CausalDynamicWcma::new(5, 24, vec![0.5], 0.8, 24).is_err());
        assert!(CausalDynamicWcma::new(5, 6, vec![], 0.8, 24).is_err());
        assert!(CausalDynamicWcma::new(5, 6, vec![1.5], 0.8, 24).is_err());
        assert!(CausalDynamicWcma::new(5, 6, vec![0.5], 1.0, 24).is_err());
    }

    #[test]
    fn causal_dynamic_reset() {
        let mut p = CausalDynamicWcma::new(3, 2, vec![0.5], 0.8, 4).unwrap();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            p.observe_and_predict(v);
        }
        p.reset();
        assert_eq!(p.observe_and_predict(7.0), 7.0); // warm-up persistence
        assert_eq!(p.name(), "dynamic-causal");
    }
}
