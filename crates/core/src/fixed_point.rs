//! Q16.16 fixed-point WCMA kernel — what a deployed MSP430 actually runs.
//!
//! The paper measures the prediction algorithm's energy on an MSP430F1611,
//! a 16-bit MCU with no FPU: real deployments run either software floating
//! point (the paper's measured numbers) or fixed-point arithmetic. This
//! module provides a faithful Q16.16 kernel so that
//!
//! * the `msp430-energy` crate can cost both arithmetic styles, and
//! * the accuracy cost of quantization can be measured (the
//!   `fixedpoint` ablation experiment shows it is negligible next to the
//!   prediction error itself).

use crate::history::DayHistory;
use crate::params::WcmaParams;
use crate::predictor::Predictor;
use std::collections::VecDeque;

/// A Q16.16 fixed-point number (16 integer bits, 16 fractional bits),
/// with saturating arithmetic.
///
/// Range: ±32767.99998; resolution: ~1.5e-5. Solar irradiance in W/m²
/// (≤ ~1400) fits comfortably.
///
/// # Example
///
/// ```
/// use solar_predict::fixed_point::Q16;
///
/// let a = Q16::from_f64(1.5);
/// let b = Q16::from_f64(2.0);
/// assert_eq!((a * b).to_f64(), 3.0);
/// assert!(((b / a).to_f64() - 2.0 / 1.5).abs() < 1e-4);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16(i32);

impl Q16 {
    /// The value 0.
    pub const ZERO: Q16 = Q16(0);
    /// The value 1.
    pub const ONE: Q16 = Q16(1 << 16);
    /// Largest representable value.
    pub const MAX: Q16 = Q16(i32::MAX);
    /// Smallest representable value.
    pub const MIN: Q16 = Q16(i32::MIN);

    /// Converts from `f64`, saturating outside the representable range.
    pub fn from_f64(value: f64) -> Q16 {
        if value.is_nan() {
            return Q16::ZERO;
        }
        let scaled = value * 65536.0;
        if scaled >= i32::MAX as f64 {
            Q16::MAX
        } else if scaled <= i32::MIN as f64 {
            Q16::MIN
        } else {
            Q16(scaled.round() as i32)
        }
    }

    /// Converts an integer, saturating.
    pub fn from_int(value: i32) -> Q16 {
        Q16(value.saturating_mul(1 << 16))
    }

    /// The ratio `num / den` as Q16, saturating; `den == 0` yields
    /// [`Q16::ONE`] (the WCMA-neutral value).
    pub fn from_ratio(num: i32, den: i32) -> Q16 {
        if den == 0 {
            return Q16::ONE;
        }
        let raw = ((num as i64) << 16) / den as i64;
        Q16(raw.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 65536.0
    }

    /// The raw fixed-point bits.
    pub fn raw(self) -> i32 {
        self.0
    }

    /// Builds a value from raw fixed-point bits.
    pub fn from_raw(raw: i32) -> Q16 {
        Q16(raw)
    }

    /// Saturating multiplication.
    pub fn saturating_mul(self, rhs: Q16) -> Q16 {
        let wide = (self.0 as i64 * rhs.0 as i64) >> 16;
        Q16(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Saturating division; division by zero returns [`Q16::MAX`] (or
    /// `MIN` for a negative numerator) rather than panicking, mirroring
    /// what guarded MCU code does.
    pub fn saturating_div(self, rhs: Q16) -> Q16 {
        if rhs.0 == 0 {
            return if self.0 >= 0 { Q16::MAX } else { Q16::MIN };
        }
        let wide = ((self.0 as i64) << 16) / rhs.0 as i64;
        Q16(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// `true` if the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for Q16 {
    type Output = Q16;
    fn add(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub for Q16 {
    type Output = Q16;
    fn sub(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Mul for Q16 {
    type Output = Q16;
    fn mul(self, rhs: Q16) -> Q16 {
        self.saturating_mul(rhs)
    }
}

impl std::ops::Div for Q16 {
    type Output = Q16;
    fn div(self, rhs: Q16) -> Q16 {
        self.saturating_div(rhs)
    }
}

impl std::fmt::Display for Q16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

impl From<Q16> for f64 {
    fn from(value: Q16) -> f64 {
        value.to_f64()
    }
}

/// WCMA computed entirely in Q16.16 — bit-faithful to an MCU fixed-point
/// port, exposed through the same [`Predictor`] interface as the `f64`
/// version so the two can be compared record-for-record.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::fixed_point::FixedWcmaPredictor;
/// use solar_predict::{Predictor, WcmaParams};
///
/// let params = WcmaParams::new(0.7, 5, 2, 24)?;
/// let mut fixed = FixedWcmaPredictor::new(params);
/// let pred = fixed.observe_and_predict(640.0);
/// assert!((pred - 640.0).abs() < 0.01); // warm-up persistence
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FixedWcmaPredictor {
    params: WcmaParams,
    alpha: Q16,
    one_minus_alpha: Q16,
    history: DayHistory,
    current: Vec<f64>,
    /// Current-day values in fixed point (kept alongside `current` so the
    /// day can be pushed into the shared f64 history container — the
    /// quantization already happened on the way in).
    cursor: usize,
    ratios: VecDeque<Q16>,
}

impl FixedWcmaPredictor {
    /// Creates a fixed-point WCMA predictor. The α weight and every input
    /// sample are quantized to Q16.16 on entry.
    pub fn new(params: WcmaParams) -> Self {
        FixedWcmaPredictor {
            alpha: Q16::from_f64(params.alpha()),
            one_minus_alpha: Q16::from_f64(1.0 - params.alpha()),
            history: DayHistory::new(params.slots_per_day(), params.days()),
            current: vec![0.0; params.slots_per_day()],
            cursor: 0,
            ratios: VecDeque::with_capacity(params.k()),
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &WcmaParams {
        &self.params
    }

    /// Quantized mean of the target slot in Q16.
    fn mu_q(&self, slot: usize) -> Option<Q16> {
        self.history
            .mean(slot, self.params.days())
            .map(Q16::from_f64)
    }

    fn phi_q(&self) -> Q16 {
        let k_total = self.params.k();
        let mut num = Q16::ZERO;
        let mut den = Q16::ZERO;
        for i in 0..k_total {
            let theta = Q16::from_ratio((k_total - i) as i32, k_total as i32);
            let eta = self.ratios.get(i).copied().unwrap_or(Q16::ONE);
            num = num + theta * eta;
            den = den + theta;
        }
        if den.is_zero() {
            Q16::ONE
        } else {
            num / den
        }
    }
}

impl Predictor for FixedWcmaPredictor {
    fn observe_and_predict(&mut self, measured: f64) -> f64 {
        let n = self.params.slots_per_day();
        let measured_q = Q16::from_f64(measured);
        // Store the quantized value so history means reflect what the MCU
        // would hold.
        self.current[self.cursor] = measured_q.to_f64();

        let eta = match self.mu_q(self.cursor) {
            Some(mu) if !mu.is_zero() => {
                let cap = Q16::from_f64(crate::wcma::MAX_CONDITIONING_RATIO);
                (measured_q / mu).min(cap)
            }
            _ => Q16::ONE,
        };
        if self.ratios.len() == self.params.k() {
            self.ratios.pop_back();
        }
        self.ratios.push_front(eta);

        let phi = self.phi_q();

        let target = (self.cursor + 1) % n;
        if self.cursor + 1 == n {
            let finished = std::mem::replace(&mut self.current, vec![0.0; n]);
            self.history.push_day(&finished);
            self.cursor = 0;
        } else {
            self.cursor += 1;
        }

        match self.mu_q(target) {
            Some(mu_next) => {
                let conditioned = mu_next * phi;
                let pred = self.alpha * measured_q + self.one_minus_alpha * conditioned;
                pred.to_f64().max(0.0)
            }
            None => measured_q.to_f64(),
        }
    }

    fn slots_per_day(&self) -> usize {
        self.params.slots_per_day()
    }

    fn reset(&mut self) {
        self.history.clear();
        self.current.fill(0.0);
        self.cursor = 0;
        self.ratios.clear();
    }

    fn name(&self) -> &str {
        "wcma-q16"
    }

    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_predictor;
    use crate::wcma::WcmaPredictor;
    use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

    #[test]
    fn q16_round_trips_representable_values() {
        for v in [0.0, 1.0, -1.0, 0.5, 1023.25, -512.75, 32767.0] {
            assert!((Q16::from_f64(v).to_f64() - v).abs() < 1.0 / 65536.0, "{v}");
        }
    }

    #[test]
    fn q16_saturates() {
        assert_eq!(Q16::from_f64(1e9), Q16::MAX);
        assert_eq!(Q16::from_f64(-1e9), Q16::MIN);
        assert_eq!(Q16::MAX + Q16::ONE, Q16::MAX);
        assert_eq!(Q16::from_f64(30000.0) * Q16::from_f64(30000.0), Q16::MAX);
        assert_eq!(Q16::from_f64(f64::NAN), Q16::ZERO);
    }

    #[test]
    fn q16_arithmetic_basics() {
        let a = Q16::from_f64(3.0);
        let b = Q16::from_f64(1.5);
        assert_eq!((a * b).to_f64(), 4.5);
        assert_eq!((a / b).to_f64(), 2.0);
        assert_eq!((a - b).to_f64(), 1.5);
        assert_eq!((a + b).to_f64(), 4.5);
    }

    #[test]
    fn q16_division_by_zero_saturates() {
        assert_eq!(Q16::ONE / Q16::ZERO, Q16::MAX);
        assert_eq!(Q16::from_f64(-1.0) / Q16::ZERO, Q16::MIN);
        assert_eq!(Q16::from_ratio(1, 0), Q16::ONE);
    }

    #[test]
    fn q16_from_ratio_matches_float() {
        for (n, d) in [(1, 2), (2, 3), (5, 6), (6, 6)] {
            let q = Q16::from_ratio(n, d).to_f64();
            assert!((q - n as f64 / d as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn fixed_wcma_tracks_float_wcma_closely() {
        // A noisy but deterministic solar-like trace.
        let n = 24usize;
        let days = 15usize;
        let mut samples = Vec::new();
        for d in 0..days {
            for s in 0..n {
                let x = (s as f64 / n as f64 - 0.5) * 6.0;
                let base = 900.0 * (-x * x).exp();
                let wob = 1.0 + 0.25 * (((d * 5 + s * 3) % 17) as f64 / 17.0 - 0.5);
                samples.push((base * wob).max(0.0));
            }
        }
        let trace = PowerTrace::new(
            "fx",
            Resolution::from_seconds(86_400 / n as u32).unwrap(),
            samples,
        )
        .unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let params = WcmaParams::new(0.7, 5, 3, n).unwrap();
        let float_log = run_predictor(&view, &mut WcmaPredictor::new(params));
        let fixed_log = run_predictor(&view, &mut FixedWcmaPredictor::new(params));
        assert_eq!(float_log.len(), fixed_log.len());
        for (f, q) in float_log.records().iter().zip(fixed_log.records()) {
            // Absolute tolerance scales with magnitude; Q16.16 resolution
            // on ~1000 W/m² values with a handful of ops stays well under
            // 0.5 W/m².
            assert!(
                (f.predicted - q.predicted).abs() < 0.5,
                "d{} s{}: float {} vs fixed {}",
                f.day,
                f.slot,
                f.predicted,
                q.predicted
            );
        }
    }

    #[test]
    fn fixed_wcma_is_a_predictor() {
        let params = WcmaParams::new(0.5, 3, 2, 24).unwrap();
        let mut p = FixedWcmaPredictor::new(params);
        assert_eq!(p.name(), "wcma-q16");
        assert_eq!(p.slots_per_day(), 24);
        let pred = p.observe_and_predict(100.0);
        assert!((pred - 100.0).abs() < 0.01);
        p.reset();
        let pred = p.observe_and_predict(50.0);
        assert!((pred - 50.0).abs() < 0.01);
    }

    #[test]
    fn display_and_raw_round_trip() {
        let q = Q16::from_f64(1.25);
        assert_eq!(Q16::from_raw(q.raw()), q);
        assert_eq!(q.to_string(), "1.25000");
        assert_eq!(f64::from(q), 1.25);
    }
}
