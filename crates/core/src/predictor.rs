//! The streaming predictor abstraction.

/// A streaming slot-power predictor.
///
/// A predictor is driven once per slot, in time order: at the start of
/// slot `n` the harvested-power sample `ẽ(n)` is measured and passed to
/// [`observe_and_predict`](Predictor::observe_and_predict), which returns
/// the prediction `ê(n+1)` for the next slot. Day boundaries are tracked
/// internally from the configured slots-per-day, exactly like a deployed
/// firmware loop driven by a sampling timer (the paper's Fig. 5).
///
/// The trait is object-safe so heterogeneous predictor sets can be
/// benchmarked side by side (`Vec<Box<dyn Predictor>>`).
pub trait Predictor {
    /// Records the measured slot-start power of the current slot and
    /// returns the prediction for the next slot.
    ///
    /// Implementations must accept any finite non-negative `measured`
    /// value and must return a finite value.
    fn observe_and_predict(&mut self, measured: f64) -> f64;

    /// The day discretization `N` this predictor is configured for.
    fn slots_per_day(&self) -> usize;

    /// Resets all internal state to the just-constructed condition.
    fn reset(&mut self);

    /// A short human-readable name for reports ("wcma", "ewma", …).
    fn name(&self) -> &str;

    /// A boxed deep copy of the predictor's current state — the
    /// predictor half of a day-boundary checkpoint (see
    /// [`crate::runner::DayCheckpoint`]). The default returns `None`
    /// so external implementations stay source-compatible and
    /// object-safe without opting in; every predictor in this crate
    /// returns `Some`. A checkpoint/resume flow that receives `None`
    /// must fall back to replaying from the start. The snapshot is
    /// `Send + Sync` so checkpoints can cross worker threads (the
    /// fleet engine captures them inside its parallel units).
    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must remain object-safe.
    #[test]
    fn predictor_is_object_safe() {
        struct Echo;
        impl Predictor for Echo {
            fn observe_and_predict(&mut self, measured: f64) -> f64 {
                measured
            }
            fn slots_per_day(&self) -> usize {
                48
            }
            fn reset(&mut self) {}
            fn name(&self) -> &str {
                "echo"
            }
        }
        let mut boxed: Box<dyn Predictor> = Box::new(Echo);
        assert_eq!(boxed.observe_and_predict(3.0), 3.0);
        assert_eq!(boxed.slots_per_day(), 48);
        assert_eq!(boxed.name(), "echo");
    }
}
