//! Batched WCMA kernel evaluation: every tuner grid point over **one**
//! observation pass.
//!
//! A parameter search scores dozens of (α, D, K) candidates against the
//! same observed slot stream. Run solo, each candidate re-derives the
//! same `E_{D×N}` history, the same `μ_D` column means and the same η
//! ratios from scratch — `candidate_count()` full passes over the
//! trace. The [`CandidateBank`] folds them into one pass by sharing
//! everything that is a pure function of the observations:
//!
//! * one day buffer and one [`DayHistory`](crate::DayHistory) sized to the deepest D;
//! * one prefix-sum column walk per slot serving every distinct D
//!   (`μ_d = prefix[d−1] / d`, the same additions in the same order as
//!   a solo `mean`);
//! * one η ring per distinct D (η depends only on D), deep enough for
//!   the largest K that conditions on it;
//! * one Φ per distinct (D, K, policy), shared by every α.
//!
//! **Per-candidate arithmetic is unchanged**: each prediction is
//! composed from the identical intermediate values a solo
//! [`WcmaPredictor`](crate::WcmaPredictor) computes, in the identical floating-point order,
//! so every candidate's prediction stream is bit-identical to its solo
//! run (property-tested). Per-slot cost drops from
//! `Σ_candidates O(D + K)` to `O(max D + Σ distinct (D,K))` plus one
//! multiply-add per candidate.

use crate::error::ParamError;
use crate::history::DayHistory;
use crate::params::{KWindowPolicy, WcmaParams};
use crate::wcma::{conditioning_ratio, phi_over_ring, theta_weights};
use std::collections::VecDeque;

/// One Φ window shape within a D group: a distinct (K, policy) pair and
/// its precomputed θ weights. `phi` is per-slot scratch.
#[derive(Clone, Debug)]
struct KSlot {
    k: usize,
    policy: KWindowPolicy,
    thetas: Vec<f64>,
    phi: f64,
}

/// The shared state of every candidate with one history depth D.
#[derive(Clone, Debug)]
struct DGroup {
    days: usize,
    /// Ring depth: the largest K conditioning on this D.
    ring_cap: usize,
    /// Last `ring_cap` η ratios, most recent first (η depends only on D).
    ratios: VecDeque<f64>,
    /// Ring entries belonging to the current day, saturated at the ring
    /// depth — the clamp policy's renormalization boundary.
    today: usize,
    k_slots: Vec<KSlot>,
}

/// A registered candidate: its α plus indices into the shared state.
#[derive(Clone, Debug)]
struct Candidate {
    alpha: f64,
    group: usize,
    k_slot: usize,
}

/// Evaluates many WCMA parameterizations over a single slot stream,
/// bit-identically to running each [`WcmaPredictor`](crate::WcmaPredictor) solo.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::{CandidateBank, Predictor, WcmaParams, WcmaPredictor};
///
/// let grid = vec![
///     WcmaParams::new(0.3, 5, 2, 24)?,
///     WcmaParams::new(0.7, 10, 3, 24)?,
/// ];
/// let mut bank = CandidateBank::new(grid.clone())?;
/// let mut solo: Vec<WcmaPredictor> = grid.into_iter().map(WcmaPredictor::new).collect();
/// for step in 0..100 {
///     let measured = (step % 24) as f64 * 10.0;
///     let banked = bank.observe_and_predict(measured).to_vec();
///     for (candidate, predictor) in banked.iter().zip(&mut solo) {
///         assert_eq!(candidate.to_bits(), predictor.observe_and_predict(measured).to_bits());
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CandidateBank {
    slots_per_day: usize,
    max_days: usize,
    history: DayHistory,
    /// Slot-start measurements of the current (incomplete) day.
    current: Vec<f64>,
    cursor: usize,
    groups: Vec<DGroup>,
    candidates: Vec<Candidate>,
    /// Per-candidate output of the latest slot, in registration order.
    predictions: Vec<f64>,
    /// Prefix-sum scratch for the shared column walks.
    prefix: Vec<f64>,
}

impl CandidateBank {
    /// Builds a bank over `candidates` (evaluated in input order by
    /// [`CandidateBank::observe_and_predict`]).
    ///
    /// # Errors
    ///
    /// * [`ParamError::EmptyBank`] for an empty candidate list.
    /// * [`ParamError::MixedBankSlots`] unless every candidate shares
    ///   one discretization N.
    pub fn new(candidates: Vec<WcmaParams>) -> Result<Self, ParamError> {
        let Some(first) = candidates.first() else {
            return Err(ParamError::EmptyBank);
        };
        let slots_per_day = first.slots_per_day();
        let mut groups: Vec<DGroup> = Vec::new();
        let mut registered = Vec::with_capacity(candidates.len());
        for params in &candidates {
            if params.slots_per_day() != slots_per_day {
                return Err(ParamError::MixedBankSlots {
                    expected: slots_per_day,
                    got: params.slots_per_day(),
                });
            }
            let group = match groups.iter().position(|g| g.days == params.days()) {
                Some(idx) => idx,
                None => {
                    groups.push(DGroup {
                        days: params.days(),
                        ring_cap: 0,
                        ratios: VecDeque::new(),
                        today: 0,
                        k_slots: Vec::new(),
                    });
                    groups.len() - 1
                }
            };
            let slots = &mut groups[group].k_slots;
            let k_slot = match slots
                .iter()
                .position(|s| s.k == params.k() && s.policy == params.k_policy())
            {
                Some(idx) => idx,
                None => {
                    slots.push(KSlot {
                        k: params.k(),
                        policy: params.k_policy(),
                        thetas: theta_weights(params.k()),
                        phi: 1.0,
                    });
                    slots.len() - 1
                }
            };
            registered.push(Candidate {
                alpha: params.alpha(),
                group,
                k_slot,
            });
        }
        for group in &mut groups {
            group.ring_cap = group.k_slots.iter().map(|s| s.k).max().expect("non-empty");
            group.ratios.reserve(group.ring_cap);
        }
        let max_days = groups.iter().map(|g| g.days).max().expect("non-empty");
        Ok(CandidateBank {
            slots_per_day,
            max_days,
            history: DayHistory::new(slots_per_day, max_days),
            current: vec![0.0; slots_per_day],
            cursor: 0,
            groups,
            predictions: vec![0.0; candidates.len()],
            prefix: Vec::with_capacity(max_days),
            candidates: registered,
        })
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when the bank holds no candidates (unreachable through
    /// [`CandidateBank::new`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The shared discretization N.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// Observes one slot-boundary measurement and returns every
    /// candidate's prediction for the next slot, in registration order.
    /// Each entry is bit-identical to what a solo
    /// [`observe_and_predict`](crate::Predictor::observe_and_predict)
    /// with those parameters returns for the same measurement sequence.
    pub fn observe_and_predict(&mut self, measured: f64) -> &[f64] {
        let n = self.slots_per_day;
        self.current[self.cursor] = measured;

        // Freeze every group's η against the history as of now, and
        // every (D, K) window's Φ — one column walk serves all D.
        let written = self
            .history
            .prefix_sums(self.cursor, self.max_days, &mut self.prefix);
        for group in &mut self.groups {
            let take = group.days.min(written);
            let mu = (take > 0).then(|| self.prefix[take - 1] / take as f64);
            let eta = conditioning_ratio(measured, mu);
            if group.ratios.len() == group.ring_cap {
                group.ratios.pop_back();
            }
            group.ratios.push_front(eta);
            group.today = (group.today + 1).min(group.ring_cap);
            for k_slot in &mut group.k_slots {
                k_slot.phi =
                    phi_over_ring(&k_slot.thetas, &group.ratios, group.today, k_slot.policy);
            }
        }

        // Day rollover before looking up tomorrow's slot mean — the
        // same ordering as the solo predictor.
        let target = (self.cursor + 1) % n;
        if self.cursor + 1 == n {
            self.history.push_day(&self.current);
            self.current.fill(0.0);
            self.cursor = 0;
            for group in &mut self.groups {
                group.today = 0;
            }
        } else {
            self.cursor += 1;
        }

        // μ_D(target) per distinct D from one more column walk, then a
        // multiply-add per candidate.
        let written = self
            .history
            .prefix_sums(target, self.max_days, &mut self.prefix);
        for (candidate, prediction) in self.candidates.iter().zip(&mut self.predictions) {
            let group = &self.groups[candidate.group];
            let take = group.days.min(written);
            *prediction = if take > 0 {
                let mu_next = self.prefix[take - 1] / take as f64;
                let phi = group.k_slots[candidate.k_slot].phi;
                candidate.alpha * measured + (1.0 - candidate.alpha) * (mu_next * phi)
            } else {
                // Warm-up: no history yet, persistence — as solo.
                measured
            };
        }
        &self.predictions
    }

    /// Restores the bank to its freshly constructed state.
    pub fn reset(&mut self) {
        self.history.clear();
        self.current.fill(0.0);
        self.cursor = 0;
        for group in &mut self.groups {
            group.ratios.clear();
            group.today = 0;
            for k_slot in &mut group.k_slots {
                k_slot.phi = 1.0;
            }
        }
        self.predictions.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WcmaParamsBuilder;
    use crate::predictor::Predictor;
    use crate::wcma::WcmaPredictor;

    fn grid(n: usize) -> Vec<WcmaParams> {
        let mut params = Vec::new();
        for &alpha in &[0.0, 0.3, 0.7, 1.0] {
            for &days in &[1usize, 3, 10] {
                for &k in &[1usize, 2, 5] {
                    params.push(WcmaParams::new(alpha, days, k, n).unwrap());
                }
            }
        }
        params
    }

    /// A deterministic pseudo-trace with zeros, spikes and a diurnal
    /// bump — adversarial for warm-up, night slots and the dawn guard.
    fn sample(step: usize, n: usize) -> f64 {
        let slot = step % n;
        let x = (slot as f64 / n as f64 - 0.5) * 6.0;
        let diurnal = 900.0 * (-x * x).exp();
        match step % 11 {
            0 => 0.0,
            1 => diurnal * 3.0,
            _ => diurnal * (0.5 + ((step * 7919) % 97) as f64 / 97.0),
        }
    }

    #[test]
    fn bank_matches_solo_predictors_bit_for_bit() {
        let n = 24;
        let params = grid(n);
        let mut bank = CandidateBank::new(params.clone()).unwrap();
        let mut solos: Vec<WcmaPredictor> = params.into_iter().map(WcmaPredictor::new).collect();
        for step in 0..(n * 30) {
            let measured = sample(step, n);
            let banked = bank.observe_and_predict(measured).to_vec();
            for (idx, solo) in solos.iter_mut().enumerate() {
                let expected = solo.observe_and_predict(measured);
                assert_eq!(
                    banked[idx].to_bits(),
                    expected.to_bits(),
                    "step {step}, candidate {idx}: {} vs {expected}",
                    banked[idx]
                );
            }
        }
    }

    #[test]
    fn clamp_policy_candidates_match_solo() {
        let n = 12;
        let params: Vec<WcmaParams> = [(0.4, 3, 2), (0.9, 5, 4)]
            .iter()
            .map(|&(alpha, days, k)| {
                WcmaParamsBuilder::new()
                    .alpha(alpha)
                    .days(days)
                    .k(k)
                    .slots_per_day(n)
                    .k_policy(KWindowPolicy::ClampRenormalize)
                    .build()
                    .unwrap()
            })
            .collect();
        let mut bank = CandidateBank::new(params.clone()).unwrap();
        let mut solos: Vec<WcmaPredictor> = params.into_iter().map(WcmaPredictor::new).collect();
        for step in 0..(n * 9) {
            let measured = sample(step, n);
            let banked = bank.observe_and_predict(measured).to_vec();
            for (idx, solo) in solos.iter_mut().enumerate() {
                assert_eq!(
                    banked[idx].to_bits(),
                    solo.observe_and_predict(measured).to_bits(),
                    "step {step}, candidate {idx}"
                );
            }
        }
    }

    #[test]
    fn duplicate_candidates_agree_with_each_other() {
        let n = 24;
        let p = WcmaParams::new(0.6, 4, 2, n).unwrap();
        let mut bank = CandidateBank::new(vec![p, p]).unwrap();
        for step in 0..(n * 5) {
            let preds = bank.observe_and_predict(sample(step, n));
            assert_eq!(preds[0].to_bits(), preds[1].to_bits());
        }
    }

    #[test]
    fn reset_restores_fresh_behaviour() {
        let n = 24;
        let params = vec![WcmaParams::new(0.5, 3, 2, n).unwrap()];
        let mut bank = CandidateBank::new(params.clone()).unwrap();
        let fresh: Vec<f64> = (0..n * 4)
            .map(|step| bank.observe_and_predict(sample(step, n))[0])
            .collect();
        bank.reset();
        for (step, &expected) in fresh.iter().enumerate() {
            let again = bank.observe_and_predict(sample(step, n))[0];
            assert_eq!(again.to_bits(), expected.to_bits(), "step {step}");
        }
    }

    #[test]
    fn invalid_banks_are_rejected() {
        assert!(matches!(
            CandidateBank::new(vec![]),
            Err(ParamError::EmptyBank)
        ));
        let mixed = vec![
            WcmaParams::new(0.5, 3, 2, 24).unwrap(),
            WcmaParams::new(0.5, 3, 2, 48).unwrap(),
        ];
        assert!(matches!(
            CandidateBank::new(mixed),
            Err(ParamError::MixedBankSlots {
                expected: 24,
                got: 48
            })
        ));
    }

    #[test]
    fn accessors_report_the_configuration() {
        let bank = CandidateBank::new(grid(48)).unwrap();
        assert_eq!(bank.len(), 36);
        assert!(!bank.is_empty());
        assert_eq!(bank.slots_per_day(), 48);
    }
}
