//! Parameter-validation errors.

use std::fmt;

/// Errors from constructing predictor parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParamError {
    /// α must be a finite value in `[0, 1]`.
    InvalidAlpha {
        /// Offending value.
        alpha: f64,
    },
    /// D must be at least 1.
    InvalidDays {
        /// Offending value.
        days: usize,
    },
    /// K must be at least 1 and smaller than the slots per day.
    InvalidK {
        /// Offending value.
        k: usize,
        /// Slots per day it was validated against.
        slots_per_day: usize,
    },
    /// Slots per day must be at least 2.
    InvalidSlots {
        /// Offending value.
        slots_per_day: usize,
    },
    /// The smoothing factor γ must be a finite value in `(0, 1]`.
    InvalidGamma {
        /// Offending value.
        gamma: f64,
    },
    /// A candidate bank needs at least one candidate.
    EmptyBank,
    /// Every candidate in a bank must share one discretization N.
    MixedBankSlots {
        /// The bank's discretization (from its first candidate).
        expected: usize,
        /// The mismatched candidate's discretization.
        got: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::InvalidAlpha { alpha } => {
                write!(f, "alpha {alpha} must be a finite value in [0, 1]")
            }
            ParamError::InvalidDays { days } => {
                write!(f, "days D={days} must be at least 1")
            }
            ParamError::InvalidK { k, slots_per_day } => {
                write!(f, "k={k} must be in [1, {slots_per_day})")
            }
            ParamError::InvalidSlots { slots_per_day } => {
                write!(f, "slots per day {slots_per_day} must be at least 2")
            }
            ParamError::InvalidGamma { gamma } => {
                write!(f, "gamma {gamma} must be a finite value in (0, 1]")
            }
            ParamError::EmptyBank => {
                write!(f, "candidate bank needs at least one candidate")
            }
            ParamError::MixedBankSlots { expected, got } => {
                write!(
                    f,
                    "bank candidates must share one discretization (N={expected}, got N={got})"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases = [
            ParamError::InvalidAlpha { alpha: 2.0 },
            ParamError::InvalidDays { days: 0 },
            ParamError::InvalidK {
                k: 48,
                slots_per_day: 48,
            },
            ParamError::InvalidSlots { slots_per_day: 1 },
            ParamError::InvalidGamma { gamma: 0.0 },
            ParamError::EmptyBank,
            ParamError::MixedBankSlots {
                expected: 48,
                got: 24,
            },
        ];
        for err in cases {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParamError>();
    }
}
