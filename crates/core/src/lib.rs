//! Solar harvested-energy predictors — the primary contribution of the
//! DATE'10 paper reproduction.
//!
//! The centrepiece is the **WCMA predictor** of Recas et al. (VITAE'09),
//! the algorithm the paper evaluates (its Eq. 1–5):
//!
//! ```text
//! ê(n+1) = α · ẽ(n) + (1 − α) · μ_D(n+1) · Φ_K
//! ```
//!
//! where `ẽ(n)` is the just-measured slot power (*persistence term*),
//! `μ_D(n+1)` the mean of the next slot over the last `D` days, and `Φ_K`
//! a *conditioning factor* comparing the current day's last `K` slots to
//! their historical means — "how much brighter or cloudier today is".
//!
//! Everything a harvested-energy manager or an evaluation study needs is
//! here:
//!
//! * [`WcmaPredictor`] — the algorithm, with exposed intermediate terms.
//! * [`EwmaPredictor`] — the Kansal et al. (TECS'07) baseline.
//! * [`PersistencePredictor`], [`MovingAveragePredictor`] — degenerate
//!   baselines (the α = 1 and α = 0, Φ ≡ 1 corners of WCMA).
//! * [`dynamic`] — the machinery behind the paper's §IV-C dynamic
//!   parameter selection: per-step prediction ensembles over (α, K), plus
//!   a *causal* dynamic selector extending the paper's clairvoyant study.
//! * [`FixedWcmaPredictor`] — a Q16.16
//!   fixed-point kernel mirroring what an MSP430 would actually run.
//! * [`run_predictor`] — drives any predictor over a
//!   [`solar_trace::SlotView`] and produces a
//!   [`pred_metrics::PredictionLog`].
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
//! use solar_trace::{PowerTrace, Resolution, SlotsPerDay, SlotView};
//! use pred_metrics::EvalProtocol;
//!
//! // With one sample per slot (the paper's N = 288 rows on 5-minute
//! // data), the slot mean equals the boundary sample, so pure
//! // persistence (α = 1) reaches MAPE = 0 — Table III's 0† entries.
//! let day: Vec<f64> = (0..48).map(|s| ((s as f64 - 24.0) / 10.0).cosh().recip() * 900.0).collect();
//! let samples: Vec<f64> = (0..30).flat_map(|_| day.clone()).collect();
//! let trace = PowerTrace::new("periodic", Resolution::from_minutes(30)?, samples)?;
//! let view = SlotView::new(&trace, SlotsPerDay::new(48)?)?;
//!
//! let params = WcmaParams::new(1.0, 5, 2, 48)?;
//! let mut predictor = WcmaPredictor::new(params);
//! let log = run_predictor(&view, &mut predictor);
//! let summary = EvalProtocol::new(0.10, 10).evaluate(&log);
//! assert!(summary.mape < 1e-12);
//! # Ok(())
//! # }
//! ```

mod bank;
mod baseline;
pub mod dynamic;
mod error;
mod ewma;
pub mod fixed_point;
mod history;
mod params;
mod predictor;
mod runner;
mod wcma;

pub use bank::CandidateBank;
pub use baseline::{MovingAveragePredictor, PersistencePredictor};
pub use dynamic::CausalDynamicWcma;
pub use error::ParamError;
pub use ewma::EwmaPredictor;
pub use fixed_point::FixedWcmaPredictor;
pub use history::DayHistory;
pub use params::{KWindowPolicy, WcmaParams, WcmaParamsBuilder};
pub use predictor::Predictor;
pub use runner::{
    run_predictor, run_predictor_observed, DayCheckpoint, PredictionFeed, StreamedPredictorRun,
};
pub use wcma::{conditioning_ratio, WcmaPredictor, WcmaTerms, MAX_CONDITIONING_RATIO};
