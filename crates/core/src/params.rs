//! WCMA parameters (α, D, K) with the paper's exploration ranges.

use crate::error::ParamError;

/// How the Φ ratio window behaves at the start of a day, when fewer than
/// `K` slots of the current day have elapsed.
///
/// The paper defines `K` as "the number of slots considered before slot
/// (n+1) of the current day" without pinning the day-start corner case;
/// both sensible readings are provided and an ablation experiment shows
/// the choice is immaterial inside the region of interest (night slots
/// surround midnight).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum KWindowPolicy {
    /// Ratios for slots before the first slot of today come from the most
    /// recent stored day (the window wraps across midnight).
    #[default]
    WrapPreviousDay,
    /// Only elapsed slots of today enter the window; the θ weights are
    /// renormalized over the available ratios. With no elapsed slots,
    /// Φ = 1.
    ClampRenormalize,
}

/// Validated parameters of the WCMA predictor.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::WcmaParams;
///
/// let params = WcmaParams::new(0.7, 20, 3, 48)?;
/// assert_eq!(params.alpha(), 0.7);
/// assert_eq!(params.days(), 20);
/// assert_eq!(params.k(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WcmaParams {
    alpha: f64,
    days: usize,
    k: usize,
    slots_per_day: usize,
    k_policy: KWindowPolicy,
}

impl WcmaParams {
    /// The paper's α grid: 0.0, 0.1, …, 1.0.
    pub fn paper_alpha_grid() -> Vec<f64> {
        (0..=10).map(|i| i as f64 / 10.0).collect()
    }

    /// The paper's D range: 2 ..= 20.
    pub const PAPER_DAYS: std::ops::RangeInclusive<usize> = 2..=20;

    /// The paper's K range: 1 ..= 6.
    pub const PAPER_K: std::ops::RangeInclusive<usize> = 1..=6;

    /// Creates parameters, validating every field.
    ///
    /// # Errors
    ///
    /// * [`ParamError::InvalidAlpha`] unless `0 ≤ α ≤ 1` and finite.
    /// * [`ParamError::InvalidDays`] unless `D ≥ 1`.
    /// * [`ParamError::InvalidSlots`] unless `N ≥ 2`.
    /// * [`ParamError::InvalidK`] unless `1 ≤ K < N`.
    pub fn new(
        alpha: f64,
        days: usize,
        k: usize,
        slots_per_day: usize,
    ) -> Result<Self, ParamError> {
        WcmaParamsBuilder::new()
            .alpha(alpha)
            .days(days)
            .k(k)
            .slots_per_day(slots_per_day)
            .build()
    }

    /// The persistence weighting α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The history depth D (past days).
    pub fn days(&self) -> usize {
        self.days
    }

    /// The conditioning window K (past slots of the current day).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Slots per day N.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// The day-start window policy.
    pub fn k_policy(&self) -> KWindowPolicy {
        self.k_policy
    }

    /// Returns a copy with a different α (validated).
    ///
    /// # Errors
    ///
    /// [`ParamError::InvalidAlpha`] if out of range.
    pub fn with_alpha(mut self, alpha: f64) -> Result<Self, ParamError> {
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
            return Err(ParamError::InvalidAlpha { alpha });
        }
        self.alpha = alpha;
        Ok(self)
    }
}

/// Builder for [`WcmaParams`], defaulting to the paper's N=48 pseudo-
/// optimal guideline values (α = 0.7, D = 10, K = 2).
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::WcmaParamsBuilder;
///
/// let params = WcmaParamsBuilder::new().slots_per_day(48).build()?;
/// assert_eq!(params.alpha(), 0.7);
/// assert_eq!(params.days(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Copy, Clone, Debug)]
pub struct WcmaParamsBuilder {
    alpha: f64,
    days: usize,
    k: usize,
    slots_per_day: usize,
    k_policy: KWindowPolicy,
}

impl WcmaParamsBuilder {
    /// Starts from the paper's guideline defaults (α = 0.7, D = 10,
    /// K = 2, N = 48).
    pub fn new() -> Self {
        WcmaParamsBuilder {
            alpha: 0.7,
            days: 10,
            k: 2,
            slots_per_day: 48,
            k_policy: KWindowPolicy::default(),
        }
    }

    /// Sets the persistence weighting α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the history depth D.
    pub fn days(mut self, days: usize) -> Self {
        self.days = days;
        self
    }

    /// Sets the conditioning window K.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the slots per day N.
    pub fn slots_per_day(mut self, slots_per_day: usize) -> Self {
        self.slots_per_day = slots_per_day;
        self
    }

    /// Sets the day-start window policy.
    pub fn k_policy(mut self, policy: KWindowPolicy) -> Self {
        self.k_policy = policy;
        self
    }

    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WcmaParams::new`].
    pub fn build(self) -> Result<WcmaParams, ParamError> {
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) {
            return Err(ParamError::InvalidAlpha { alpha: self.alpha });
        }
        if self.days < 1 {
            return Err(ParamError::InvalidDays { days: self.days });
        }
        if self.slots_per_day < 2 {
            return Err(ParamError::InvalidSlots {
                slots_per_day: self.slots_per_day,
            });
        }
        if self.k < 1 || self.k >= self.slots_per_day {
            return Err(ParamError::InvalidK {
                k: self.k,
                slots_per_day: self.slots_per_day,
            });
        }
        Ok(WcmaParams {
            alpha: self.alpha,
            days: self.days,
            k: self.k,
            slots_per_day: self.slots_per_day,
            k_policy: self.k_policy,
        })
    }
}

impl Default for WcmaParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_build() {
        let p = WcmaParams::new(0.5, 20, 6, 288).unwrap();
        assert_eq!(p.days(), 20);
        assert_eq!(p.k(), 6);
        assert_eq!(p.slots_per_day(), 288);
        assert_eq!(p.k_policy(), KWindowPolicy::WrapPreviousDay);
    }

    #[test]
    fn alpha_bounds_are_enforced() {
        assert!(WcmaParams::new(-0.01, 10, 1, 48).is_err());
        assert!(WcmaParams::new(1.01, 10, 1, 48).is_err());
        assert!(WcmaParams::new(f64::NAN, 10, 1, 48).is_err());
        assert!(WcmaParams::new(0.0, 10, 1, 48).is_ok());
        assert!(WcmaParams::new(1.0, 10, 1, 48).is_ok());
    }

    #[test]
    fn structural_bounds_are_enforced() {
        assert!(matches!(
            WcmaParams::new(0.5, 0, 1, 48),
            Err(ParamError::InvalidDays { .. })
        ));
        assert!(matches!(
            WcmaParams::new(0.5, 10, 0, 48),
            Err(ParamError::InvalidK { .. })
        ));
        assert!(matches!(
            WcmaParams::new(0.5, 10, 48, 48),
            Err(ParamError::InvalidK { .. })
        ));
        assert!(matches!(
            WcmaParams::new(0.5, 10, 1, 1),
            Err(ParamError::InvalidSlots { .. })
        ));
    }

    #[test]
    fn with_alpha_validates() {
        let p = WcmaParams::new(0.5, 10, 2, 48).unwrap();
        assert_eq!(p.with_alpha(0.9).unwrap().alpha(), 0.9);
        assert!(p.with_alpha(2.0).is_err());
    }

    #[test]
    fn paper_grids_match_section_iv() {
        let alphas = WcmaParams::paper_alpha_grid();
        assert_eq!(alphas.len(), 11);
        assert_eq!(alphas[0], 0.0);
        assert_eq!(alphas[10], 1.0);
        assert_eq!(WcmaParams::PAPER_DAYS, 2..=20);
        assert_eq!(WcmaParams::PAPER_K, 1..=6);
    }

    #[test]
    fn builder_defaults_are_guidelines() {
        let p = WcmaParamsBuilder::default().build().unwrap();
        assert_eq!(p.alpha(), 0.7);
        assert_eq!(p.days(), 10);
        assert_eq!(p.k(), 2);
        assert_eq!(p.slots_per_day(), 48);
    }
}
