//! The EWMA per-slot predictor of Kansal et al. (ACM TECS 2007) — the
//! classic baseline the paper's §I cites as the first solar predictor.

use crate::error::ParamError;
use crate::predictor::Predictor;

/// Exponentially Weighted Moving-Average predictor.
///
/// Kansal's observation: energy in a given slot is similar to the energy
/// in the *same slot on previous days*. The predictor keeps one smoothed
/// estimate per slot:
///
/// ```text
/// est(j) ← γ · ẽ(j) + (1 − γ) · est(j)      (on observing slot j)
/// ê(n+1) = est(n+1)                         (yesterday's smoothed value)
/// ```
///
/// During the first day, slots without an estimate fall back to
/// persistence.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use solar_predict::{EwmaPredictor, Predictor};
///
/// let mut ewma = EwmaPredictor::new(0.5, 24)?;
/// let day: Vec<f64> = (0..24).map(|h| (h as f64) * 10.0).collect();
/// for _ in 0..10 {
///     for &s in &day {
///         ewma.observe_and_predict(s);
///     }
/// }
/// // On identical days the estimate converges to the day itself:
/// let pred = ewma.observe_and_predict(day[0]);
/// assert!((pred - day[1]).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EwmaPredictor {
    gamma: f64,
    slots_per_day: usize,
    estimates: Vec<f64>,
    seen: Vec<bool>,
    cursor: usize,
}

impl EwmaPredictor {
    /// Kansal's canonical smoothing factor.
    pub const DEFAULT_GAMMA: f64 = 0.5;

    /// Creates an EWMA predictor with smoothing factor `gamma` for
    /// `slots_per_day` slots.
    ///
    /// # Errors
    ///
    /// * [`ParamError::InvalidGamma`] unless `0 < γ ≤ 1` and finite.
    /// * [`ParamError::InvalidSlots`] unless `slots_per_day ≥ 2`.
    pub fn new(gamma: f64, slots_per_day: usize) -> Result<Self, ParamError> {
        if !gamma.is_finite() || gamma <= 0.0 || gamma > 1.0 {
            return Err(ParamError::InvalidGamma { gamma });
        }
        if slots_per_day < 2 {
            return Err(ParamError::InvalidSlots { slots_per_day });
        }
        Ok(EwmaPredictor {
            gamma,
            slots_per_day,
            estimates: vec![0.0; slots_per_day],
            seen: vec![false; slots_per_day],
            cursor: 0,
        })
    }

    /// The smoothing factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The current per-slot estimate, if that slot has been observed.
    pub fn estimate(&self, slot: usize) -> Option<f64> {
        if slot < self.slots_per_day && self.seen[slot] {
            Some(self.estimates[slot])
        } else {
            None
        }
    }
}

impl Predictor for EwmaPredictor {
    fn observe_and_predict(&mut self, measured: f64) -> f64 {
        let slot = self.cursor;
        if self.seen[slot] {
            self.estimates[slot] =
                self.gamma * measured + (1.0 - self.gamma) * self.estimates[slot];
        } else {
            self.estimates[slot] = measured;
            self.seen[slot] = true;
        }
        self.cursor = (self.cursor + 1) % self.slots_per_day;
        let next = self.cursor;
        if self.seen[next] {
            self.estimates[next]
        } else {
            measured
        }
    }

    fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    fn reset(&mut self) {
        self.estimates.fill(0.0);
        self.seen.fill(false);
        self.cursor = 0;
    }

    fn name(&self) -> &str {
        "ewma"
    }

    fn snapshot(&self) -> Option<Box<dyn Predictor + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_gamma_and_slots() {
        assert!(EwmaPredictor::new(0.0, 24).is_err());
        assert!(EwmaPredictor::new(1.1, 24).is_err());
        assert!(EwmaPredictor::new(f64::NAN, 24).is_err());
        assert!(EwmaPredictor::new(0.5, 1).is_err());
        assert!(EwmaPredictor::new(1.0, 24).is_ok());
    }

    #[test]
    fn first_day_is_persistence() {
        let mut p = EwmaPredictor::new(0.5, 4).unwrap();
        assert_eq!(p.observe_and_predict(10.0), 10.0);
        assert_eq!(p.observe_and_predict(20.0), 20.0);
    }

    #[test]
    fn converges_on_identical_days() {
        let mut p = EwmaPredictor::new(0.5, 4).unwrap();
        let day = [5.0, 10.0, 15.0, 20.0];
        for _ in 0..20 {
            for &s in &day {
                p.observe_and_predict(s);
            }
        }
        // Prediction at slot 0 targets slot 1.
        let pred = p.observe_and_predict(day[0]);
        assert!((pred - day[1]).abs() < 1e-4);
    }

    #[test]
    fn gamma_one_tracks_yesterday_exactly() {
        let mut p = EwmaPredictor::new(1.0, 3).unwrap();
        for &s in &[1.0, 2.0, 3.0] {
            p.observe_and_predict(s);
        }
        // Day two: estimates hold yesterday's values.
        let pred = p.observe_and_predict(100.0); // slot 0 observed, targets slot 1
        assert_eq!(pred, 2.0);
    }

    #[test]
    fn estimate_accessor() {
        let mut p = EwmaPredictor::new(0.5, 3).unwrap();
        assert_eq!(p.estimate(0), None);
        p.observe_and_predict(8.0);
        assert_eq!(p.estimate(0), Some(8.0));
        assert_eq!(p.estimate(7), None);
    }

    #[test]
    fn reset_clears_estimates() {
        let mut p = EwmaPredictor::new(0.5, 3).unwrap();
        p.observe_and_predict(8.0);
        p.reset();
        assert_eq!(p.estimate(0), None);
        assert_eq!(p.observe_and_predict(3.0), 3.0);
    }

    #[test]
    fn smoothing_dampens_outliers() {
        let mut p = EwmaPredictor::new(0.3, 2).unwrap();
        for _ in 0..50 {
            p.observe_and_predict(100.0);
            p.observe_and_predict(100.0);
        }
        // One dark day barely moves the estimate with small gamma.
        p.observe_and_predict(0.0);
        let est = p.estimate(0).unwrap();
        assert!(est > 60.0, "estimate {est}");
    }
}
