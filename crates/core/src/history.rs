//! The `E_{D×N}` matrix of the paper (Fig. 3): a ring buffer of the last
//! `D` days' slot-start power samples.

/// Ring buffer of the most recent `capacity` days, each holding
/// `slots` slot-start power values.
///
/// This is the storage whose size (`D × N` floats) the paper counts
/// against the prediction algorithm's memory budget, motivating the
/// D ≈ 10–11 guideline.
///
/// Storage is **slot-major** (one contiguous `capacity`-long column per
/// slot): the hot operation is [`DayHistory::mean`], a walk down one
/// slot's column every prediction, so a column must be a cache-line
/// streak — while [`DayHistory::push_day`]'s strided writes happen only
/// once per day. The summation order of `mean`/`prefix_sums` is
/// most-recent-day first regardless of layout, so results are
/// bit-identical to the row-major original.
///
/// # Example
///
/// ```
/// use solar_predict::DayHistory;
///
/// let mut history = DayHistory::new(4, 3); // 4 slots/day, keep 3 days
/// history.push_day(&[1.0, 2.0, 3.0, 4.0]);
/// history.push_day(&[3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(history.days_stored(), 2);
/// // μ_2(slot 0) = (1 + 3) / 2
/// assert_eq!(history.mean(0, 2), Some(2.0));
/// // Asking for more days than stored averages what exists.
/// assert_eq!(history.mean(0, 3), Some(2.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DayHistory {
    slots: usize,
    capacity: usize,
    days_stored: usize,
    /// Next row to overwrite.
    head: usize,
    /// Slot-major `slots × capacity`: the value of day-row `r` at slot
    /// `s` lives at `s * capacity + r`.
    data: Vec<f64>,
}

impl DayHistory {
    /// Creates an empty history for `slots` slots per day keeping at most
    /// `capacity` days.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `capacity` is zero.
    pub fn new(slots: usize, capacity: usize) -> Self {
        assert!(slots > 0, "slots must be positive");
        assert!(capacity > 0, "capacity must be positive");
        DayHistory {
            slots,
            capacity,
            days_stored: 0,
            head: 0,
            data: vec![0.0; slots * capacity],
        }
    }

    /// Slots per day.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Maximum days retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Days currently stored (saturates at `capacity`).
    pub fn days_stored(&self) -> usize {
        self.days_stored
    }

    /// `true` until the first day is pushed.
    pub fn is_empty(&self) -> bool {
        self.days_stored == 0
    }

    /// `true` once `capacity` days are retained.
    pub fn is_full(&self) -> bool {
        self.days_stored == self.capacity
    }

    /// Appends a completed day, evicting the oldest if full.
    ///
    /// # Panics
    ///
    /// Panics if `day.len() != slots`.
    pub fn push_day(&mut self, day: &[f64]) {
        assert_eq!(day.len(), self.slots, "day length must equal slots");
        for (slot, &value) in day.iter().enumerate() {
            self.data[slot * self.capacity + self.head] = value;
        }
        self.head = (self.head + 1) % self.capacity;
        if self.days_stored < self.capacity {
            self.days_stored += 1;
        }
    }

    /// The stored value at `slot` of the day `days_back` days ago
    /// (1 = most recent). Returns `None` if out of range.
    pub fn value(&self, days_back: usize, slot: usize) -> Option<f64> {
        if days_back == 0 || days_back > self.days_stored || slot >= self.slots {
            return None;
        }
        let row = (self.head + self.capacity - days_back) % self.capacity;
        Some(self.data[slot * self.capacity + row])
    }

    /// Folds the most recent `take` days at `slot` (newest first — the
    /// summation order every caller pins bit-for-bit) into `fold`. The
    /// ring walk is two descending linear runs over the slot's
    /// contiguous column, so no per-day modular arithmetic happens.
    #[inline]
    fn fold_recent(&self, slot: usize, take: usize, mut fold: impl FnMut(f64)) {
        let column = &self.data[slot * self.capacity..(slot + 1) * self.capacity];
        // Rows head-1, head-2, … then wrapping to capacity-1, … —
        // exactly rows `(head + capacity − back) % capacity` for
        // back = 1..=take.
        let unwrapped = take.min(self.head);
        for row in (self.head - unwrapped..self.head).rev() {
            fold(column[row]);
        }
        for row in (self.capacity - (take - unwrapped)..self.capacity).rev() {
            fold(column[row]);
        }
    }

    /// `μ_d(slot)`: the mean over the most recent `min(d, days_stored)`
    /// days at `slot` (the paper's Eq. 2). Returns `None` while empty or
    /// if `slot` is out of range or `d == 0`.
    pub fn mean(&self, slot: usize, d: usize) -> Option<f64> {
        if self.days_stored == 0 || slot >= self.slots || d == 0 {
            return None;
        }
        let take = d.min(self.days_stored);
        let mut sum = 0.0;
        self.fold_recent(slot, take, |value| sum += value);
        Some(sum / take as f64)
    }

    /// Fills `out[i]` with the sum of the most recent `i + 1` days'
    /// values at `slot`, for `i < min(upto, days_stored)`, and returns how
    /// many entries were written. `μ_d(slot)` is then `out[d − 1] / d` in
    /// O(1) — this is what lets the sweep engine and the
    /// [`CandidateBank`](crate::CandidateBank) evaluate every `D` of a
    /// grid in one column walk.
    ///
    /// `out` is cleared first.
    pub fn prefix_sums(&self, slot: usize, upto: usize, out: &mut Vec<f64>) -> usize {
        out.clear();
        if slot >= self.slots {
            return 0;
        }
        let take = upto.min(self.days_stored);
        let mut sum = 0.0;
        self.fold_recent(slot, take, |value| {
            sum += value;
            out.push(sum);
        });
        take
    }

    /// Clears all stored days.
    pub fn clear(&mut self) {
        self.days_stored = 0;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(capacity: usize, days: usize) -> DayHistory {
        let mut h = DayHistory::new(3, capacity);
        for d in 0..days {
            let base = d as f64 * 10.0;
            h.push_day(&[base, base + 1.0, base + 2.0]);
        }
        h
    }

    #[test]
    fn starts_empty() {
        let h = DayHistory::new(4, 2);
        assert!(h.is_empty());
        assert_eq!(h.mean(0, 5), None);
        assert_eq!(h.value(1, 0), None);
    }

    #[test]
    fn value_indexing_is_most_recent_first() {
        let h = filled(5, 3);
        // Days pushed: 0, 10, 20 base values.
        assert_eq!(h.value(1, 0), Some(20.0));
        assert_eq!(h.value(2, 0), Some(10.0));
        assert_eq!(h.value(3, 0), Some(0.0));
        assert_eq!(h.value(4, 0), None);
        assert_eq!(h.value(0, 0), None);
        assert_eq!(h.value(1, 3), None);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let h = filled(3, 5); // pushes bases 0,10,20,30,40 into capacity 3
        assert!(h.is_full());
        assert_eq!(h.value(1, 0), Some(40.0));
        assert_eq!(h.value(3, 0), Some(20.0));
        assert_eq!(h.value(4, 0), None);
    }

    #[test]
    fn mean_matches_naive_average() {
        let h = filled(10, 6);
        // Bases 0..=50 step 10 at slot 1 are 1, 11, 21, 31, 41, 51.
        let mean3 = h.mean(1, 3).unwrap();
        assert!((mean3 - (51.0 + 41.0 + 31.0) / 3.0).abs() < 1e-12);
        let mean_all = h.mean(1, 100).unwrap();
        assert!((mean_all - (1.0 + 11.0 + 21.0 + 31.0 + 41.0 + 51.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mean_out_of_range_inputs() {
        let h = filled(4, 2);
        assert_eq!(h.mean(3, 2), None);
        assert_eq!(h.mean(0, 0), None);
    }

    #[test]
    fn clear_resets() {
        let mut h = filled(4, 3);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.mean(0, 1), None);
        h.push_day(&[7.0, 8.0, 9.0]);
        assert_eq!(h.value(1, 2), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "day length")]
    fn push_wrong_length_panics() {
        let mut h = DayHistory::new(3, 2);
        h.push_day(&[1.0, 2.0]);
    }

    #[test]
    fn prefix_sums_match_means() {
        let h = filled(10, 7);
        let mut buf = Vec::new();
        let written = h.prefix_sums(2, 20, &mut buf);
        assert_eq!(written, 7);
        for d in 1..=7 {
            let mean_from_prefix = buf[d - 1] / d as f64;
            assert!(
                (mean_from_prefix - h.mean(2, d).unwrap()).abs() < 1e-12,
                "d={d}"
            );
        }
        // Out-of-range slot writes nothing.
        assert_eq!(h.prefix_sums(9, 20, &mut buf), 0);
        assert!(buf.is_empty());
    }
}
