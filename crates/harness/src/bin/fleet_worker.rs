//! One shard of a supervised fleet run.
//!
//! This is the child process the supervisor spawns, times out, kills,
//! and retries. It evaluates shard `i` of `N` of a named workload and
//! lands a checksummed artifact at `--shard-out`; under `--chaos` it
//! deterministically sabotages itself first (see
//! [`fleet_harness::chaos`]).
//!
//! ```text
//! fleet_worker --workload tiny|smoke|builtin|generated:N|golden200
//!              --seed S --shard i/N --shard-out PATH
//!              [--v2] [--budget BYTES] [--threads T]
//!              [--chaos SEED --attempt K] [--fail]
//! ```
//!
//! Exit codes follow [`fleet_harness::exit`].

use fleet_harness::worker::{ChaosSpec, WorkerConfig};
use fleet_harness::{exit, run_worker, Workload};

fn parse_args() -> Result<(Workload, WorkerConfig), String> {
    let mut kind: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut v2 = false;
    let mut budget: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut attempt: u32 = 0;
    let mut fail = false;

    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => kind = Some(next(&mut args, "--workload")?),
            "--seed" => {
                seed = Some(
                    next(&mut args, "--seed")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?,
                )
            }
            "--v2" => v2 = true,
            "--budget" => {
                budget = Some(
                    next(&mut args, "--budget")?
                        .parse()
                        .map_err(|e| format!("bad budget: {e}"))?,
                )
            }
            "--threads" => {
                threads = Some(
                    next(&mut args, "--threads")?
                        .parse()
                        .map_err(|e| format!("bad threads: {e}"))?,
                )
            }
            "--shard" => {
                let spec = next(&mut args, "--shard")?;
                let (index, count) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants i/N, got {spec:?}"))?;
                shard = Some((
                    index.parse().map_err(|e| format!("bad shard index: {e}"))?,
                    count.parse().map_err(|e| format!("bad shard count: {e}"))?,
                ));
            }
            "--shard-out" => out = Some(next(&mut args, "--shard-out")?.into()),
            "--chaos" => {
                chaos_seed = Some(
                    next(&mut args, "--chaos")?
                        .parse()
                        .map_err(|e| format!("bad chaos seed: {e}"))?,
                )
            }
            "--attempt" => {
                attempt = next(&mut args, "--attempt")?
                    .parse()
                    .map_err(|e| format!("bad attempt: {e}"))?
            }
            "--fail" => fail = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let kind = kind.ok_or("--workload is required")?;
    let seed = seed.ok_or("--seed is required")?;
    let (shard_index, shard_count) = shard.ok_or("--shard is required")?;
    let out_path = out.ok_or("--shard-out is required")?;
    let workload = Workload::from_cli(&kind, seed, v2, budget, threads)?;
    Ok((
        workload,
        WorkerConfig {
            shard_index,
            shard_count,
            out_path,
            chaos: chaos_seed.map(|seed| ChaosSpec { seed, attempt }),
            fail,
        },
    ))
}

fn main() {
    let (workload, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("fleet_worker: {e}");
            std::process::exit(exit::USAGE);
        }
    };
    match run_worker(&workload, &config) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("fleet_worker: {e}");
            std::process::exit(exit::FAILED);
        }
    }
}
