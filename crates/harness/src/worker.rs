//! The worker half of the harness: evaluate one shard of a workload
//! in-process and land the result on disk as a checksummed artifact.
//!
//! A worker is the unit the supervisor retries, times out, and kills —
//! so everything it produces must be legible from outside the process:
//! the shard's ranking tables, the manifest it believed in, the
//! scenarios it had to quarantine, and its deterministic ledger, all in
//! one [`ShardRunArtifact`]. The artifact is written atomically
//! ([`crate::artifact`]), so a worker that dies mid-write leaves either
//! nothing or a complete, verifiable file — never a half-truth the
//! merge could ingest.
//!
//! Shard assignment is positional round-robin over the *full* matrix
//! (`scenario index % shard_count`), exactly the split
//! [`FleetEngine::run_sharded`](scenario_fleet::FleetEngine) uses
//! in-process — which is what makes "1 host ≡ N processes" hold
//! byte-for-byte: per-scenario seeds derive from (master seed, scenario
//! name), so evaluating a sub-matrix reproduces the full run's tables
//! for those scenarios exactly.

use std::path::PathBuf;

use scenario_fleet::{
    Collector, FleetMatrix, QuarantinedScenario, Scorecard, ScorecardShard, ShardManifest,
};

use crate::artifact::{self, ArtifactError, ArtifactErrorKind};
use crate::chaos::{ChaosMode, ChaosPlan};
use crate::exit;
use crate::workload::Workload;

/// Envelope kind of a shard-run artifact.
pub const SHARD_RUN_KIND: &str = "shard-run";
/// Payload schema id of a shard-run artifact.
pub const SHARD_RUN_SCHEMA: &str = "fleet-shard-run/1";

/// Chaos coordinates of one worker attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The chaos seed (shared by every attempt of a run).
    pub seed: u64,
    /// Which attempt this is, 0-based — the supervisor increments it on
    /// every retry so the plan can schedule a clean tail.
    pub attempt: u32,
}

/// One worker invocation: which shard, where to land the artifact, and
/// what (if any) chaos to self-inject.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's shard in `0..shard_count`.
    pub shard_index: usize,
    /// Total shard count.
    pub shard_count: usize,
    /// Where the artifact lands.
    pub out_path: PathBuf,
    /// Deterministic self-sabotage, if any.
    pub chaos: Option<ChaosSpec>,
    /// Fail unconditionally (exit nonzero, no artifact) — the
    /// degradation drills' way of exhausting a retry budget.
    pub fail: bool,
}

/// Everything one completed worker attempt hands the supervisor.
#[derive(Clone, Debug)]
pub struct ShardRunArtifact {
    /// This worker's shard index.
    pub shard_index: usize,
    /// Total shard count the worker assumed.
    pub shard_count: usize,
    /// The full-matrix manifest the worker derived — the supervisor
    /// cross-checks it byte-for-byte against its own expectation.
    pub manifest: ShardManifest,
    /// The shard's ranking tables and cost.
    pub shard: ScorecardShard,
    /// Scenarios whose work units panicked and were quarantined
    /// (empty on a clean run).
    pub quarantined: Vec<QuarantinedScenario>,
    /// The worker's deterministic ledger.
    pub ledger: fleet_obs::Ledger,
}

impl ShardRunArtifact {
    /// The deterministic JSON payload.
    pub fn to_json(&self) -> fleet_obs::json::Json {
        use fleet_obs::json::Json;
        Json::obj([
            ("schema", Json::Str(SHARD_RUN_SCHEMA.to_string())),
            ("shard_index", Json::Num(self.shard_index as f64)),
            ("shard_count", Json::Num(self.shard_count as f64)),
            ("manifest", self.manifest.to_json()),
            ("shard", self.shard.to_json()),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|q| {
                            Json::obj([
                                ("scenario", Json::Str(q.scenario.clone())),
                                ("error", Json::Str(q.error.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("ledger", self.ledger.to_json()),
        ])
    }

    /// Parses the JSON payload.
    pub fn from_json(value: &fleet_obs::json::Json) -> Result<ShardRunArtifact, String> {
        let schema = value.req_str("schema")?;
        if schema != SHARD_RUN_SCHEMA {
            return Err(format!("unsupported shard-run schema {schema:?}"));
        }
        Ok(ShardRunArtifact {
            shard_index: value.req_index("shard_index")? as usize,
            shard_count: value.req_index("shard_count")? as usize,
            manifest: ShardManifest::from_json(value.req("manifest")?)?,
            shard: ScorecardShard::from_json(value.req("shard")?)?,
            quarantined: value
                .req("quarantined")?
                .as_arr()
                .ok_or("quarantined must be an array")?
                .iter()
                .map(|q| {
                    Ok(QuarantinedScenario {
                        scenario: q.req_str("scenario")?.to_string(),
                        error: q.req_str("error")?.to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            ledger: fleet_obs::Ledger::from_json(value.req("ledger")?)?,
        })
    }

    /// Writes the artifact atomically under the checksummed envelope.
    pub fn write_atomic(&self, path: &std::path::Path) -> Result<(), String> {
        artifact::write_artifact_atomic(
            path,
            SHARD_RUN_KIND,
            self.to_json().render_pretty().as_bytes(),
        )
    }

    /// Reads and fully verifies an artifact: envelope checksum, JSON
    /// payload, schema. Every failure is a typed [`ArtifactError`].
    pub fn read(path: &std::path::Path) -> Result<ShardRunArtifact, ArtifactError> {
        let json = artifact::read_artifact_json(path, SHARD_RUN_KIND)?;
        Self::from_json(&json).map_err(|e| ArtifactError {
            artifact: path.display().to_string(),
            offset: None,
            kind: ArtifactErrorKind::Payload(e),
        })
    }
}

/// The round-robin manifest of `matrix` split `shard_count` ways —
/// identical to the in-process sharded reduction's split.
pub fn shard_manifest(matrix: &FleetMatrix, master_seed: u64, shard_count: usize) -> ShardManifest {
    ShardManifest {
        master_seed,
        shard_count,
        scenarios: matrix
            .scenarios
            .iter()
            .enumerate()
            .map(|(idx, s)| (s.name.clone(), idx % shard_count))
            .collect(),
    }
}

/// The sub-matrix of `matrix` owned by `shard_index` under the
/// round-robin split.
pub fn shard_sub_matrix(
    matrix: &FleetMatrix,
    shard_index: usize,
    shard_count: usize,
) -> Result<FleetMatrix, String> {
    let scenarios: Vec<_> = matrix
        .scenarios
        .iter()
        .enumerate()
        .filter(|(idx, _)| idx % shard_count == shard_index)
        .map(|(_, s)| s.clone())
        .collect();
    FleetMatrix::new(
        matrix.predictors.clone(),
        matrix.managers.clone(),
        scenarios,
    )
}

/// Runs the full worker protocol for one attempt: chaos gates, shard
/// evaluation, atomic artifact write, post-write corruption (chaos
/// again). Returns the process exit code the caller should exit with.
///
/// # Errors
///
/// Usage-level problems (bad shard coordinates, un-shardable matrix) —
/// the caller maps these to [`exit::USAGE`].
pub fn run_worker(workload: &Workload, config: &WorkerConfig) -> Result<i32, String> {
    if config.shard_count == 0 || config.shard_index >= config.shard_count {
        return Err(format!(
            "shard {}/{} out of range",
            config.shard_index, config.shard_count
        ));
    }
    if config.fail {
        // The degradation drill: burn the attempt without a trace.
        return Ok(exit::FAILED);
    }
    let mode = match config.chaos {
        Some(spec) => ChaosPlan::new(spec.seed).mode(config.shard_index, spec.attempt),
        None => ChaosMode::Clean,
    };
    match mode {
        ChaosMode::ExitMidRun => return Ok(exit::CHAOS_KILLED),
        ChaosMode::Stall => {
            // Hang until the supervisor loses patience and kills us.
            // Bounded so an unsupervised chaos worker still terminates.
            std::thread::sleep(std::time::Duration::from_secs(3600));
            return Ok(exit::FAILED);
        }
        _ => {}
    }

    let matrix = workload.matrix()?;
    if !matrix.fleet_faults.is_empty() {
        // Correlated fleet faults project against the full scenario
        // list; slicing the matrix first would change what they hit.
        return Err("fleet-fault matrices cannot be process-sharded".to_string());
    }
    if config.shard_count > matrix.scenarios.len() {
        return Err(format!(
            "{} shards over {} scenarios leaves empty shards",
            config.shard_count,
            matrix.scenarios.len()
        ));
    }
    let manifest = shard_manifest(&matrix, workload.seed, config.shard_count);
    let sub_matrix = shard_sub_matrix(&matrix, config.shard_index, config.shard_count)?;

    let collector = Collector::recording();
    let mut engine = workload
        .engine()
        .with_collector(collector.clone())
        .with_quarantine(true);
    if mode == ChaosMode::PanicUnit {
        // Deterministic target: the shard's first scenario.
        engine = engine.with_chaos_unit_panic(&sub_matrix.scenarios[0].name);
    }
    let result = engine.run(&sub_matrix)?;

    let artifact = ShardRunArtifact {
        shard_index: config.shard_index,
        shard_count: config.shard_count,
        manifest,
        shard: ScorecardShard {
            shard_index: config.shard_index,
            master_seed: workload.seed,
            per_scenario: Scorecard::per_scenario_rankings(&sub_matrix, &result.outcomes),
            cost: pred_metrics::CostAggregate::of(result.outcomes.iter().map(|o| o.cost)),
        },
        quarantined: result.quarantined,
        ledger: collector.ledger(),
    };
    artifact.write_atomic(&config.out_path)?;

    // Post-write corruption: the artifact was written correctly and
    // atomically; now damage it the way a failing medium would.
    if matches!(
        mode,
        ChaosMode::TruncateArtifact | ChaosMode::BitFlipArtifact
    ) {
        let spec = config.chaos.expect("chaos mode implies chaos spec");
        let plan = ChaosPlan::new(spec.seed);
        let mut bytes = std::fs::read(&config.out_path).map_err(|e| e.to_string())?;
        let (offset, bit) =
            plan.corruption_site(config.shard_index, spec.attempt, bytes.len() as u64);
        match mode {
            ChaosMode::TruncateArtifact => bytes.truncate(offset.max(1) as usize),
            _ => bytes[offset as usize] ^= 1 << bit,
        }
        std::fs::write(&config.out_path, &bytes).map_err(|e| e.to_string())?;
    }
    Ok(exit::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("harness_worker_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn worker_shards_merge_to_the_monolithic_scorecard() {
        let workload = Workload::new(42, WorkloadKind::Tiny);
        let dir = temp_dir("merge");
        let shard_count = 2;

        let mut shards = Vec::new();
        let mut manifest = None;
        for shard_index in 0..shard_count {
            let out = dir.join(format!("shard_{shard_index}.artifact"));
            let code = run_worker(
                &workload,
                &WorkerConfig {
                    shard_index,
                    shard_count,
                    out_path: out.clone(),
                    chaos: None,
                    fail: false,
                },
            )
            .unwrap();
            assert_eq!(code, exit::SUCCESS);
            let artifact = ShardRunArtifact::read(&out).unwrap();
            assert!(artifact.quarantined.is_empty());
            manifest = Some(artifact.manifest.clone());
            shards.push(artifact.shard);
        }

        let merged = Scorecard::merge_shards(&manifest.unwrap(), &shards).unwrap();
        let reference = workload.engine().run(&workload.matrix().unwrap()).unwrap();
        assert_eq!(
            merged.to_json_string(),
            reference.scorecard.to_json_string(),
            "N worker processes must reproduce the single-process scorecard byte-for-byte"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panic_unit_chaos_quarantines_and_still_lands_a_valid_artifact() {
        let workload = Workload::new(42, WorkloadKind::Tiny);
        let dir = temp_dir("panic");
        // Find chaos coordinates that schedule PanicUnit for shard 0.
        let (seed, attempt) = (0u64..)
            .find_map(|seed| {
                let plan = ChaosPlan::new(seed);
                (0..plan.fail_attempts(0))
                    .find(|&a| plan.mode(0, a) == ChaosMode::PanicUnit)
                    .map(|a| (seed, a))
            })
            .unwrap();
        let out = dir.join("shard_0.artifact");
        let code = run_worker(
            &workload,
            &WorkerConfig {
                shard_index: 0,
                shard_count: 2,
                out_path: out.clone(),
                chaos: Some(ChaosSpec { seed, attempt }),
                fail: false,
            },
        )
        .unwrap();
        assert_eq!(code, exit::SUCCESS);
        let artifact = ShardRunArtifact::read(&out).unwrap();
        assert_eq!(artifact.quarantined.len(), 1);
        assert!(artifact.quarantined[0].error.contains("panicked"));
        // The quarantined scenario's table is present but empty — the
        // partial merge turns exactly that into a coverage hole.
        let tables = &artifact.shard.per_scenario;
        assert!(tables.iter().any(|t| t.entries.is_empty()));
        assert!(tables.iter().any(|t| !t.entries.is_empty()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_chaos_produces_detectably_bad_artifacts() {
        let workload = Workload::new(42, WorkloadKind::Tiny);
        let dir = temp_dir("corrupt");
        for wanted in [ChaosMode::TruncateArtifact, ChaosMode::BitFlipArtifact] {
            let (seed, attempt) = (0u64..)
                .find_map(|seed| {
                    let plan = ChaosPlan::new(seed);
                    (0..plan.fail_attempts(1))
                        .find(|&a| plan.mode(1, a) == wanted)
                        .map(|a| (seed, a))
                })
                .unwrap();
            let out = dir.join(format!("{}.artifact", wanted.name()));
            run_worker(
                &workload,
                &WorkerConfig {
                    shard_index: 1,
                    shard_count: 2,
                    out_path: out.clone(),
                    chaos: Some(ChaosSpec { seed, attempt }),
                    fail: false,
                },
            )
            .unwrap();
            let err = ShardRunArtifact::read(&out).unwrap_err();
            assert!(
                err.is_corruption() || matches!(err.kind, ArtifactErrorKind::Header(_)),
                "{wanted:?} must be detected, got: {err}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
