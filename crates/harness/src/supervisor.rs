//! The supervisor: spawn N shard workers as child processes, retry
//! what fails, kill what hangs, and merge what survives.
//!
//! The contract has two halves:
//!
//! * **Recovery** — as long as every shard eventually lands one valid
//!   artifact, the merged scorecard is byte-identical to the
//!   single-process run: crashes, timeouts, and corrupt artifacts cost
//!   retries, never bytes.
//! * **Degradation** — when a shard exhausts its retry budget, the run
//!   does not abort: it merges what it has into a *partial* scorecard
//!   with an explicit [`CoverageManifest`] naming every missing
//!   scenario and why, and reports [`RunOutcome::Degraded`] (or
//!   [`RunOutcome::Failed`] when nothing at all survived) with a
//!   distinct exit code.
//!
//! Failure classification is explicit: a nonzero exit is a *worker
//! failure*, a deadline overrun is a *timeout* (the worker is killed),
//! an artifact that fails its checksum or schema is *corrupt*, and a
//! valid artifact carrying quarantined scenarios is retried in the
//! hope of a clean pass — but kept, so retry exhaustion can still
//! degrade to it rather than lose the whole shard.
//!
//! Everything the supervisor observes lands as `harness/*` counters on
//! the deterministic ledger plane: under a fixed chaos seed the whole
//! failure storm — spawns, retries, kills, corrupt artifacts — is
//! replayable and diffable, so CI pins it like any other counter.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use scenario_fleet::{Collector, CoverageManifest, Scorecard, ScorecardShard, ShardManifest};

use crate::exit;
use crate::worker::{shard_manifest, ShardRunArtifact};
use crate::workload::Workload;

/// How a supervised run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every shard completed cleanly; the scorecard is the full,
    /// byte-exact merge.
    Complete,
    /// Some scenarios are missing (exhausted shards or quarantined
    /// units); the scorecard is a partial merge and the coverage
    /// manifest names every hole.
    Degraded,
    /// No shard produced anything mergeable.
    Failed,
}

impl RunOutcome {
    /// The process exit code for this outcome (see [`crate::exit`]).
    pub fn exit_code(self) -> i32 {
        match self {
            RunOutcome::Complete => exit::SUCCESS,
            RunOutcome::Degraded => exit::DEGRADED,
            RunOutcome::Failed => exit::FAILED,
        }
    }

    /// Stable label value for the ledger.
    pub fn name(self) -> &'static str {
        match self {
            RunOutcome::Complete => "complete",
            RunOutcome::Degraded => "degraded",
            RunOutcome::Failed => "failed",
        }
    }
}

/// One shard's story, for the run summary.
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// The shard index.
    pub shard_index: usize,
    /// Attempts spent (including the successful one, if any).
    pub attempts: u32,
    /// Whether a mergeable artifact was accepted.
    pub completed: bool,
    /// Scenarios the accepted artifact quarantined (empty when clean).
    pub quarantined: usize,
    /// The last failure, where one occurred.
    pub last_error: Option<String>,
}

/// A supervised run's full result.
#[derive(Clone, Debug)]
pub struct SupervisorRun {
    /// How it ended.
    pub outcome: RunOutcome,
    /// The merged scorecard — full on [`RunOutcome::Complete`], partial
    /// on [`RunOutcome::Degraded`], absent on [`RunOutcome::Failed`].
    pub scorecard: Option<Scorecard>,
    /// Which scenarios the scorecard covers, and why the rest are
    /// missing.
    pub coverage: CoverageManifest,
    /// The manifest the run was supervised against.
    pub manifest: ShardManifest,
    /// Per-shard summaries, by shard index.
    pub shards: Vec<ShardStatus>,
}

/// Supervisor policy and wiring.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The worker executable (must speak the `fleet_worker` CLI).
    pub worker_program: PathBuf,
    /// What to evaluate — also how the supervisor derives the expected
    /// manifest without trusting any worker.
    pub workload: Workload,
    /// How many worker processes to split the fleet across.
    pub shard_count: usize,
    /// Per-attempt wall-clock budget before the worker is killed.
    pub timeout: Duration,
    /// Attempts per shard (≥ 1) before it degrades.
    pub max_attempts: u32,
    /// First retry delay; doubles per subsequent retry of a shard.
    pub backoff_base: Duration,
    /// Where shard artifacts land (one file per attempt).
    pub artifact_dir: PathBuf,
    /// Chaos seed forwarded to every worker (None ⇒ no injection).
    pub chaos_seed: Option<u64>,
    /// Shards told to fail unconditionally (degradation drills).
    pub fail_shards: Vec<usize>,
}

impl SupervisorConfig {
    /// A config with the given wiring and harness-default policy:
    /// 4 attempts (one more than the chaos plan's failure bound),
    /// 25 ms backoff, 10-minute timeout.
    pub fn new(worker_program: PathBuf, workload: Workload, shard_count: usize) -> Self {
        SupervisorConfig {
            worker_program,
            workload,
            shard_count,
            timeout: Duration::from_secs(600),
            max_attempts: crate::chaos::MAX_FAIL_ATTEMPTS + 1,
            backoff_base: Duration::from_millis(25),
            artifact_dir: std::env::temp_dir().join("fleet_harness"),
            chaos_seed: None,
            fail_shards: Vec::new(),
        }
    }
}

/// One shard's supervision state machine.
enum ShardState {
    /// Waiting (for a slot in time, not resources): eligible at the
    /// given instant, about to spend attempt `attempt`.
    Pending { attempt: u32, eligible_at: Instant },
    /// A worker process is running attempt `attempt`.
    Running {
        child: Child,
        attempt: u32,
        deadline: Instant,
        out_path: PathBuf,
    },
    /// A mergeable artifact was accepted.
    Done,
    /// Retry budget exhausted with nothing mergeable.
    Exhausted,
}

struct ShardSlot {
    state: ShardState,
    /// Accepted artifact (clean, or best quarantined at exhaustion).
    artifact: Option<ShardRunArtifact>,
    /// Latest valid-but-quarantined artifact, kept as a degradation
    /// fallback.
    quarantined_fallback: Option<ShardRunArtifact>,
    attempts: u32,
    last_error: Option<String>,
}

/// Runs a supervised N-process evaluation of `config.workload`.
///
/// # Errors
///
/// Configuration-level problems only (bad shard counts, unspawnable
/// worker program, un-shardable matrix). Worker failures — crashes,
/// timeouts, corruption, chaos — are *handled*, not returned: they
/// surface as retries and, past the budget, as degraded coverage.
pub fn run_supervisor(
    config: &SupervisorConfig,
    collector: &Collector,
) -> Result<SupervisorRun, String> {
    if config.max_attempts == 0 {
        return Err("max_attempts must be at least 1".to_string());
    }
    let matrix = config.workload.matrix()?;
    if config.shard_count == 0 || config.shard_count > matrix.scenarios.len() {
        return Err(format!(
            "shard count {} invalid for {} scenarios",
            config.shard_count,
            matrix.scenarios.len()
        ));
    }
    let expected_manifest = shard_manifest(&matrix, config.workload.seed, config.shard_count);
    let expected_manifest_json = expected_manifest.to_json().render_pretty();
    std::fs::create_dir_all(&config.artifact_dir)
        .map_err(|e| format!("artifact dir {:?}: {e}", config.artifact_dir))?;

    collector.gauge("harness/shard_count", config.shard_count as u64);
    collector.gauge("harness/max_attempts", config.max_attempts as u64);

    let start = Instant::now();
    let mut slots: Vec<ShardSlot> = (0..config.shard_count)
        .map(|_| ShardSlot {
            state: ShardState::Pending {
                attempt: 0,
                eligible_at: start,
            },
            artifact: None,
            quarantined_fallback: None,
            attempts: 0,
            last_error: None,
        })
        .collect();

    loop {
        let mut all_settled = true;
        for (shard_index, slot) in slots.iter_mut().enumerate() {
            match &mut slot.state {
                ShardState::Done | ShardState::Exhausted => continue,
                ShardState::Pending {
                    attempt,
                    eligible_at,
                } => {
                    all_settled = false;
                    if Instant::now() < *eligible_at {
                        continue;
                    }
                    let attempt = *attempt;
                    let out_path = config
                        .artifact_dir
                        .join(format!("shard_{shard_index}_attempt_{attempt}.artifact"));
                    let mut command = Command::new(&config.worker_program);
                    command
                        .args(config.workload.to_args())
                        .arg("--shard")
                        .arg(format!("{shard_index}/{}", config.shard_count))
                        .arg("--shard-out")
                        .arg(&out_path)
                        .stdout(Stdio::null())
                        .stderr(Stdio::null());
                    if let Some(seed) = config.chaos_seed {
                        command
                            .arg("--chaos")
                            .arg(seed.to_string())
                            .arg("--attempt")
                            .arg(attempt.to_string());
                    }
                    if config.fail_shards.contains(&shard_index) {
                        command.arg("--fail");
                    }
                    let child = command
                        .spawn()
                        .map_err(|e| format!("spawn {:?}: {e}", config.worker_program))?;
                    collector.count("harness/spawns", 1);
                    if attempt > 0 {
                        collector.count("harness/retries", 1);
                    }
                    slot.attempts = attempt + 1;
                    slot.state = ShardState::Running {
                        child,
                        attempt,
                        deadline: Instant::now() + config.timeout,
                        out_path,
                    };
                }
                ShardState::Running {
                    child,
                    attempt,
                    deadline,
                    out_path,
                } => {
                    all_settled = false;
                    let attempt = *attempt;
                    let failure: Option<String> = match child.try_wait() {
                        Err(e) => Some(format!("wait failed: {e}")),
                        Ok(None) => {
                            if Instant::now() < *deadline {
                                continue;
                            }
                            // Hung worker: kill, reap, classify.
                            let _ = child.kill();
                            let _ = child.wait();
                            collector.count("harness/timeouts", 1);
                            collector.count("harness/kills", 1);
                            Some(format!("timed out after {:?}", config.timeout))
                        }
                        Ok(Some(status)) if !status.success() => {
                            collector.count("harness/worker_failures", 1);
                            Some(format!("worker exited with {status}"))
                        }
                        Ok(Some(_)) => match ShardRunArtifact::read(out_path) {
                            Err(e) => {
                                collector.count("harness/corrupt_artifacts", 1);
                                Some(format!("artifact rejected: {e}"))
                            }
                            Ok(artifact) => {
                                match validate_artifact(
                                    &artifact,
                                    shard_index,
                                    config,
                                    &expected_manifest_json,
                                ) {
                                    Err(e) => {
                                        collector.count("harness/corrupt_artifacts", 1);
                                        Some(format!("artifact rejected: {e}"))
                                    }
                                    Ok(()) if artifact.quarantined.is_empty() => {
                                        collector.count("harness/completed_shards", 1);
                                        slot.artifact = Some(artifact);
                                        slot.state = ShardState::Done;
                                        continue;
                                    }
                                    Ok(()) => {
                                        // Valid but wounded: keep it as
                                        // the degradation fallback and
                                        // retry for a clean pass.
                                        collector.count("harness/quarantine_retries", 1);
                                        let names: Vec<&str> = artifact
                                            .quarantined
                                            .iter()
                                            .map(|q| q.scenario.as_str())
                                            .collect();
                                        let error =
                                            format!("quarantined scenarios: {}", names.join(", "));
                                        slot.quarantined_fallback = Some(artifact);
                                        Some(error)
                                    }
                                }
                            }
                        },
                    };
                    let failure = failure.expect("every fall-through path classifies a failure");
                    slot.last_error = Some(failure);
                    if attempt + 1 >= config.max_attempts {
                        if let Some(fallback) = slot.quarantined_fallback.take() {
                            // Exhausted, but a quarantined artifact is
                            // still a partial shard — degrade to it
                            // rather than lose every scenario in it.
                            collector.count("harness/degraded_shards", 1);
                            collector.count(
                                "harness/quarantined_scenarios",
                                fallback.quarantined.len() as u64,
                            );
                            slot.artifact = Some(fallback);
                            slot.state = ShardState::Done;
                        } else {
                            collector.count("harness/exhausted_shards", 1);
                            slot.state = ShardState::Exhausted;
                        }
                    } else {
                        // Exponential backoff: base · 2^(retry - 1).
                        let backoff = config.backoff_base * 2u32.pow(attempt.min(16));
                        slot.state = ShardState::Pending {
                            attempt: attempt + 1,
                            eligible_at: Instant::now() + backoff,
                        };
                    }
                }
            }
        }
        if all_settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Assembly. Artifacts are absorbed in shard order — never
    // completion order — so the merged ledger is deterministic.
    let mut shard_docs: Vec<ScorecardShard> = Vec::new();
    let mut shard_reasons: BTreeMap<usize, String> = BTreeMap::new();
    let mut scenario_reasons: BTreeMap<String, String> = BTreeMap::new();
    let mut degraded = false;
    for (shard_index, slot) in slots.iter().enumerate() {
        match &slot.artifact {
            Some(artifact) => {
                collector
                    .absorb_ledger(&artifact.ledger)
                    .map_err(|e| format!("shard {shard_index} ledger: {e}"))?;
                for q in &artifact.quarantined {
                    degraded = true;
                    scenario_reasons.insert(
                        q.scenario.clone(),
                        format!("work unit panicked: {}", q.error),
                    );
                }
                shard_docs.push(artifact.shard.clone());
            }
            None => {
                degraded = true;
                shard_reasons.insert(
                    shard_index,
                    format!(
                        "retry budget exhausted after {} attempts: {}",
                        slot.attempts,
                        slot.last_error.as_deref().unwrap_or("no error recorded")
                    ),
                );
            }
        }
    }

    let shards: Vec<ShardStatus> = slots
        .iter()
        .enumerate()
        .map(|(shard_index, slot)| ShardStatus {
            shard_index,
            attempts: slot.attempts,
            completed: slot.artifact.is_some(),
            quarantined: slot.artifact.as_ref().map_or(0, |a| a.quarantined.len()),
            last_error: slot.last_error.clone(),
        })
        .collect();

    let (outcome, scorecard, coverage) = if !degraded {
        let scorecard =
            Scorecard::merge_shards_observed(&expected_manifest, &shard_docs, collector)?;
        let coverage = CoverageManifest {
            covered: expected_manifest
                .scenarios
                .iter()
                .map(|(name, _)| name.clone())
                .collect(),
            missing: Vec::new(),
        };
        (RunOutcome::Complete, Some(scorecard), coverage)
    } else {
        let (scorecard, coverage) = Scorecard::merge_shards_partial(
            &expected_manifest,
            &shard_docs,
            &shard_reasons,
            &scenario_reasons,
        )?;
        if coverage.covered.is_empty() {
            (RunOutcome::Failed, None, coverage)
        } else {
            (RunOutcome::Degraded, Some(scorecard), coverage)
        }
    };
    collector.label("harness/outcome", outcome.name());
    collector.gauge("harness/covered_scenarios", coverage.covered.len() as u64);
    collector.gauge("harness/missing_scenarios", coverage.missing.len() as u64);

    Ok(SupervisorRun {
        outcome,
        scorecard,
        coverage,
        manifest: expected_manifest,
        shards,
    })
}

/// Cross-checks a structurally valid artifact against what the
/// supervisor expects of this shard: right coordinates, right seed, and
/// a manifest byte-identical to the supervisor's own derivation.
fn validate_artifact(
    artifact: &ShardRunArtifact,
    shard_index: usize,
    config: &SupervisorConfig,
    expected_manifest_json: &str,
) -> Result<(), String> {
    if artifact.shard_index != shard_index || artifact.shard.shard_index != shard_index {
        return Err(format!(
            "claims shard {} (expected {shard_index})",
            artifact.shard_index
        ));
    }
    if artifact.shard_count != config.shard_count {
        return Err(format!(
            "claims {} shards (expected {})",
            artifact.shard_count, config.shard_count
        ));
    }
    if artifact.shard.master_seed != config.workload.seed {
        return Err(format!(
            "claims seed {} (expected {})",
            artifact.shard.master_seed, config.workload.seed
        ));
    }
    if artifact.manifest.to_json().render_pretty() != expected_manifest_json {
        return Err("manifest disagrees with the supervisor's derivation".to_string());
    }
    Ok(())
}
