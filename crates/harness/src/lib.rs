//! Fault-tolerant multi-process shard execution for the fleet engine.
//!
//! `scenario-fleet` can split a fleet matrix into shards and merge them
//! back byte-for-byte — but until this crate, every shard lived in the
//! same process: one panic, one OOM kill, one wedged thread and the
//! whole evaluation was gone. The harness moves the shard boundary to
//! the *process* boundary and makes it survivable:
//!
//! * [`worker`] — `fleet_worker --shard i/N` evaluates one shard
//!   in-process and lands a [`worker::ShardRunArtifact`] (rankings,
//!   manifest, quarantined scenarios, deterministic ledger) as a
//!   checksummed, atomically-written file;
//! * [`artifact`] — the crash-safe envelope: torn, truncated, or
//!   bit-flipped files are typed errors with byte offsets, never panics
//!   and never false accepts;
//! * [`supervisor`] — spawns the N workers, enforces per-attempt
//!   wall-clock timeouts (hung workers are killed), retries failures on
//!   bounded exponential backoff, and merges what survives: full
//!   recovery reproduces the single-process scorecard byte-for-byte,
//!   and retry exhaustion degrades to a partial scorecard with an
//!   explicit [`scenario_fleet::CoverageManifest`] instead of aborting;
//! * [`chaos`] — deterministic self-sabotage: a seed schedules worker
//!   crashes, artifact corruption, stalls, and work-unit panics as a
//!   pure function, so CI can replay an exact failure storm and pin
//!   that recovery still lands the golden digests;
//! * [`workload`] — named matrices both sides of the process boundary
//!   reconstruct identically from CLI arguments.
//!
//! The paper's experiments are cheap; the *fleet-scale* replays this
//! repo grew around them are not. The harness is what lets those runs
//! be long-lived: worker processes may die, the answer may degrade, but
//! it never silently changes and never takes the run down with it.

pub mod artifact;
pub mod chaos;
pub mod supervisor;
pub mod worker;
pub mod workload;

pub use artifact::{Artifact, ArtifactError, ArtifactErrorKind};
pub use chaos::{ChaosMode, ChaosPlan, MAX_FAIL_ATTEMPTS};
pub use supervisor::{run_supervisor, RunOutcome, ShardStatus, SupervisorConfig, SupervisorRun};
pub use worker::{run_worker, ChaosSpec, ShardRunArtifact, WorkerConfig};
pub use workload::{Workload, WorkloadKind};

/// Process exit codes, unified across every binary and example in the
/// workspace:
///
/// | code | meaning |
/// |------|---------|
/// | 0    | success — complete result, no regression |
/// | 2    | degraded — partial result with explicit coverage holes |
/// | 3    | failed — no usable result, or a detected regression |
/// | 64   | usage — bad command line (BSD `EX_USAGE`) |
///
/// Workers additionally use [`exit::CHAOS_KILLED`] for chaos-injected
/// mid-run exits, so a chaos crash is distinguishable from a real one
/// in supervisor logs.
pub mod exit {
    /// Complete result, no regression.
    pub const SUCCESS: i32 = 0;
    /// Partial result with explicit coverage holes.
    pub const DEGRADED: i32 = 2;
    /// No usable result, or a detected regression.
    pub const FAILED: i32 = 3;
    /// Bad command line (BSD `EX_USAGE`).
    pub const USAGE: i32 = 64;
    /// A chaos-injected mid-run worker exit.
    pub const CHAOS_KILLED: i32 = 17;
}
