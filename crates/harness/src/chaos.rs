//! Deterministic chaos injection.
//!
//! Fault-tolerance code that is only exercised by real faults is dead
//! code until the worst night of the year. The harness therefore makes
//! workers *hurt themselves on purpose*: under `--chaos SEED` each
//! worker consults a [`ChaosPlan`] — a pure function of
//! `(seed, shard, attempt)` — and either runs clean or injects one
//! failure mode: exit mid-run, truncate its artifact, flip a bit in it,
//! stall past the supervisor's timeout, or panic inside a work unit.
//!
//! Because the plan is pure, a chaos run is *replayable*: the same seed
//! produces the same failure schedule on every host, every time, so CI
//! can pin "this exact storm of failures recovers to the golden
//! digests" as a regression test. And because the number of failing
//! attempts per shard is bounded (at most [`MAX_FAIL_ATTEMPTS`]), any
//! retry budget of `MAX_FAIL_ATTEMPTS + 1` or more is guaranteed to see
//! a clean attempt eventually — chaos exercises recovery, not luck.

/// Upper bound on failing attempts the plan schedules for one shard.
/// Attempts at or beyond this index always run clean.
pub const MAX_FAIL_ATTEMPTS: u32 = 3;

/// What one worker attempt does to itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosMode {
    /// No injected fault.
    Clean,
    /// Exit with a nonzero status before writing any artifact — a
    /// crashed worker.
    ExitMidRun,
    /// Run to completion, then truncate the written artifact — a torn
    /// write / full disk.
    TruncateArtifact,
    /// Run to completion, then flip one bit of the written artifact —
    /// a storage medium fault.
    BitFlipArtifact,
    /// Never finish — a hung worker the supervisor must time out and
    /// kill.
    Stall,
    /// Panic inside one scenario work unit — exercises the in-process
    /// quarantine path rather than the process boundary.
    PanicUnit,
}

impl ChaosMode {
    /// Stable CLI/debug name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::Clean => "clean",
            ChaosMode::ExitMidRun => "exit-mid-run",
            ChaosMode::TruncateArtifact => "truncate-artifact",
            ChaosMode::BitFlipArtifact => "bit-flip-artifact",
            ChaosMode::Stall => "stall",
            ChaosMode::PanicUnit => "panic-unit",
        }
    }
}

/// The full failure schedule of a chaos run, derived from one seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The chaos seed (independent of the workload seed).
    pub seed: u64,
}

impl ChaosPlan {
    /// A plan for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed }
    }

    fn hash(&self, tag: &str, shard: usize, attempt: u32) -> u64 {
        let h = solar_trace::hash::fnv1a(&format!("chaos/{}/{tag}/{shard}/{attempt}", self.seed));
        // FNV-1a's low bits stay correlated across inputs that differ
        // only near the tail (e.g. adjacent shard indices), and the
        // plan reduces hashes with small moduli — avalanche the bits
        // first so every (seed, shard, attempt) point is independent.
        let h = (h ^ (h >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        let h = (h ^ (h >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    /// How many leading attempts of `shard` fail (0 ⇒ the shard never
    /// fails under this seed). Strictly less than
    /// [`MAX_FAIL_ATTEMPTS`] + 1.
    pub fn fail_attempts(&self, shard: usize) -> u32 {
        (self.hash("budget", shard, 0) % (MAX_FAIL_ATTEMPTS as u64 + 1)) as u32
    }

    /// The mode of attempt `attempt` (0-based) of `shard`. Attempts at
    /// or past [`Self::fail_attempts`] are always [`ChaosMode::Clean`].
    pub fn mode(&self, shard: usize, attempt: u32) -> ChaosMode {
        if attempt >= self.fail_attempts(shard) {
            return ChaosMode::Clean;
        }
        match self.hash("mode", shard, attempt) % 5 {
            0 => ChaosMode::ExitMidRun,
            1 => ChaosMode::TruncateArtifact,
            2 => ChaosMode::BitFlipArtifact,
            3 => ChaosMode::Stall,
            _ => ChaosMode::PanicUnit,
        }
    }

    /// Deterministic corruption site for the truncate/bit-flip modes:
    /// `(byte_offset, bit)` within a file of `len` bytes.
    pub fn corruption_site(&self, shard: usize, attempt: u32, len: u64) -> (u64, u32) {
        let h = self.hash("site", shard, attempt);
        (h % len.max(1), (h >> 32) as u32 % 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_and_bounded() {
        for seed in [0u64, 1, 2026, u64::MAX] {
            let plan = ChaosPlan::new(seed);
            for shard in 0..16 {
                let budget = plan.fail_attempts(shard);
                assert!(budget <= MAX_FAIL_ATTEMPTS);
                for attempt in 0..8 {
                    // Pure: same inputs, same answer.
                    assert_eq!(plan.mode(shard, attempt), plan.mode(shard, attempt));
                    // Bounded: the clean tail is guaranteed.
                    if attempt >= budget {
                        assert_eq!(plan.mode(shard, attempt), ChaosMode::Clean);
                    } else {
                        assert_ne!(plan.mode(shard, attempt), ChaosMode::Clean);
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_reach_every_mode() {
        // Sweep a few hundred (seed, shard, attempt) points: all five
        // failure modes must be reachable, or chaos silently stops
        // covering a recovery path.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..100u64 {
            let plan = ChaosPlan::new(seed);
            for shard in 0..4 {
                for attempt in 0..plan.fail_attempts(shard) {
                    seen.insert(plan.mode(shard, attempt).name());
                }
            }
        }
        for mode in [
            "exit-mid-run",
            "truncate-artifact",
            "bit-flip-artifact",
            "stall",
            "panic-unit",
        ] {
            assert!(seen.contains(mode), "mode {mode} never scheduled");
        }
    }
}
