//! Named fleet workloads, shared by the worker binary, the supervisor,
//! and the tests.
//!
//! The supervisor and its workers live in different processes, so they
//! can only agree on *what to evaluate* through the command line. A
//! [`Workload`] is that agreement made first-class: a small value that
//! both sides construct identically — the supervisor to derive the
//! expected [`ShardManifest`](scenario_fleet::ShardManifest) and
//! coverage, the worker to build the matrix it actually runs — with a
//! lossless [`Workload::to_args`]/[`Workload::from_cli`] round-trip
//! between them.

use scenario_fleet::{
    Catalog, CatalogGenerator, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, Scenario,
    StreamVersion, TraceCachePolicy,
};

/// Which matrix a workload expands to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Three builtin regimes × one predictor × one manager — the
    /// debug-speed matrix the recovery tests drill on.
    Tiny,
    /// The fleet_scorecard `--smoke` matrix: four regimes (including
    /// the 3-year la-niña entry) × guideline predictors × default
    /// managers.
    Smoke,
    /// The full builtin catalog × extended predictors × default
    /// managers.
    Builtin,
    /// `count` scenarios from the parameterized catalog generator ×
    /// extended predictors × default managers.
    Generated {
        /// How many regimes to generate.
        count: usize,
    },
    /// The pinned 200-regime golden matrix: generated catalog ×
    /// `Wcma{0.7,10,2}` × `EnergyNeutral{0.5,0.25}` — the workload
    /// whose scorecard digest CI holds byte-constant.
    Golden200,
}

/// A complete, CLI-serialisable description of one fleet evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Master seed (drives generation and per-scenario seeds).
    pub seed: u64,
    /// The matrix to expand.
    pub kind: WorkloadKind,
    /// Evaluate on the v2 (lane-order) synthesis stream. Only the
    /// generated kinds carry a stream version.
    pub v2: bool,
    /// Trace-cache budget override in bytes (kind default otherwise).
    pub budget: Option<u64>,
    /// Worker-thread override (rayon default otherwise).
    pub threads: Option<usize>,
}

impl Workload {
    /// A workload of `kind` under `seed`, with kind-default budget.
    pub fn new(seed: u64, kind: WorkloadKind) -> Self {
        Workload {
            seed,
            kind,
            v2: false,
            budget: None,
            threads: None,
        }
    }

    /// Evaluate on the v2 synthesis stream (generated kinds only —
    /// [`Workload::matrix`] rejects the combination otherwise).
    pub fn with_v2(mut self, v2: bool) -> Self {
        self.v2 = v2;
        self
    }

    /// Override the trace-cache budget.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Override the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The trace-cache budget this workload runs under.
    pub fn effective_budget(&self) -> u64 {
        self.budget.unwrap_or(match self.kind {
            WorkloadKind::Tiny | WorkloadKind::Smoke => 2 << 20,
            _ => 4 << 20,
        })
    }

    fn builtin_subset(names: &[&str]) -> Result<Vec<Scenario>, String> {
        let catalog = Catalog::builtin();
        names
            .iter()
            .map(|name| {
                catalog
                    .get(name)
                    .cloned()
                    .ok_or_else(|| format!("builtin scenario {name:?} missing"))
            })
            .collect()
    }

    /// Expands the workload into its fleet matrix. Deterministic: both
    /// sides of the process boundary call this and must see the same
    /// scenario list in the same order.
    pub fn matrix(&self) -> Result<FleetMatrix, String> {
        if self.v2
            && !matches!(
                self.kind,
                WorkloadKind::Generated { .. } | WorkloadKind::Golden200
            )
        {
            return Err("--v2 requires a generated workload".to_string());
        }
        let generated = |count: usize| -> Result<Vec<Scenario>, String> {
            let mut generator = CatalogGenerator::new(self.seed);
            if self.v2 {
                generator = generator.with_stream_version(StreamVersion::V2);
            }
            Ok(generator.generate(count)?.scenarios().to_vec())
        };
        let (scenarios, predictors, managers) = match self.kind {
            WorkloadKind::Tiny => (
                Self::builtin_subset(&["desert-clear-sky", "marine-fog", "continental-storms"])?,
                vec![PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                }],
                vec![ManagerSpec::Greedy],
            ),
            WorkloadKind::Smoke => (
                Self::builtin_subset(&[
                    "desert-clear-sky",
                    "marine-fog",
                    "arctic-winter",
                    "la-nina-triennium",
                ])?,
                PredictorSpec::guideline_family(),
                ManagerSpec::default_set(),
            ),
            WorkloadKind::Builtin => (
                Catalog::builtin().scenarios().to_vec(),
                PredictorSpec::extended_family(),
                ManagerSpec::default_set(),
            ),
            WorkloadKind::Generated { count } => (
                generated(count)?,
                PredictorSpec::extended_family(),
                ManagerSpec::default_set(),
            ),
            WorkloadKind::Golden200 => (
                generated(200)?,
                vec![PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                }],
                vec![ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                }],
            ),
        };
        FleetMatrix::new(predictors, managers, scenarios)
    }

    /// The engine this workload evaluates under (bounded trace cache,
    /// optional thread pin). Collector, quarantine, and chaos are the
    /// worker's to attach.
    pub fn engine(&self) -> FleetEngine {
        let mut engine = FleetEngine::new(self.seed)
            .with_trace_cache(TraceCachePolicy::bounded(self.effective_budget()));
        if let Some(threads) = self.threads {
            engine = engine.with_threads(threads);
        }
        engine
    }

    /// The kind's CLI name.
    pub fn kind_name(&self) -> String {
        match self.kind {
            WorkloadKind::Tiny => "tiny".to_string(),
            WorkloadKind::Smoke => "smoke".to_string(),
            WorkloadKind::Builtin => "builtin".to_string(),
            WorkloadKind::Generated { count } => format!("generated:{count}"),
            WorkloadKind::Golden200 => "golden200".to_string(),
        }
    }

    /// Parses a kind CLI name.
    pub fn parse_kind(name: &str) -> Result<WorkloadKind, String> {
        match name {
            "tiny" => Ok(WorkloadKind::Tiny),
            "smoke" => Ok(WorkloadKind::Smoke),
            "builtin" => Ok(WorkloadKind::Builtin),
            "golden200" => Ok(WorkloadKind::Golden200),
            other => match other.strip_prefix("generated:") {
                Some(count) => Ok(WorkloadKind::Generated {
                    count: count
                        .parse()
                        .map_err(|e| format!("bad generated count {count:?}: {e}"))?,
                }),
                None => Err(format!("unknown workload {other:?}")),
            },
        }
    }

    /// The worker-CLI arguments that reconstruct this workload.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--workload".to_string(),
            self.kind_name(),
            "--seed".to_string(),
            self.seed.to_string(),
        ];
        if self.v2 {
            args.push("--v2".to_string());
        }
        if let Some(budget) = self.budget {
            args.push("--budget".to_string());
            args.push(budget.to_string());
        }
        if let Some(threads) = self.threads {
            args.push("--threads".to_string());
            args.push(threads.to_string());
        }
        args
    }

    /// Reassembles a workload from parsed CLI pieces — the inverse of
    /// [`Workload::to_args`].
    pub fn from_cli(
        kind: &str,
        seed: u64,
        v2: bool,
        budget: Option<u64>,
        threads: Option<usize>,
    ) -> Result<Workload, String> {
        Ok(Workload {
            seed,
            kind: Self::parse_kind(kind)?,
            v2,
            budget,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_round_trip() {
        for workload in [
            Workload::new(42, WorkloadKind::Tiny),
            Workload::new(7, WorkloadKind::Smoke).with_budget(1 << 20),
            Workload::new(2026, WorkloadKind::Golden200)
                .with_v2(true)
                .with_threads(2),
            Workload::new(9, WorkloadKind::Generated { count: 16 }),
        ] {
            let args = workload.to_args();
            // Re-parse the flag stream the way the worker binary does.
            let mut kind = None;
            let mut seed = None;
            let mut v2 = false;
            let mut budget = None;
            let mut threads = None;
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--workload" => kind = iter.next().cloned(),
                    "--seed" => seed = iter.next().map(|s| s.parse().unwrap()),
                    "--v2" => v2 = true,
                    "--budget" => budget = iter.next().map(|s| s.parse().unwrap()),
                    "--threads" => threads = iter.next().map(|s| s.parse().unwrap()),
                    other => panic!("unexpected arg {other}"),
                }
            }
            let parsed =
                Workload::from_cli(kind.as_deref().unwrap(), seed.unwrap(), v2, budget, threads)
                    .unwrap();
            assert_eq!(parsed, workload);
        }
    }

    #[test]
    fn tiny_matrix_is_three_jobs_and_v2_needs_generation() {
        let matrix = Workload::new(1, WorkloadKind::Tiny).matrix().unwrap();
        assert_eq!(matrix.job_count(), 3);
        assert!(matrix.fleet_faults.is_empty());
        let err = Workload::new(1, WorkloadKind::Tiny)
            .with_v2(true)
            .matrix()
            .unwrap_err();
        assert!(err.contains("--v2"), "{err}");
    }

    #[test]
    fn golden_matrix_matches_the_pinned_shape() {
        let matrix = Workload::new(2026, WorkloadKind::Golden200)
            .matrix()
            .unwrap();
        assert_eq!(matrix.scenarios.len(), 200);
        assert_eq!(matrix.job_count(), 200);
        let v2 = Workload::new(2026, WorkloadKind::Golden200)
            .with_v2(true)
            .matrix()
            .unwrap();
        assert!(v2.scenarios.iter().all(|s| s.name.ends_with("-v2")));
    }
}
