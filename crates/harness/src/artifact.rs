//! Checksummed, crash-safe on-disk artifacts.
//!
//! Everything a worker hands back to the supervisor crosses a process
//! boundary through the filesystem, where it can be torn by a crash
//! mid-write, truncated by a full disk, or bit-flipped by a bad medium.
//! The envelope here makes every such corruption *detectable*: a short
//! self-describing header carries the payload length and an FNV-1a
//! checksum over the exact payload bytes, so a damaged file is always a
//! typed [`ArtifactError`] — never a panic, and never silently accepted
//! as valid.
//!
//! Writes go through [`fleet_obs::fsio::write_atomic`] (temp file,
//! fsync, rename), so a reader either sees the previous artifact or the
//! complete new one. The corruption handling exists for the paths that
//! *bypass* the atomic writer: chaos injection in tests, and real-world
//! media faults.
//!
//! Wire format (`fleet-artifact/1`):
//!
//! ```text
//! fleet-artifact/1 kind=<kind> len=<bytes> fnv1a64=<16 hex digits>\n
//! <payload bytes>
//! ```

use std::fmt;
use std::path::Path;

/// Envelope magic; bump on incompatible header changes.
pub const ARTIFACT_MAGIC: &str = "fleet-artifact/1";

/// Why an artifact failed to load. Every variant names the failing
/// byte region where one exists, so operators can see *where* a file
/// went bad, not just that it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactErrorKind {
    /// The file could not be read at all.
    Io(String),
    /// The header line is missing or malformed.
    Header(String),
    /// The envelope names a different kind than the reader expected.
    WrongKind { expected: String, actual: String },
    /// Fewer payload bytes on disk than the header declares.
    Truncated { expected: u64, actual: u64 },
    /// Payload bytes present but their checksum disagrees with the
    /// header — a torn or bit-flipped write.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// The payload is not valid UTF-8 (all current payloads are JSON).
    Utf8(String),
    /// The payload parsed as text but not as the expected document.
    Payload(String),
}

/// A typed artifact-load failure: which file, which byte, what went
/// wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactError {
    /// The artifact path, as given to the reader.
    pub artifact: String,
    /// Byte offset (from file start) of the failure, where one exists.
    pub offset: Option<u64>,
    /// The failure itself.
    pub kind: ArtifactErrorKind,
}

impl ArtifactError {
    fn new(path: &Path, offset: Option<u64>, kind: ArtifactErrorKind) -> Self {
        ArtifactError {
            artifact: path.display().to_string(),
            offset,
            kind,
        }
    }

    /// True when the file held a structurally valid envelope whose
    /// bytes did not survive — the signature of torn/flipped storage
    /// (as opposed to a wrong path or a foreign file).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self.kind,
            ArtifactErrorKind::Truncated { .. } | ArtifactErrorKind::ChecksumMismatch { .. }
        )
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact {:?}: ", self.artifact)?;
        match &self.kind {
            ArtifactErrorKind::Io(e) => write!(f, "{e}")?,
            ArtifactErrorKind::Header(e) => write!(f, "bad header: {e}")?,
            ArtifactErrorKind::WrongKind { expected, actual } => {
                write!(f, "kind {actual:?}, expected {expected:?}")?
            }
            ArtifactErrorKind::Truncated { expected, actual } => {
                write!(f, "truncated payload: {actual} of {expected} bytes")?
            }
            ArtifactErrorKind::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: payload hashes to {actual:016x}, header says {expected:016x}"
            )?,
            ArtifactErrorKind::Utf8(e) => write!(f, "payload not UTF-8: {e}")?,
            ArtifactErrorKind::Payload(e) => write!(f, "bad payload: {e}")?,
        }
        if let Some(offset) = self.offset {
            write!(f, " at byte {offset}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ArtifactError {}

/// A successfully opened envelope: the payload plus where it started,
/// so payload-level parse errors can still report file-absolute byte
/// offsets.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The verified payload bytes.
    pub payload: Vec<u8>,
    /// File offset of the first payload byte (header length + 1).
    pub payload_offset: u64,
}

/// Renders the envelope for a payload: header line + raw bytes.
pub fn envelope(kind: &str, payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{ARTIFACT_MAGIC} kind={kind} len={} fnv1a64={:016x}\n",
        payload.len(),
        solar_trace::hash::fnv1a_bytes(payload),
    );
    let mut bytes = Vec::with_capacity(header.len() + payload.len());
    bytes.extend_from_slice(header.as_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Writes `payload` under the checksummed envelope, atomically: the
/// file either keeps its old contents or gains the complete new ones,
/// never a torn mix.
pub fn write_artifact_atomic(path: &Path, kind: &str, payload: &[u8]) -> Result<(), String> {
    fleet_obs::fsio::write_atomic(path, &envelope(kind, payload))
}

/// Reads and verifies an envelope, returning the payload.
///
/// # Errors
///
/// A typed [`ArtifactError`] for unreadable files, malformed or foreign
/// headers, truncated payloads, and checksum mismatches. No input —
/// including arbitrary garbage — panics this path.
pub fn read_artifact(path: &Path, expected_kind: &str) -> Result<Artifact, ArtifactError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ArtifactError::new(path, None, ArtifactErrorKind::Io(e.to_string())))?;
    let newline = bytes.iter().position(|&b| b == b'\n').ok_or_else(|| {
        ArtifactError::new(
            path,
            Some(bytes.len() as u64),
            ArtifactErrorKind::Header("no header terminator".to_string()),
        )
    })?;
    let header = std::str::from_utf8(&bytes[..newline]).map_err(|e| {
        ArtifactError::new(
            path,
            Some(e.valid_up_to() as u64),
            ArtifactErrorKind::Header("header not UTF-8".to_string()),
        )
    })?;
    let header_err =
        |msg: String| ArtifactError::new(path, Some(0), ArtifactErrorKind::Header(msg));

    let mut fields = header.split(' ');
    let magic = fields.next().unwrap_or_default();
    if magic != ARTIFACT_MAGIC {
        return Err(header_err(format!(
            "magic {magic:?}, expected {ARTIFACT_MAGIC:?}"
        )));
    }
    let mut kind = None;
    let mut len = None;
    let mut checksum = None;
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| header_err(format!("malformed field {field:?}")))?;
        match key {
            "kind" => kind = Some(value.to_string()),
            "len" => {
                len = Some(
                    value
                        .parse::<u64>()
                        .map_err(|e| header_err(format!("bad len {value:?}: {e}")))?,
                )
            }
            "fnv1a64" => {
                if value.len() != 16 {
                    return Err(header_err(format!("bad fnv1a64 {value:?}: want 16 digits")));
                }
                checksum = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|e| header_err(format!("bad fnv1a64 {value:?}: {e}")))?,
                )
            }
            other => return Err(header_err(format!("unknown field {other:?}"))),
        }
    }
    let kind = kind.ok_or_else(|| header_err("missing kind field".to_string()))?;
    let len = len.ok_or_else(|| header_err("missing len field".to_string()))?;
    let checksum = checksum.ok_or_else(|| header_err("missing fnv1a64 field".to_string()))?;
    if kind != expected_kind {
        return Err(ArtifactError::new(
            path,
            Some(0),
            ArtifactErrorKind::WrongKind {
                expected: expected_kind.to_string(),
                actual: kind,
            },
        ));
    }

    let payload = &bytes[newline + 1..];
    if (payload.len() as u64) != len {
        // Extra bytes are as disqualifying as missing ones (a longer
        // file can still checksum-collide in principle; length is the
        // cheap first gate).
        return Err(ArtifactError::new(
            path,
            Some(bytes.len() as u64),
            ArtifactErrorKind::Truncated {
                expected: len,
                actual: payload.len() as u64,
            },
        ));
    }
    let actual = solar_trace::hash::fnv1a_bytes(payload);
    if actual != checksum {
        return Err(ArtifactError::new(
            path,
            Some(newline as u64 + 1),
            ArtifactErrorKind::ChecksumMismatch {
                expected: checksum,
                actual,
            },
        ));
    }
    Ok(Artifact {
        payload: payload.to_vec(),
        payload_offset: newline as u64 + 1,
    })
}

/// Reads a verified envelope whose payload is a JSON document. Parse
/// failures carry file-absolute byte offsets.
pub fn read_artifact_json(
    path: &Path,
    expected_kind: &str,
) -> Result<fleet_obs::json::Json, ArtifactError> {
    let artifact = read_artifact(path, expected_kind)?;
    let text = std::str::from_utf8(&artifact.payload).map_err(|e| {
        ArtifactError::new(
            path,
            Some(artifact.payload_offset + e.valid_up_to() as u64),
            ArtifactErrorKind::Utf8(e.to_string()),
        )
    })?;
    fleet_obs::json::Json::parse_located(text).map_err(|e| {
        ArtifactError::new(
            path,
            Some(artifact.payload_offset + e.offset as u64),
            ArtifactErrorKind::Payload(e.message),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("harness_artifact_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_payload_bytes() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("shard.artifact");
        let payload = b"{\"answer\": 42}";
        write_artifact_atomic(&path, "shard-run", payload).unwrap();
        let artifact = read_artifact(&path, "shard-run").unwrap();
        assert_eq!(artifact.payload, payload);
        let json = read_artifact_json(&path, "shard-run").unwrap();
        assert_eq!(json.req_index("answer").unwrap(), 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_and_bit_flips_are_typed_errors() {
        let dir = temp_dir("corrupt");
        let path = dir.join("shard.artifact");
        let payload = b"{\"answer\": 42}";
        write_artifact_atomic(&path, "shard-run", payload).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncated payload.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let err = read_artifact(&path, "shard-run").unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(matches!(err.kind, ArtifactErrorKind::Truncated { .. }));
        assert!(err.to_string().contains("at byte"), "{err}");

        // Single bit flip in the payload.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = read_artifact(&path, "shard-run").unwrap_err();
        assert!(
            matches!(err.kind, ArtifactErrorKind::ChecksumMismatch { .. }),
            "{err}"
        );

        // Wrong kind.
        std::fs::write(&path, &full).unwrap();
        let err = read_artifact(&path, "coverage").unwrap_err();
        assert!(matches!(err.kind, ArtifactErrorKind::WrongKind { .. }));

        // Garbage file.
        std::fs::write(&path, b"not an artifact at all").unwrap();
        let err = read_artifact(&path, "shard-run").unwrap_err();
        assert!(matches!(err.kind, ArtifactErrorKind::Header(_)), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payload_parse_errors_carry_file_absolute_offsets() {
        let dir = temp_dir("payload");
        let path = dir.join("shard.artifact");
        // Valid envelope around an invalid JSON payload: the envelope
        // layer accepts it, the JSON layer names the failing byte
        // relative to the file, not the payload.
        let payload = b"{\"a\": 1";
        write_artifact_atomic(&path, "shard-run", payload).unwrap();
        let err = read_artifact_json(&path, "shard-run").unwrap_err();
        let Some(offset) = err.offset else {
            panic!("payload error must carry an offset: {err}");
        };
        let artifact = read_artifact(&path, "shard-run").unwrap();
        assert_eq!(offset, artifact.payload_offset + payload.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
