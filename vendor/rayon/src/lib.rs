//! Offline stand-in for the subset of `rayon` the fleet engine uses:
//! `par_iter()` on slices (plus `into_par_iter()` on ranges), the `map` /
//! `collect` adaptors, and `ThreadPoolBuilder::install` for pinning a
//! thread count.
//!
//! Execution model: a parallel iterator here is an indexable source
//! (`len` + `item(i)`); `collect` drives it with `std::thread::scope`
//! workers pulling indices from a shared atomic counter, then reassembles
//! results in index order. Work stealing, splitting heuristics, and
//! nested pools are intentionally absent — scheduling differs from real
//! rayon, but the observable contract the workspace relies on (same
//! inputs ⇒ same ordered output, any thread count) is identical.

use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads `collect` will use (the installed pool's
/// size, or available parallelism).
pub fn current_num_threads() -> usize {
    let forced = NUM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Starts a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the pool to `num_threads` workers (0 = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override (this shim has no persistent workers;
/// threads are spawned per `collect`).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in force.
    ///
    /// The override is process-global in this shim, so concurrent
    /// `install`s from different threads are serialized by a mutex
    /// (real rayon pools are independent; callers here never nest
    /// installs — a nested install on the same thread would deadlock).
    /// The previous value is restored by an RAII guard, so a panic in
    /// `op` cannot leave the override corrupted.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        static INSTALL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        // A panic inside a previous `op` poisons the lock after the
        // guard below has already restored the override; the poison
        // carries no state here, so clear it.
        let _serialize = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                NUM_THREADS_OVERRIDE.store(self.0, Ordering::Relaxed);
            }
        }
        let _restore = Restore(NUM_THREADS_OVERRIDE.swap(self.num_threads, Ordering::Relaxed));
        op()
    }
}

/// An indexable parallel source.
pub trait ParallelIterator: Sized + Sync {
    /// Item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `index` (called at most once per index).
    fn item(&self, index: usize) -> Self::Item;

    /// Maps items through `f` in parallel.
    fn map<U: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Drives the iterator and collects into `C`.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Conversion out of a driven parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection by running the iterator to completion.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self {
        drive(&par_iter)
    }
}

/// Runs the source across worker threads, preserving index order.
fn drive<P: ParallelIterator>(source: &P) -> Vec<P::Item> {
    let len = source.len();
    let workers = current_num_threads().clamp(1, len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(|i| source.item(i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= len {
                            break;
                        }
                        local.push((index, source.item(index)));
                    }
                    local
                })
            })
            .collect();
        let mut pairs: Vec<(usize, P::Item)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect();
        pairs.sort_by_key(|&(index, _)| index);
        pairs.into_iter().map(|(_, item)| item).collect()
    })
}

/// Parallel iterator over a slice.
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn item(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Map adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P: ParallelIterator, U: Send, F> ParallelIterator for Map<P, F>
where
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item(&self, index: usize) -> U {
        (self.f)(self.base.item(index))
    }
}

/// `.par_iter()` by reference.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a reference).
    type Item: Send + 'data;

    /// Starts parallel iteration over references.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

/// `.into_par_iter()` by value.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;

    /// Starts parallel iteration.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

pub mod prelude {
    //! The imports parallel call sites need.

    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert_ne!(NUM_THREADS_OVERRIDE.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn install_restores_after_panic_and_serializes() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outcome = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(outcome.is_err());
        assert_eq!(NUM_THREADS_OVERRIDE.load(Ordering::Relaxed), 0);
        // Concurrent installs from several threads must each see their
        // own count and leave the override clean afterwards.
        std::thread::scope(|scope| {
            for threads in 1..=4usize {
                scope.spawn(move || {
                    let pool = ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap();
                    let seen = pool.install(current_num_threads);
                    assert_eq!(seen, threads);
                });
            }
        });
        assert_eq!(NUM_THREADS_OVERRIDE.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let input: Vec<u64> = (0..257).collect();
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a: Vec<u64> = one.install(|| input.par_iter().map(|&x| x + 1).collect());
        let b: Vec<u64> = four.install(|| input.par_iter().map(|&x| x + 1).collect());
        assert_eq!(a, b);
    }
}
