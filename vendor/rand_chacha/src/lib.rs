//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the [`ChaCha8Rng`] name.
//!
//! The ChaCha quarter-round/block function follows RFC 7539 (with 8
//! rounds instead of 20), so the stream has the full cryptographic-PRNG
//! statistical quality the workspace's determinism and
//! statistical-moment tests rely on. Output words are the sequential
//! words of each 16-word block — i.e. the ChaCha cipher's keystream
//! read as little-endian `u32`s, which is also upstream `rand_chacha`'s
//! order; combined with the PCG32 `seed_from_u64` expansion in the
//! vendored `rand`, seeded generators here reproduce the upstream
//! streams on the `next_u32`/`next_u64`/`fill_bytes` paths (see
//! `vendor/README.md` for the exact scope of that claim). The order is
//! stable across platforms and releases, which is the property the
//! synthesizer documents (same seed ⇒ same trace, everywhere).
//!
//! # Multi-block core
//!
//! The refill computes `LANES` (= 4) consecutive blocks at once,
//! held word-major as `[[u32; LANES]; 16]` so every quarter-round
//! statement is the same operation applied across 4 independent lanes
//! — the shape LLVM's autovectorizer turns into 128-bit integer SIMD
//! without any arch-specific intrinsics. Lane `l` runs the block
//! function with counter `c + l`; the write-out transposes back to the
//! flat `BUFFER_WORDS`-word buffer in sequential block order, so the
//! emitted word stream is bit-identical to the one-block-at-a-time
//! implementation this replaces (a reference single-block core lives
//! in the tests and pins exactly that).

use rand::{RngCore, SeedableRng};

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;
/// Blocks computed per refill (lanes of the wide quarter-round).
const LANES: usize = 4;
/// Words buffered per refill.
const BUFFER_WORDS: usize = BLOCK_WORDS * LANES;

/// A deterministic ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the block state; rebuilt per refill.
    key: [u32; 8],
    /// 64-bit block counter (of the *next* block to compute).
    counter: u64,
    /// Stream id (nonce words).
    stream: u64,
    /// Current output words: [`LANES`] consecutive blocks, flat, in
    /// sequential keystream order.
    buffer: [u32; BUFFER_WORDS],
    /// Next unread word in `buffer`; `BUFFER_WORDS` forces a refill.
    index: usize,
}

/// One quarter-round step applied element-wise across all lanes. Each
/// statement is a loop over the 4 independent lanes, which LLVM
/// collapses to vector adds/xors/rotates.
// The explicit `state[row][l]` index form is the shape the
// autovectorizer recognizes across the four distinct rows; clippy's
// iterator rewrite would only cover single-row loops.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn wide_quarter_round(
    state: &mut [[u32; LANES]; BLOCK_WORDS],
    a: usize,
    b: usize,
    c: usize,
    d: usize,
) {
    for l in 0..LANES {
        state[a][l] = state[a][l].wrapping_add(state[b][l]);
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_left(16);
    }
    for l in 0..LANES {
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_left(12);
    }
    for l in 0..LANES {
        state[a][l] = state[a][l].wrapping_add(state[b][l]);
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_left(8);
    }
    for l in 0..LANES {
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_left(7);
    }
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // Word-major: state[w][l] is word w of lane l. All 16 words are
        // identical across lanes except the counter low/high pair.
        let mut state = [[0u32; LANES]; BLOCK_WORDS];
        let template: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            0, // per-lane counter lo, filled below
            0, // per-lane counter hi, filled below
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        for (w, word) in template.iter().enumerate() {
            state[w] = [*word; LANES];
        }
        for (l, lane_counter) in (0..LANES).map(|l| (l, self.counter.wrapping_add(l as u64))) {
            state[12][l] = lane_counter as u32;
            state[13][l] = (lane_counter >> 32) as u32;
        }
        let initial = state;
        for _ in 0..4 {
            // Column rounds.
            wide_quarter_round(&mut state, 0, 4, 8, 12);
            wide_quarter_round(&mut state, 1, 5, 9, 13);
            wide_quarter_round(&mut state, 2, 6, 10, 14);
            wide_quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            wide_quarter_round(&mut state, 0, 5, 10, 15);
            wide_quarter_round(&mut state, 1, 6, 11, 12);
            wide_quarter_round(&mut state, 2, 7, 8, 13);
            wide_quarter_round(&mut state, 3, 4, 9, 14);
        }
        // Transpose back to sequential keystream order: lane l's words
        // occupy buffer[l*16 .. l*16+16].
        for w in 0..BLOCK_WORDS {
            for l in 0..LANES {
                self.buffer[l * BLOCK_WORDS + w] = state[w][l].wrapping_add(initial[w][l]);
            }
        }
        self.counter = self.counter.wrapping_add(LANES as u64);
        self.index = 0;
    }

    /// Selects an independent keystream for the same key.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BUFFER_WORDS;
    }

    /// The number of keystream words produced so far (the position the
    /// next `next_u32` reads). Mirrors upstream `rand_chacha`'s
    /// `get_word_pos`, which callers use to account keystream blocks.
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * BLOCK_WORDS as u128 - (BUFFER_WORDS - self.index) as u128
    }

    /// Fills `dest` with the next `dest.len()` keystream words — the
    /// bulk equivalent of `dest.len()` successive [`RngCore::next_u32`]
    /// calls, serviced by whole-buffer copies between refills.
    pub fn fill_u32s(&mut self, dest: &mut [u32]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.refill();
            }
            let available = BUFFER_WORDS - self.index;
            let take = available.min(dest.len() - filled);
            dest[filled..filled + take]
                .copy_from_slice(&self.buffer[self.index..self.index + take]);
            self.index += take;
            filled += take;
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Explicit `fill_bytes`: little-endian bytes of successive
    /// keystream words, with a trailing partial chunk consuming one
    /// whole word — byte-for-byte the semantics of the vendored
    /// `rand` trait default, served from the buffered words directly.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            if self.index >= BUFFER_WORDS {
                self.refill();
            }
            chunk.copy_from_slice(&self.buffer[self.index].to_le_bytes());
            self.index += 1;
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// The one-block-at-a-time reference core this multi-block
    /// implementation replaced. Pins that the interleaved refill emits
    /// the exact same word order.
    fn reference_block(key: &[u32; 8], counter: u64, stream: u64) -> [u32; BLOCK_WORDS] {
        fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            stream as u32,
            (stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        state
    }

    #[test]
    fn multi_block_core_matches_single_block_reference() {
        for seed in [0u64, 42, 0xDEAD_BEEF] {
            for stream in [0u64, 7] {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                rng.set_stream(stream);
                let key = rng.key;
                // 8 blocks = two full refills of 4 lanes each.
                let produced: Vec<u32> = (0..8 * BLOCK_WORDS).map(|_| rng.next_u32()).collect();
                let mut expected = Vec::new();
                for block in 0..8u64 {
                    expected.extend(reference_block(&key, block, stream));
                }
                assert_eq!(produced, expected, "seed {seed} stream {stream}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(1);
        let xs: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut copy = rng.clone();
        assert_eq!(rng.next_u64(), copy.next_u64());
    }

    #[test]
    fn fill_u32s_matches_next_u32_at_every_offset() {
        // At every starting offset within the 64-word buffer, and for
        // lengths that land short of, on, and past refill boundaries,
        // the bulk fill is the same words as repeated next_u32.
        for offset in 0..BUFFER_WORDS {
            for len in [0usize, 1, 5, 16, 63, 64, 65, 131] {
                let mut bulk = ChaCha8Rng::seed_from_u64(77);
                let mut scalar = ChaCha8Rng::seed_from_u64(77);
                for _ in 0..offset {
                    bulk.next_u32();
                    scalar.next_u32();
                }
                let mut got = vec![0u32; len];
                bulk.fill_u32s(&mut got);
                let expected: Vec<u32> = (0..len).map(|_| scalar.next_u32()).collect();
                assert_eq!(got, expected, "offset {offset} len {len}");
                // Both generators sit at the same stream position after.
                assert_eq!(
                    bulk.next_u32(),
                    scalar.next_u32(),
                    "offset {offset} len {len}"
                );
            }
        }
    }

    #[test]
    fn fill_bytes_pins_byte_order_against_word_stream() {
        let mut words = ChaCha8Rng::seed_from_u64(11);
        let expected_words: Vec<u32> = (0..4).map(|_| words.next_u32()).collect();

        // 11 bytes = 2 whole words + a partial chunk that consumes a
        // third whole word (upper byte discarded).
        let mut bytes = ChaCha8Rng::seed_from_u64(11);
        let mut buf = [0u8; 11];
        bytes.fill_bytes(&mut buf);
        let mut expected = Vec::new();
        expected.extend(expected_words[0].to_le_bytes());
        expected.extend(expected_words[1].to_le_bytes());
        expected.extend(&expected_words[2].to_le_bytes()[..3]);
        assert_eq!(&buf[..], &expected[..]);
        // The partial chunk consumed all of word 2: the next word out
        // is word 3 of the stream.
        assert_eq!(bytes.next_u32(), expected_words[3]);
    }

    #[test]
    fn word_pos_counts_produced_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(rng.get_word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 1);
        rng.next_u64();
        assert_eq!(rng.get_word_pos(), 3);
        let mut bulk = vec![0u32; 130];
        rng.fill_u32s(&mut bulk);
        assert_eq!(rng.get_word_pos(), 133);
    }
}
