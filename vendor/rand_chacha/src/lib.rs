//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the [`ChaCha8Rng`] name.
//!
//! The ChaCha quarter-round/block function follows RFC 7539 (with 8
//! rounds instead of 20), so the stream has the full cryptographic-PRNG
//! statistical quality the workspace's determinism and
//! statistical-moment tests rely on. Output words are the sequential
//! words of each 16-word block — i.e. the ChaCha cipher's keystream
//! read as little-endian `u32`s, which is also upstream `rand_chacha`'s
//! order; combined with the PCG32 `seed_from_u64` expansion in the
//! vendored `rand`, seeded generators here reproduce the upstream
//! streams on the `next_u32`/`next_u64` paths (see `vendor/README.md`
//! for the exact scope of that claim). The order is stable across
//! platforms and releases, which is the property the synthesizer
//! documents (same seed ⇒ same trace, everywhere).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and stream constants; rebuilt per block.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Stream id (nonce words).
    stream: u64,
    /// Current output block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent keystream for the same key.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BLOCK_WORDS;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(1);
        let xs: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut copy = rng.clone();
        assert_eq!(rng.next_u64(), copy.next_u64());
    }
}
