//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: [`RngCore`], [`Rng::gen`] over the standard distribution, and
//! [`SeedableRng`] with the `seed_from_u64` entry point.
//!
//! The build environment has no access to a crates registry, so the real
//! `rand` cannot be fetched; this crate keeps the call sites source
//! compatible (same trait names, same method semantics) so swapping the
//! genuine dependency back in is a one-line manifest change. See
//! `vendor/README.md` for the full policy.

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from an RNG under the standard distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, exactly as rand 0.8's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    // No `gen_range` on purpose: upstream rand 0.8 implements it with
    // widening-multiply rejection sampling, and a naive modulo version
    // here would be biased *and* consume the stream differently —
    // silently breaking the byte-compatibility story when the real
    // crate is restored. Add it only by porting upstream's algorithm.
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with the PCG32
    /// stream rand_core 0.6's default implementation uses — bit-for-bit
    /// the same seed bytes, so seeded generators here reproduce the
    /// upstream streams.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
