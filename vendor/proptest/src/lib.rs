//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, [`Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, numeric range strategies, tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest, by design of this offline subset:
//!
//! * no shrinking — a failing case panics with the sampled inputs left to
//!   the assertion message;
//! * deterministic seeding — each test function derives its case seeds
//!   from an FNV-1a hash of its module path and name, so failures
//!   reproduce exactly across runs and machines.

use std::rc::Rc;

/// Run configuration: how many random cases each property executes.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 — small, fast, and statistically fine for test-case
/// generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over a string, used to give every property its own seed stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy (single-threaded; test bodies run on one
/// thread here).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; `alts` must be non-empty.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union(alts)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // Scale a [0, 1] draw (2^53 inclusive buckets) onto [lo, hi].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 only for the full u64/i64 domain; treat as raw.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Lengths acceptable to [`vec()`]: an exact `usize` or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// A strategy for `Vec<S::Value>` with a strategy-drawn length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `len` (exact or range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Everything property tests import.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests.
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name (no shrinking here, so a
/// failure simply panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(f64),
        B(u32),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3usize..=7, s in -5i32..5) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..=7).contains(&n));
            prop_assert!((-5..5).contains(&s));
        }

        #[test]
        fn flat_map_len_matches(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n * 3).prop_map(move |v| (n, v))
        })) {
            let (n, v) = v;
            prop_assert_eq!(v.len(), n * 3);
        }

        #[test]
        fn oneof_covers_arms(op in prop_oneof![
            (0.0f64..10.0).prop_map(Op::A),
            (0u32..10).prop_map(Op::B),
        ]) {
            match op {
                Op::A(x) => prop_assert!(x < 10.0),
                Op::B(n) => prop_assert!(n < 10),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::fnv1a("seed"));
        let mut b = crate::TestRng::new(crate::fnv1a("seed"));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
