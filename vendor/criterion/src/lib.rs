//! Offline stand-in for the subset of Criterion.rs this workspace's
//! benches use: groups, throughput annotation, `bench_function` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark closure is warmed up once, then
//! timed over adaptive batches until ~200 ms or 50 batches have elapsed,
//! and the mean per-iteration wall time is printed together with any
//! declared throughput. No statistics, plots, or baselines — this exists
//! so `cargo bench` runs and reports honest ballpark numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, recording the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call (also primes caches/allocations).
        std::hint::black_box(routine());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 50 {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = start.elapsed() / self.iters as u32;
    }
}

fn print_result(group: Option<&str>, id: &BenchmarkId, b: &Bencher, tp: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{}", id.0),
        None => id.0.clone(),
    };
    let mean_s = b.mean.as_secs_f64();
    let rate = tp.map(|t| match t {
        Throughput::Elements(n) if mean_s > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean_s)
        }
        Throughput::Bytes(n) if mean_s > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean_s)
        }
        _ => String::new(),
    });
    println!(
        "bench {name:<48} {:>12.3?} /iter ({} iters){}",
        b.mean,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        print_result(Some(&self.name), &id, &b, self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        print_result(Some(&self.name), &id, &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        print_result(None, &id, &b, None);
        self
    }
}

/// Collects benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
