//! Fleet scorecard: evaluate a predictor family × power-manager ×
//! scenario matrix in parallel and print the ranked results.
//!
//! Run with (seed and thread count optional):
//!
//! ```text
//! cargo run --release --example fleet_scorecard -- 42 8
//! ```
//!
//! The run is deterministic for a given seed: the scorecard JSON (also
//! written to `target/fleet_scorecard.json`) is byte-identical across
//! runs and thread counts.

use scenario_fleet::{Catalog, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(42);
    let threads: Option<usize> = args.next().map(|s| s.parse()).transpose()?;

    // The whole built-in catalog, the extended predictor family (the
    // guideline five plus the Q16 kernel and the causal dynamic
    // selector), 3 managers.
    let catalog = Catalog::builtin();
    let matrix = FleetMatrix::new(
        PredictorSpec::extended_family(),
        ManagerSpec::default_set(),
        catalog.scenarios().to_vec(),
    )?;
    println!(
        "fleet: {} predictors × {} managers × {} scenarios = {} jobs (seed {seed})",
        matrix.predictors.len(),
        matrix.managers.len(),
        matrix.scenarios.len(),
        matrix.job_count(),
    );
    println!("scenarios: {}\n", catalog.names().join(", "));

    let mut engine = FleetEngine::new(seed);
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }
    let started = std::time::Instant::now();
    let result = engine.run(&matrix)?;
    println!(
        "evaluated {} jobs in {:.2?} on {} threads\n",
        result.outcomes.len(),
        started.elapsed(),
        threads.unwrap_or_else(rayon::current_num_threads),
    );

    println!("=== overall ranking (score = 2·brownout + waste + 0.5·MAPE) ===");
    print!("{}", result.scorecard.render_text());

    println!("\n=== per-scenario winners ===");
    for ranking in &result.scorecard.per_scenario {
        let best = &ranking.entries[0];
        println!(
            "{:<24} {} + {}  (MAPE {:.2}%, brownout {:.2}%)",
            ranking.scenario,
            best.predictor,
            best.manager,
            best.mape * 100.0,
            best.brownout_rate * 100.0,
        );
    }

    let json = result.scorecard.to_json_string();
    let path = std::path::Path::new("target").join("fleet_scorecard.json");
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("\nscorecard JSON written to {}", path.display());
    }

    let winner = result.scorecard.winner().expect("non-empty matrix");
    println!(
        "\nwinner: {} + {} (score {:.3})",
        winner.predictor, winner.manager, winner.score
    );
    Ok(())
}
