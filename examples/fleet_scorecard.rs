//! Fleet scorecard: evaluate a predictor family × power-manager ×
//! scenario matrix through the streaming engine pipeline and print the
//! ranked results.
//!
//! Run with (all arguments optional):
//!
//! ```text
//! cargo run --release --example fleet_scorecard -- 42 8
//! cargo run --release --example fleet_scorecard -- 42 --shards 4
//! cargo run --release --example fleet_scorecard -- --smoke
//! cargo run --release --example fleet_scorecard -- --generated 64 --smoke
//! cargo run --release --example fleet_scorecard -- --shard 0/2 --shard-out s0.artifact --smoke
//! ```
//!
//! * positional args: master seed, then worker-thread count;
//! * `--shards N` — run the sharded reduction in-process: shard JSONs
//!   plus the manifest land in `target/`, and the example verifies the
//!   merged scorecard is byte-identical to the monolithic one;
//! * `--smoke` — a fast matrix that still spans a multi-year horizon:
//!   four regimes including the 3-year la-niña entry, evaluated under a
//!   bounded trace-cache budget so the multi-year scenario runs
//!   streamed (no full-horizon trace in memory);
//! * `--generated N` — replace the builtin catalog with `N` scenarios
//!   from the parameterized catalog generator (seeded by the master
//!   seed; up to ~290 regimes across five climate families), evaluated
//!   under the bounded budget so most of the fleet streams. With
//!   `--smoke`, the predictor family shrinks to the guideline set.
//! * `--report PATH` — attach a recording collector and write the full
//!   run report (deterministic ledger + phase-span timing) as JSON to
//!   `PATH`, plus a text summary to stdout. Collection does not move a
//!   byte of the scorecard output.
//!
//! **Worker mode** — `--shard i/N --shard-out PATH` runs one shard of
//! the matrix through the fault-tolerant harness protocol instead:
//! the shard's rankings, manifest, quarantined scenarios, and ledger
//! land at `PATH` as a checksummed, atomically-written artifact (see
//! `fleet_harness`). `--chaos SEED --attempt K` adds deterministic
//! fault injection. The matrix flags map to named workloads: plain
//! `--smoke` is the `smoke` workload, `--generated N` is
//! `generated:N` (extended predictor family), and no flag is the full
//! `builtin` catalog.
//!
//! The run is deterministic for a given seed: the scorecard JSON (also
//! written to `target/fleet_scorecard.json`) is byte-identical across
//! runs, thread counts, shard counts, and trace-cache policies.
//!
//! Exit codes follow `fleet_harness::exit`: 0 success, 3 failure,
//! 64 usage.

use fleet_harness::worker::{ChaosSpec, WorkerConfig};
use fleet_harness::{exit, run_worker, Workload, WorkloadKind};
use scenario_fleet::{
    Catalog, CatalogGenerator, Collector, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec,
    RunReport, Scorecard, TraceCachePolicy,
};

#[derive(Default)]
struct Args {
    seed: u64,
    threads: Option<usize>,
    shards: Option<usize>,
    smoke: bool,
    generated: Option<usize>,
    report: Option<std::path::PathBuf>,
    shard: Option<(usize, usize)>,
    shard_out: Option<std::path::PathBuf>,
    chaos: Option<u64>,
    attempt: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        ..Args::default()
    };
    let mut positional: Vec<u64> = Vec::new();
    let mut iter = std::env::args().skip(1);
    let next = |iter: &mut dyn Iterator<Item = String>, flag: &str| {
        iter.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--shards" => {
                args.shards = Some(
                    next(&mut iter, "--shards")?
                        .parse()
                        .map_err(|e| format!("bad shard count: {e}"))?,
                )
            }
            "--generated" => {
                args.generated = Some(
                    next(&mut iter, "--generated")?
                        .parse()
                        .map_err(|e| format!("bad generated count: {e}"))?,
                )
            }
            "--report" => args.report = Some(next(&mut iter, "--report")?.into()),
            "--shard" => {
                let spec = next(&mut iter, "--shard")?;
                let (index, count) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants i/N, got {spec:?}"))?;
                args.shard = Some((
                    index.parse().map_err(|e| format!("bad shard index: {e}"))?,
                    count.parse().map_err(|e| format!("bad shard count: {e}"))?,
                ));
            }
            "--shard-out" => args.shard_out = Some(next(&mut iter, "--shard-out")?.into()),
            "--chaos" => {
                args.chaos = Some(
                    next(&mut iter, "--chaos")?
                        .parse()
                        .map_err(|e| format!("bad chaos seed: {e}"))?,
                )
            }
            "--attempt" => {
                args.attempt = next(&mut iter, "--attempt")?
                    .parse()
                    .map_err(|e| format!("bad attempt: {e}"))?
            }
            other => positional.push(
                other
                    .parse()
                    .map_err(|e| format!("unexpected argument {other:?}: {e}"))?,
            ),
        }
    }
    if let Some(&seed) = positional.first() {
        args.seed = seed;
    }
    args.threads = positional.get(1).map(|&t| t as usize);
    Ok(args)
}

/// Worker mode: one shard, through the harness protocol.
fn run_shard(args: &Args) -> Result<i32, String> {
    let (shard_index, shard_count) = args.shard.expect("worker mode requires --shard");
    let out_path = args
        .shard_out
        .clone()
        .ok_or("--shard requires --shard-out")?;
    let kind = match args.generated {
        Some(count) => WorkloadKind::Generated { count },
        None if args.smoke => WorkloadKind::Smoke,
        None => WorkloadKind::Builtin,
    };
    let mut workload = Workload::new(args.seed, kind);
    if let Some(threads) = args.threads {
        workload = workload.with_threads(threads);
    }
    run_worker(
        &workload,
        &WorkerConfig {
            shard_index,
            shard_count,
            out_path,
            chaos: args.chaos.map(|seed| ChaosSpec {
                seed,
                attempt: args.attempt,
            }),
            fail: false,
        },
    )
}

fn run(args: Args) -> Result<i32, String> {
    if args.shard.is_some() {
        return run_shard(&args);
    }
    let seed = args.seed;
    let threads = args.threads;

    let catalog = Catalog::builtin();
    let (scenarios, predictors) = if let Some(count) = args.generated {
        // The parameterized catalog: `count` regimes expanded from the
        // master seed, round-robin across the five climate families.
        let generator = CatalogGenerator::new(seed);
        println!(
            "generated catalog: {count} of {} template regimes (seed {seed})",
            generator.total()
        );
        (
            generator.generate(count)?.scenarios().to_vec(),
            if args.smoke {
                PredictorSpec::guideline_family()
            } else {
                PredictorSpec::extended_family()
            },
        )
    } else if args.smoke {
        // Four regimes spanning desert → polar plus the 3-year la-niña
        // anomaly — the multi-year entry is the point of the smoke run.
        let names = [
            "desert-clear-sky",
            "marine-fog",
            "arctic-winter",
            "la-nina-triennium",
        ];
        (
            names
                .iter()
                .map(|name| catalog.get(name).expect("builtin").clone())
                .collect::<Vec<_>>(),
            PredictorSpec::guideline_family(),
        )
    } else {
        (
            catalog.scenarios().to_vec(),
            PredictorSpec::extended_family(),
        )
    };
    let matrix = FleetMatrix::new(predictors, ManagerSpec::default_set(), scenarios)?;
    println!(
        "fleet: {} predictors × {} managers × {} scenarios = {} jobs (seed {seed})",
        matrix.predictors.len(),
        matrix.managers.len(),
        matrix.scenarios.len(),
        matrix.job_count(),
    );

    // A bounded trace cache routes the large (multi-year) scenarios
    // through the streamed path; results are byte-identical either way.
    // The smoke budget is tight enough that the 3-year la-niña entry
    // (≈2.4 MiB of 5-minute samples) must stream.
    let budget: u64 = if args.smoke { 2 << 20 } else { 4 << 20 };
    let collector = if args.report.is_some() {
        Collector::recording()
    } else {
        Collector::noop()
    };
    let mut engine = FleetEngine::new(seed)
        .with_trace_cache(TraceCachePolicy::bounded(budget))
        .with_collector(collector.clone());
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }

    let started = std::time::Instant::now();
    // One shared cache: the optional sharded pass below answers every
    // job from it instead of re-evaluating the matrix.
    let mut cache = engine.new_cache();
    let result = engine.run_cached(&matrix, &mut cache)?;
    println!(
        "evaluated {} jobs in {:.2?} on {} threads — {} streamed (trace cache ≤ {} MiB), {} materialized",
        result.outcomes.len(),
        started.elapsed(),
        threads
            .map(|t| t.to_string())
            .unwrap_or_else(|| "default".to_string()),
        result.streamed_jobs,
        budget >> 20,
        result.outcomes.len() - result.streamed_jobs,
    );

    if let Some(shard_count) = args.shards {
        let sharded = engine.run_sharded_cached(&matrix, shard_count, &mut cache)?;
        assert_eq!(
            sharded.cached_jobs,
            matrix.job_count(),
            "the sharded pass must be answered entirely from the warm cache"
        );
        let merged =
            Scorecard::merge_shards_observed(&sharded.manifest, &sharded.shards, &collector)?;
        assert_eq!(
            merged.to_json_string(),
            result.scorecard.to_json_string(),
            "merged shards must reproduce the monolithic scorecard byte-for-byte"
        );
        let manifest_path = std::path::Path::new("target").join("fleet_manifest.json");
        fleet_obs::fsio::write_atomic_str(
            &manifest_path,
            &sharded.manifest.to_json().render_pretty(),
        )?;
        for shard in &sharded.shards {
            let path = std::path::Path::new("target")
                .join(format!("fleet_shard_{}.json", shard.shard_index));
            fleet_obs::fsio::write_atomic_str(&path, &shard.to_json().render_pretty())?;
        }
        println!(
            "sharded into {shard_count} shards (target/fleet_manifest.json + shards); \
             merge verified byte-identical"
        );
    }

    println!("\n=== overall ranking (score = 2·brownout + waste + 0.5·MAPE) ===");
    print!("{}", result.scorecard.render_text());

    println!("\n=== per-scenario winners ===");
    for ranking in &result.scorecard.per_scenario {
        let best = &ranking.entries[0];
        println!(
            "{:<24} {} + {}  (MAPE {:.2}%, brownout {:.2}%)",
            ranking.scenario,
            best.predictor,
            best.manager,
            best.mape * 100.0,
            best.brownout_rate * 100.0,
        );
    }

    let json = result.scorecard.to_json_string();
    let path = std::path::Path::new("target").join("fleet_scorecard.json");
    fleet_obs::fsio::write_atomic_str(&path, &json)?;
    println!("\nscorecard JSON written to {}", path.display());

    let winner = result.scorecard.winner().expect("non-empty matrix");
    println!(
        "\nwinner: {} + {} (score {:.3})",
        winner.predictor, winner.manager, winner.score
    );

    if let Some(path) = args.report {
        let report = collector.report();
        // Round-trip before writing: a report that does not parse is a
        // bug, and the CI step relies on this check.
        RunReport::from_json_str(&report.to_json_string())?;
        report.write_atomic(&path)?;
        println!("\n=== run report (written to {}) ===", path.display());
        print!("{}", report.render_text());
    }
    Ok(exit::SUCCESS)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet_scorecard: {e}");
            std::process::exit(exit::USAGE);
        }
    };
    match run(args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("fleet_scorecard: {e}");
            std::process::exit(exit::FAILED);
        }
    }
}
