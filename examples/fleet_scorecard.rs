//! Fleet scorecard: evaluate a predictor family × power-manager ×
//! scenario matrix through the streaming engine pipeline and print the
//! ranked results.
//!
//! Run with (all arguments optional):
//!
//! ```text
//! cargo run --release --example fleet_scorecard -- 42 8
//! cargo run --release --example fleet_scorecard -- 42 --shards 4
//! cargo run --release --example fleet_scorecard -- --smoke
//! cargo run --release --example fleet_scorecard -- --generated 64 --smoke
//! ```
//!
//! * positional args: master seed, then worker-thread count;
//! * `--shards N` — run the sharded reduction: shard JSONs plus the
//!   manifest land in `target/`, and the example verifies the merged
//!   scorecard is byte-identical to the monolithic one;
//! * `--smoke` — a fast matrix that still spans a multi-year horizon:
//!   four regimes including the 3-year la-niña entry, evaluated under a
//!   bounded trace-cache budget so the multi-year scenario runs
//!   streamed (no full-horizon trace in memory);
//! * `--generated N` — replace the builtin catalog with `N` scenarios
//!   from the parameterized catalog generator (seeded by the master
//!   seed; up to ~290 regimes across five climate families), evaluated
//!   under the bounded budget so most of the fleet streams. With
//!   `--smoke`, the predictor family shrinks to the guideline set.
//! * `--report PATH` — attach a recording collector and write the full
//!   run report (deterministic ledger + phase-span timing) as JSON to
//!   `PATH`, plus a text summary to stdout. Collection does not move a
//!   byte of the scorecard output.
//!
//! The run is deterministic for a given seed: the scorecard JSON (also
//! written to `target/fleet_scorecard.json`) is byte-identical across
//! runs, thread counts, shard counts, and trace-cache policies.

use scenario_fleet::{
    Catalog, CatalogGenerator, Collector, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec,
    RunReport, Scorecard, TraceCachePolicy,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut positional: Vec<u64> = Vec::new();
    let mut shards: Option<usize> = None;
    let mut smoke = false;
    let mut generated: Option<usize> = None;
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--shards" => {
                let count = args.next().ok_or("--shards needs a count")?;
                shards = Some(count.parse()?);
            }
            "--generated" => {
                let count = args.next().ok_or("--generated needs a count")?;
                generated = Some(count.parse()?);
            }
            "--report" => {
                let path = args.next().ok_or("--report needs a path")?;
                report_path = Some(path.into());
            }
            other => positional.push(other.parse()?),
        }
    }
    let seed = positional.first().copied().unwrap_or(42);
    let threads = positional.get(1).map(|&t| t as usize);

    let catalog = Catalog::builtin();
    let (scenarios, predictors) = if let Some(count) = generated {
        // The parameterized catalog: `count` regimes expanded from the
        // master seed, round-robin across the five climate families.
        let generator = CatalogGenerator::new(seed);
        println!(
            "generated catalog: {count} of {} template regimes (seed {seed})",
            generator.total()
        );
        (
            generator.generate(count)?.scenarios().to_vec(),
            if smoke {
                PredictorSpec::guideline_family()
            } else {
                PredictorSpec::extended_family()
            },
        )
    } else if smoke {
        // Four regimes spanning desert → polar plus the 3-year la-niña
        // anomaly — the multi-year entry is the point of the smoke run.
        let names = [
            "desert-clear-sky",
            "marine-fog",
            "arctic-winter",
            "la-nina-triennium",
        ];
        (
            names
                .iter()
                .map(|name| catalog.get(name).expect("builtin").clone())
                .collect::<Vec<_>>(),
            PredictorSpec::guideline_family(),
        )
    } else {
        (
            catalog.scenarios().to_vec(),
            PredictorSpec::extended_family(),
        )
    };
    let matrix = FleetMatrix::new(predictors, ManagerSpec::default_set(), scenarios)?;
    println!(
        "fleet: {} predictors × {} managers × {} scenarios = {} jobs (seed {seed})",
        matrix.predictors.len(),
        matrix.managers.len(),
        matrix.scenarios.len(),
        matrix.job_count(),
    );

    // A bounded trace cache routes the large (multi-year) scenarios
    // through the streamed path; results are byte-identical either way.
    // The smoke budget is tight enough that the 3-year la-niña entry
    // (≈2.4 MiB of 5-minute samples) must stream.
    let budget: u64 = if smoke { 2 << 20 } else { 4 << 20 };
    let collector = if report_path.is_some() {
        Collector::recording()
    } else {
        Collector::noop()
    };
    let mut engine = FleetEngine::new(seed)
        .with_trace_cache(TraceCachePolicy::bounded(budget))
        .with_collector(collector.clone());
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }

    let started = std::time::Instant::now();
    // One shared cache: the optional sharded pass below answers every
    // job from it instead of re-evaluating the matrix.
    let mut cache = engine.new_cache();
    let result = engine.run_cached(&matrix, &mut cache)?;
    println!(
        "evaluated {} jobs in {:.2?} on {} threads — {} streamed (trace cache ≤ {} MiB), {} materialized",
        result.outcomes.len(),
        started.elapsed(),
        threads.unwrap_or_else(rayon::current_num_threads),
        result.streamed_jobs,
        budget >> 20,
        result.outcomes.len() - result.streamed_jobs,
    );

    if let Some(shard_count) = shards {
        let sharded = engine.run_sharded_cached(&matrix, shard_count, &mut cache)?;
        assert_eq!(
            sharded.cached_jobs,
            matrix.job_count(),
            "the sharded pass must be answered entirely from the warm cache"
        );
        let merged =
            Scorecard::merge_shards_observed(&sharded.manifest, &sharded.shards, &collector)?;
        assert_eq!(
            merged.to_json_string(),
            result.scorecard.to_json_string(),
            "merged shards must reproduce the monolithic scorecard byte-for-byte"
        );
        std::fs::create_dir_all("target")?;
        let manifest_path = std::path::Path::new("target").join("fleet_manifest.json");
        std::fs::write(&manifest_path, sharded.manifest.to_json().render_pretty())?;
        for shard in &sharded.shards {
            let path = std::path::Path::new("target")
                .join(format!("fleet_shard_{}.json", shard.shard_index));
            std::fs::write(&path, shard.to_json().render_pretty())?;
        }
        println!(
            "sharded into {shard_count} shards (target/fleet_manifest.json + shards); \
             merge verified byte-identical"
        );
    }

    println!("\n=== overall ranking (score = 2·brownout + waste + 0.5·MAPE) ===");
    print!("{}", result.scorecard.render_text());

    println!("\n=== per-scenario winners ===");
    for ranking in &result.scorecard.per_scenario {
        let best = &ranking.entries[0];
        println!(
            "{:<24} {} + {}  (MAPE {:.2}%, brownout {:.2}%)",
            ranking.scenario,
            best.predictor,
            best.manager,
            best.mape * 100.0,
            best.brownout_rate * 100.0,
        );
    }

    let json = result.scorecard.to_json_string();
    let path = std::path::Path::new("target").join("fleet_scorecard.json");
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("\nscorecard JSON written to {}", path.display());
    }

    let winner = result.scorecard.winner().expect("non-empty matrix");
    println!(
        "\nwinner: {} + {} (score {:.3})",
        winner.predictor, winner.manager, winner.score
    );

    if let Some(path) = report_path {
        let report = collector.report();
        let text = report.to_json_string();
        // Round-trip before writing: a report that does not parse is a
        // bug, and the CI step relies on this check.
        RunReport::from_json_str(&text)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, &text)?;
        println!("\n=== run report (written to {}) ===", path.display());
        print!("{}", report.render_text());
    }
    Ok(())
}
