//! Hot-path perf trajectory runner: measures the three numbers the
//! single-pass engine PR pins — synthesis ns/slot, generated-catalog
//! scorecard throughput, and the cost of one tuner refinement round —
//! and emits them as machine-readable JSON (`BENCH_PR5.json`).
//!
//! ```text
//! cargo run --release --example bench_pr5                      # print JSON
//! cargo run --release --example bench_pr5 -- --out BENCH_PR5.json
//! cargo run --release --example bench_pr5 -- --baseline old.json --out BENCH_PR5.json
//! cargo run --release --example bench_pr5 -- --smoke           # tiny CI run
//! ```
//!
//! * `--smoke` shrinks every workload to seconds-scale so CI keeps the
//!   hot paths compiling and running without timing assertions;
//! * `--baseline FILE` embeds a previously captured run (same schema)
//!   under `"baseline"` and adds a `"speedup"` section, producing the
//!   before/after table the README's Performance section renders.
//!
//! Wall times are machine-dependent; only the *ratios* between runs on
//! the same machine are meaningful, which is why the baseline is an
//! input instead of a constant.

use scenario_fleet::{
    CatalogGenerator, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, TraceCachePolicy,
};
use solar_synth::{Site, TraceGenerator};
use solar_trace::SlotsPerDay;
use std::error::Error;
use std::time::Instant;

/// Seed shared with the golden 200-regime pin (tests/generated_catalog.rs).
const GOLDEN_SEED: u64 = 2026;

struct Measurements {
    synthesis_ns_per_slot: f64,
    synthesis_slots: usize,
    scorecard_regimes: usize,
    scorecard_wall_s: f64,
    scorecard_slots_per_s: f64,
    scorecard_scenario_passes: usize,
    tuner_round_candidates: usize,
    tuner_round_wall_s: f64,
    tuner_round_scenario_passes: usize,
}

/// Repeats of every timed section; the minimum is reported (standard
/// practice on a shared machine — the minimum is the least-disturbed
/// run).
const REPEATS: usize = 3;

fn min_of(mut measure: impl FnMut() -> f64) -> f64 {
    (0..REPEATS)
        .map(|_| measure())
        .fold(f64::INFINITY, f64::min)
}

fn measure_synthesis(days: usize) -> (f64, usize) {
    let generator = TraceGenerator::new(Site::Hsu.config(), 0xBE);
    let n = SlotsPerDay::new(48).expect("48 is valid");
    // Warm-up pass, then the timed passes.
    let slots: usize = generator.slot_stream(days, n).expect("days > 0").count();
    let wall = min_of(|| {
        let started = Instant::now();
        let mut sum = 0.0;
        for slot in generator.slot_stream(days, n).expect("days > 0") {
            sum += slot.mean_power;
        }
        assert!(sum.is_finite());
        started.elapsed().as_secs_f64()
    });
    (wall * 1e9 / slots as f64, slots)
}

/// The generated-catalog scorecard workload: `regimes` scenarios from
/// the golden seed × the guideline predictor family × the default
/// manager set under the 4 MiB trace budget — the matrix
/// `fleet_scorecard --generated 200 --smoke` evaluates.
fn measure_scorecard(regimes: usize) -> (usize, f64, f64, usize) {
    let catalog = CatalogGenerator::new(GOLDEN_SEED)
        .generate(regimes)
        .expect("generator regimes");
    let matrix = FleetMatrix::new(
        PredictorSpec::guideline_family(),
        ManagerSpec::default_set(),
        catalog.scenarios().to_vec(),
    )
    .expect("matrix assembles");
    let engine = FleetEngine::new(GOLDEN_SEED).with_trace_cache(TraceCachePolicy::bounded(4 << 20));
    let result = engine.run(&matrix).expect("fleet run");
    assert_eq!(result.outcomes.len(), matrix.job_count());
    let wall = min_of(|| {
        let started = Instant::now();
        let fresh = engine.run(&matrix).expect("fleet run");
        assert_eq!(fresh.outcomes.len(), matrix.job_count());
        started.elapsed().as_secs_f64()
    });
    let total_slots: usize = matrix
        .scenarios
        .iter()
        .map(|s| s.days * s.slots_per_day as usize)
        .sum();
    (
        regimes,
        wall,
        (total_slots * matrix.predictors.len() * matrix.managers.len()) as f64 / wall,
        scenario_passes(&result),
    )
}

/// One tuner refinement round: a warm cache already holds the coarse
/// grid's and the guideline's outcomes (the search's first pass); the
/// round scores every fresh candidate of
/// `ParamGrid::refined_around(0.5, 10, 2)` — the exact grid
/// `search_wcma` hands the evaluator — on a two-regime scenario set.
fn measure_tuner_round(smoke: bool) -> (usize, f64, usize) {
    let catalog = scenario_fleet::Catalog::builtin();
    let scenarios = vec![
        catalog.get("desert-clear-sky").expect("builtin").clone(),
        catalog.get("marine-fog").expect("builtin").clone(),
    ];
    let coarse = param_explore::ParamGrid::builder()
        .alphas(vec![0.0, 0.5, 1.0])
        .days(vec![2, 10, 20])
        .ks(vec![1, 2, 4])
        .build()
        .expect("coarse grid");
    let mut predictors = vec![PredictorSpec::Wcma {
        alpha: 0.7,
        days: 10,
        k: 2,
    }];
    for spec in PredictorSpec::family_from_grid(&coarse) {
        if !predictors.contains(&spec) {
            predictors.push(spec);
        }
    }
    let coarse_count = if smoke { 2 } else { predictors.len() };
    predictors.truncate(coarse_count);
    let mut base = FleetMatrix::new(
        predictors,
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios,
    )
    .expect("matrix assembles");

    let engine = FleetEngine::new(0xBEEF);
    let mut cache = engine.new_cache();
    engine.run_cached(&base, &mut cache).expect("warm-up run");

    let refined = coarse
        .refined_around(0.5, 10, 2)
        .expect("incumbent is on the grid");
    let mut fresh = 0usize;
    for spec in PredictorSpec::family_from_grid(&refined) {
        if !base.predictors.contains(&spec) {
            base.predictors.push(spec);
            fresh += 1;
        }
    }

    let result = engine
        .run_cached(&base, &mut cache.clone())
        .expect("round run");
    assert_eq!(
        result.outcomes.len() - result.cached_jobs,
        fresh * base.managers.len() * base.scenarios.len()
    );
    // Each repeat replays the round against a clone of the warm cache,
    // so every repetition pays the full fresh-candidate cost.
    let wall = min_of(|| {
        let mut round_cache = cache.clone();
        let started = Instant::now();
        let replay = engine
            .run_cached(&base, &mut round_cache)
            .expect("round run");
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(replay.cached_jobs, result.cached_jobs);
        wall
    });
    (fresh, wall, scenario_passes(&result))
}

/// Synthesis passes the run spent, from the engine's own accounting.
fn scenario_passes(result: &scenario_fleet::FleetResult) -> usize {
    result.synthesis_passes()
}

fn fmt_f64(value: f64) -> String {
    format!("{value:.4}")
}

fn render(m: &Measurements, baseline: Option<&str>) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"synthesis\": {{ \"ns_per_slot\": {}, \"slots\": {} }},\n",
        fmt_f64(m.synthesis_ns_per_slot),
        m.synthesis_slots
    ));
    out.push_str(&format!(
        "  \"scorecard\": {{ \"regimes\": {}, \"wall_s\": {}, \"slots_per_s\": {}, \"scenario_passes\": {} }},\n",
        m.scorecard_regimes,
        fmt_f64(m.scorecard_wall_s),
        fmt_f64(m.scorecard_slots_per_s),
        m.scorecard_scenario_passes
    ));
    out.push_str(&format!(
        "  \"tuner_round\": {{ \"candidates\": {}, \"wall_s\": {}, \"scenario_passes\": {} }}",
        m.tuner_round_candidates,
        fmt_f64(m.tuner_round_wall_s),
        m.tuner_round_scenario_passes
    ));
    if let Some(baseline) = baseline {
        let field = |section: &str, key: &str| -> Option<f64> {
            let section = baseline.split(&format!("\"{section}\"")).nth(1)?;
            let value = section.split(&format!("\"{key}\":")).nth(1)?;
            value.split([',', '}']).next()?.trim().parse().ok()
        };
        out.push_str(",\n  \"baseline\": ");
        out.push_str(baseline.trim());
        if let (Some(b_ns), Some(b_wall), Some(b_round)) = (
            field("synthesis", "ns_per_slot"),
            field("scorecard", "wall_s"),
            field("tuner_round", "wall_s"),
        ) {
            out.push_str(&format!(
                ",\n  \"speedup\": {{ \"synthesis\": {}, \"scorecard\": {}, \"tuner_round\": {} }}",
                fmt_f64(b_ns / m.synthesis_ns_per_slot),
                fmt_f64(b_wall / m.scorecard_wall_s),
                fmt_f64(b_round / m.tuner_round_wall_s)
            ));
        }
    }
    out.push_str("\n}\n");
    out
}

fn run() -> Result<(), Box<dyn Error>> {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(args.next().ok_or("usage: --out needs a path")?),
            "--baseline" => {
                baseline_path = Some(args.next().ok_or("usage: --baseline needs a path")?)
            }
            other => return Err(format!("usage: unknown argument {other:?}").into()),
        }
    }

    let (synth_days, regimes) = if smoke { (5, 8) } else { (60, 200) };

    eprintln!("measuring synthesis ({synth_days} days)…");
    let (ns_per_slot, slots) = measure_synthesis(synth_days);
    eprintln!("  {ns_per_slot:.0} ns/slot over {slots} slots");

    eprintln!("measuring {regimes}-regime generated scorecard…");
    let (regimes, wall, slots_per_s, passes) = measure_scorecard(regimes);
    eprintln!("  {wall:.2} s, {slots_per_s:.0} slots/s, {passes} synthesis passes");

    eprintln!("measuring tuner refinement round…");
    let (candidates, round_wall, round_passes) = measure_tuner_round(smoke);
    eprintln!(
        "  {candidates} fresh candidates in {round_wall:.2} s, {round_passes} synthesis passes"
    );

    let measurements = Measurements {
        synthesis_ns_per_slot: ns_per_slot,
        synthesis_slots: slots,
        scorecard_regimes: regimes,
        scorecard_wall_s: wall,
        scorecard_slots_per_s: slots_per_s,
        scorecard_scenario_passes: passes,
        tuner_round_candidates: candidates,
        tuner_round_wall_s: round_wall,
        tuner_round_scenario_passes: round_passes,
    };
    let baseline = match &baseline_path {
        Some(path) => Some(std::fs::read_to_string(path)?),
        None => None,
    };
    let json = render(&measurements, baseline.as_deref());
    match out_path {
        Some(path) => {
            fleet_obs::fsio::write_atomic_str(std::path::Path::new(&path), &json)?;
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 64 for bad
    // command lines, 3 for runtime or regression failures.
    if let Err(e) = run() {
        eprintln!("bench_pr5: {e}");
        let usage = e.to_string().starts_with("usage:");
        std::process::exit(if usage { 64 } else { 3 });
    }
}
