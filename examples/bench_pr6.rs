//! Observability overhead runner: measures the generated-catalog
//! scorecard workload twice — once with the default no-op collector,
//! once with a recording collector — and emits the comparison plus the
//! recorded deterministic ledger as machine-readable JSON
//! (`BENCH_PR6.json`).
//!
//! ```text
//! cargo run --release --example bench_pr6                      # print JSON
//! cargo run --release --example bench_pr6 -- --out BENCH_PR6.json
//! cargo run --release --example bench_pr6 -- --smoke           # tiny CI run
//! cargo run --release --example bench_pr6 -- --smoke --report r.json
//! ```
//!
//! `--report PATH` additionally writes the single-run [`RunReport`]
//! (deterministic ledger + span tree) — the artifact `fleet_report
//! diff` compares against the committed `BENCH_PR6_SMOKE.json`
//! baseline in the CI regression sentinel.
//!
//! Two contracts are asserted on every run (smoke included):
//!
//! * **byte identity** — the scorecard JSON with collection on equals
//!   the scorecard JSON with collection off, byte for byte;
//! * **bounded overhead** — the recording run's minimum wall time stays
//!   within 2× of the no-op run's. Counters are batched per scenario
//!   unit and spans open once per phase, so the expected ratio is ~1;
//!   the 2× bound just keeps a hot-loop instrumentation regression from
//!   landing silently.
//!
//! Wall times are machine-dependent; the ledger section is the
//! deterministic part (byte-identical across runs, thread counts, and
//! shard splits for a given seed and regime count).

use fleet_obs::json::Json;
use scenario_fleet::{
    CatalogGenerator, Collector, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, RunReport,
    TraceCachePolicy,
};
use std::error::Error;
use std::time::Instant;

/// Seed shared with the golden 200-regime pin (tests/generated_catalog.rs).
const GOLDEN_SEED: u64 = 2026;

/// Repeats of every timed section; the minimum is reported (the
/// least-disturbed run on a shared machine).
const REPEATS: usize = 5;

fn min_of(mut measure: impl FnMut() -> f64) -> f64 {
    (0..REPEATS)
        .map(|_| measure())
        .fold(f64::INFINITY, f64::min)
}

/// Rounds to 4 decimals so the JSON stays readable; wall times are
/// machine-dependent anyway.
fn round4(value: f64) -> f64 {
    (value * 1e4).round() / 1e4
}

fn run() -> Result<(), Box<dyn Error>> {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(args.next().ok_or("usage: --out needs a path")?),
            "--report" => report_path = Some(args.next().ok_or("usage: --report needs a path")?),
            other => return Err(format!("usage: unknown argument {other:?}").into()),
        }
    }

    let regimes = if smoke { 8 } else { 200 };
    let catalog = CatalogGenerator::new(GOLDEN_SEED).generate(regimes)?;
    let matrix = FleetMatrix::new(
        PredictorSpec::guideline_family(),
        ManagerSpec::default_set(),
        catalog.scenarios().to_vec(),
    )?;

    let engine = |collector: Collector| {
        FleetEngine::new(GOLDEN_SEED)
            .with_trace_cache(TraceCachePolicy::bounded(4 << 20))
            .with_collector(collector)
    };

    eprintln!("measuring {regimes}-regime scorecard with the no-op collector…");
    let noop_engine = engine(Collector::noop());
    let noop_result = noop_engine.run(&matrix)?;
    let noop_wall = min_of(|| {
        let started = Instant::now();
        let fresh = noop_engine.run(&matrix).expect("fleet run");
        assert_eq!(fresh.outcomes.len(), matrix.job_count());
        started.elapsed().as_secs_f64()
    });
    eprintln!("  {noop_wall:.3} s");

    eprintln!("measuring {regimes}-regime scorecard with a recording collector…");
    let recording = Collector::recording();
    let recording_engine = engine(recording.clone());
    let recording_result = recording_engine.run(&matrix)?;
    let recording_wall = min_of(|| {
        let started = Instant::now();
        let fresh = recording_engine.run(&matrix).expect("fleet run");
        assert_eq!(fresh.outcomes.len(), matrix.job_count());
        started.elapsed().as_secs_f64()
    });
    eprintln!("  {recording_wall:.3} s");

    assert_eq!(
        noop_result.scorecard.to_json_string(),
        recording_result.scorecard.to_json_string(),
        "collection must not move a byte of the scorecard output"
    );
    let ratio = recording_wall / noop_wall;
    assert!(
        ratio <= 2.0,
        "recording collector overhead regressed: {ratio:.2}x the no-op wall time"
    );
    eprintln!("  overhead {ratio:.2}x (bound 2.0x), scorecard byte-identical");

    // The cold run above plus the timed repeats all fed the same
    // collector; re-record exactly one run so the embedded ledger is
    // the deterministic single-run ledger the tests pin.
    let single = Collector::recording();
    engine(single.clone()).run(&matrix)?;
    let ledger = single.ledger();

    if let Some(path) = &report_path {
        let report = single.report();
        let text = report.to_json_string();
        // Round-trip before writing; the CI sentinel diffs this file.
        RunReport::from_json_str(&text)?;
        fleet_obs::fsio::write_atomic_str(std::path::Path::new(path), &text)?;
        eprintln!("wrote run report to {path}");
    }

    let json = Json::obj([
        ("schema", Json::Str("fleet-bench-pr6/1".into())),
        ("regimes", Json::Num(regimes as f64)),
        ("jobs", Json::Num(matrix.job_count() as f64)),
        ("noop_wall_s", Json::Num(round4(noop_wall))),
        ("recording_wall_s", Json::Num(round4(recording_wall))),
        ("overhead_ratio", Json::Num(round4(ratio))),
        ("scorecard_byte_identical", Json::Bool(true)),
        ("ledger", ledger.to_json()),
    ])
    .render_pretty();

    match out_path {
        Some(path) => {
            fleet_obs::fsio::write_atomic_str(std::path::Path::new(&path), &json)?;
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 64 for bad
    // command lines, 3 for runtime or regression failures.
    if let Err(e) = run() {
        eprintln!("bench_pr6: {e}");
        let usage = e.to_string().starts_with("usage:");
        std::process::exit(if usage { 64 } else { 3 });
    }
}
