//! Supervised multi-process fleet evaluation: spawn one `fleet_worker`
//! per shard, retry/timeout/kill what fails, merge what survives.
//!
//! ```text
//! cargo run --release --example fleet_supervisor -- --workload smoke --shards 2
//! cargo run --release --example fleet_supervisor -- --workload golden200 --seed 2026 \
//!     --shards 2 --chaos 101 --expect-digest 0xf6f8_c0ad_9b38_dde4
//! ```
//!
//! * `--workload tiny|smoke|builtin|generated:N|golden200` (default
//!   `smoke`), `--seed S` (default 42), `--v2`, `--budget BYTES`,
//!   `--threads T` — the workload, exactly as `fleet_worker` sees it;
//! * `--shards N` (default 2) — worker processes to split across;
//! * `--timeout-ms N` / `--retries N` / `--backoff-ms N` — supervision
//!   policy (defaults: 10 min, 4 attempts, 25 ms doubling backoff);
//! * `--chaos SEED` — deterministic fault injection: workers crash,
//!   stall, and corrupt their artifacts on a schedule that is a pure
//!   function of the seed, and the supervisor must recover;
//! * `--fail-shard I` (repeatable) — degradation drill: shard `I`
//!   fails unconditionally, exhausts its retries, and the run degrades
//!   to a partial scorecard with explicit coverage;
//! * `--out DIR` (default `target/fleet_supervisor`) — artifacts plus
//!   the merged `scorecard.json` and `coverage.json` (atomic writes);
//! * `--report PATH` — write the supervisor's run report (harness
//!   counters + absorbed worker ledgers) as JSON;
//! * `--expect-digest HEX` — fail (exit 3) unless the merged scorecard
//!   hashes to exactly this FNV-1a digest — the CI recovery gate;
//! * `--worker PATH` — the worker binary (default: the `fleet_worker`
//!   built next to this example).
//!
//! Exit codes follow `fleet_harness::exit`: 0 complete, 2 degraded,
//! 3 failed/regressed, 64 usage.

use std::time::Duration;

use fleet_harness::{exit, run_supervisor, SupervisorConfig, Workload};
use scenario_fleet::Collector;

struct Args {
    config: SupervisorConfig,
    report: Option<std::path::PathBuf>,
    expect_digest: Option<u64>,
    out_dir: std::path::PathBuf,
}

fn parse_digest(text: &str) -> Result<u64, String> {
    let cleaned = text.trim_start_matches("0x").replace('_', "");
    u64::from_str_radix(&cleaned, 16).map_err(|e| format!("bad digest {text:?}: {e}"))
}

fn default_worker() -> Result<std::path::PathBuf, String> {
    // Examples land in target/<profile>/examples/, binaries one level
    // up — the sibling fleet_worker from the same build.
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let examples = exe.parent().ok_or("current_exe has no parent")?;
    let profile = examples.parent().ok_or("examples dir has no parent")?;
    Ok(profile.join(format!("fleet_worker{}", std::env::consts::EXE_SUFFIX)))
}

fn parse_args() -> Result<Args, String> {
    let mut kind = "smoke".to_string();
    let mut seed = 42u64;
    let mut v2 = false;
    let mut budget = None;
    let mut threads = None;
    let mut shards = 2usize;
    let mut timeout = Duration::from_secs(600);
    let mut retries = fleet_harness::MAX_FAIL_ATTEMPTS + 1;
    let mut backoff = Duration::from_millis(25);
    let mut chaos = None;
    let mut fail_shards = Vec::new();
    let mut out_dir = std::path::PathBuf::from("target/fleet_supervisor");
    let mut report = None;
    let mut expect_digest = None;
    let mut worker = None;

    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        let parse_err = |e: std::num::ParseIntError| format!("{arg}: {e}");
        match arg.as_str() {
            "--workload" => kind = next(&mut args, "--workload")?,
            "--seed" => seed = next(&mut args, "--seed")?.parse().map_err(parse_err)?,
            "--v2" => v2 = true,
            "--budget" => budget = Some(next(&mut args, "--budget")?.parse().map_err(parse_err)?),
            "--threads" => {
                threads = Some(next(&mut args, "--threads")?.parse().map_err(parse_err)?)
            }
            "--shards" => shards = next(&mut args, "--shards")?.parse().map_err(parse_err)?,
            "--timeout-ms" => {
                timeout = Duration::from_millis(
                    next(&mut args, "--timeout-ms")?
                        .parse()
                        .map_err(parse_err)?,
                )
            }
            "--retries" => retries = next(&mut args, "--retries")?.parse().map_err(parse_err)?,
            "--backoff-ms" => {
                backoff = Duration::from_millis(
                    next(&mut args, "--backoff-ms")?
                        .parse()
                        .map_err(parse_err)?,
                )
            }
            "--chaos" => chaos = Some(next(&mut args, "--chaos")?.parse().map_err(parse_err)?),
            "--fail-shard" => fail_shards.push(
                next(&mut args, "--fail-shard")?
                    .parse()
                    .map_err(parse_err)?,
            ),
            "--out" => out_dir = next(&mut args, "--out")?.into(),
            "--report" => report = Some(next(&mut args, "--report")?.into()),
            "--expect-digest" => {
                expect_digest = Some(parse_digest(&next(&mut args, "--expect-digest")?)?)
            }
            "--worker" => worker = Some(std::path::PathBuf::from(next(&mut args, "--worker")?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let workload = Workload::from_cli(&kind, seed, v2, budget, threads)?;
    let worker_program = match worker {
        Some(path) => path,
        None => default_worker()?,
    };
    let mut config = SupervisorConfig::new(worker_program, workload, shards);
    config.timeout = timeout;
    config.max_attempts = retries;
    config.backoff_base = backoff;
    config.chaos_seed = chaos;
    config.fail_shards = fail_shards;
    config.artifact_dir = out_dir.join("artifacts");
    Ok(Args {
        config,
        report,
        expect_digest,
        out_dir,
    })
}

fn run(args: Args) -> Result<i32, String> {
    if !args.config.worker_program.exists() {
        return Err(format!(
            "worker binary {:?} not found — build it first (cargo build --bin fleet_worker)",
            args.config.worker_program
        ));
    }
    println!(
        "supervising {} × {} over {:?} (timeout {:?}, {} attempts{})",
        args.config.shard_count,
        args.config.workload.kind_name(),
        args.config.worker_program,
        args.config.timeout,
        args.config.max_attempts,
        match args.config.chaos_seed {
            Some(seed) => format!(", chaos seed {seed}"),
            None => String::new(),
        },
    );

    let collector = Collector::recording();
    let started = std::time::Instant::now();
    let run = run_supervisor(&args.config, &collector)?;
    println!(
        "outcome: {} in {:.2?}",
        run.outcome.name(),
        started.elapsed()
    );
    for shard in &run.shards {
        println!(
            "  shard {}: {} attempt(s){}{}",
            shard.shard_index,
            shard.attempts,
            if shard.completed { "" } else { " — LOST" },
            match &shard.last_error {
                Some(e) => format!(" (last error: {e})"),
                None => String::new(),
            },
        );
    }
    print!("{}", run.coverage.render_text());

    fleet_obs::fsio::write_atomic_str(
        &args.out_dir.join("coverage.json"),
        &run.coverage.to_json().render_pretty(),
    )?;
    if let Some(scorecard) = &run.scorecard {
        let json = scorecard.to_json_string();
        fleet_obs::fsio::write_atomic_str(&args.out_dir.join("scorecard.json"), &json)?;
        println!(
            "scorecard ({} scenario tables) written to {}",
            scorecard.per_scenario.len(),
            args.out_dir.join("scorecard.json").display()
        );
        if let Some(expected) = args.expect_digest {
            let digest = solar_trace::hash::fnv1a(&json);
            if digest != expected {
                eprintln!(
                    "digest mismatch: scorecard hashes to {digest:#018x}, expected {expected:#018x}"
                );
                return Ok(exit::FAILED);
            }
            println!("digest {digest:#018x} matches the pinned value");
        }
    } else if args.expect_digest.is_some() {
        eprintln!("digest check impossible: no scorecard survived");
        return Ok(exit::FAILED);
    }

    if let Some(path) = &args.report {
        let report = collector.report();
        report.write_atomic(path)?;
        println!("run report written to {}", path.display());
    }
    Ok(run.outcome.exit_code())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet_supervisor: {e}");
            std::process::exit(exit::USAGE);
        }
    };
    match run(args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("fleet_supervisor: {e}");
            std::process::exit(exit::FAILED);
        }
    }
}
