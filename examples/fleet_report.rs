//! `fleet_report`: the consumption CLI over run reports — diffing,
//! findings, the run archive, and chrome-trace export.
//!
//! ```text
//! # structural diff with a machine verdict (exit 3 on regressed)
//! cargo run --release --example fleet_report -- diff before.json after.json
//! cargo run --release --example fleet_report -- diff a.json b.json \
//!     --wall-noise 0.25 --wall-min-ms 1 --wall-regress 50
//!
//! # ranked markdown findings report
//! cargo run --release --example fleet_report -- findings a.json b.json --out findings.md
//!
//! # append-only JSONL archive + trend over the last N runs
//! cargo run --release --example fleet_report -- archive append runs.jsonl run-42 report.json
//! cargo run --release --example fleet_report -- archive trend runs.jsonl --last 10
//!
//! # chrome-trace JSON for about:tracing / Perfetto
//! cargo run --release --example fleet_report -- trace report.json --out trace.json
//! ```
//!
//! Report files may be `fleet-run-report/1` or `/2` documents, or a
//! `fleet-bench-pr6/1` bench file — the embedded ledger is lifted into
//! a ledger-only report (zero wall, empty span tree), so committed
//! bench baselines diff directly against fresh `--report` runs.
//!
//! Exit codes follow the workspace convention (documented in
//! `fleet_harness::exit`; this crate sits below the harness, so the
//! values are spelled out): 0 clean or drifted (drift is reported, not
//! fatal), 3 regressed or failed — the code the CI regression sentinel
//! traps — and 64 for usage errors.

use fleet_obs::json::Json;
use fleet_obs::{chrome_trace_string, DiffConfig, ReportDiff, RunArchive, RunReport, Verdict};
use std::path::Path;

/// Workspace exit codes (see `fleet_harness::exit`).
const EXIT_FAILED: i32 = 3;
const EXIT_USAGE: i32 = 64;

/// Loads a run report, accepting bench files by lifting their ledger.
fn load_report(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let value = Json::parse(&text).map_err(|err| format!("{path}: {err}"))?;
    match value.req_str("schema") {
        Ok("fleet-bench-pr6/1") => {
            let ledger = fleet_obs::Ledger::from_json(value.req("ledger")?)
                .map_err(|err| format!("{path}: {err}"))?;
            Ok(RunReport {
                ledger,
                ..RunReport::empty()
            })
        }
        _ => RunReport::from_json(&value).map_err(|err| format!("{path}: {err}")),
    }
}

fn parse_diff_config(args: &mut Vec<String>) -> Result<DiffConfig, String> {
    let mut config = DiffConfig::default();
    let mut rest = Vec::new();
    let mut iter = args.drain(..);
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| -> Result<f64, String> {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|err| format!("{name}: {err}"))
        };
        match arg.as_str() {
            "--wall-noise" => config.wall_noise_ratio = grab("--wall-noise")?,
            "--wall-min-ms" => config.wall_min_ns = (grab("--wall-min-ms")? * 1e6) as u64,
            "--wall-regress" => config.wall_regress_ratio = grab("--wall-regress")?,
            _ => rest.push(arg),
        }
    }
    drop(iter);
    *args = rest;
    Ok(config)
}

/// Pulls `--flag VALUE` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(at) if at + 1 < args.len() => {
            args.remove(at);
            Ok(Some(args.remove(at)))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn cmd_diff(mut args: Vec<String>, findings: bool) -> Result<i32, String> {
    let config = parse_diff_config(&mut args)?;
    let out = take_flag(&mut args, "--out")?;
    let json_out = take_flag(&mut args, "--json")?;
    let [before_path, after_path] = args.as_slice() else {
        return Err("usage: diff|findings BEFORE AFTER [--wall-noise R] [--wall-min-ms N] [--wall-regress R] [--out PATH] [--json PATH]".to_string());
    };
    let before = load_report(before_path)?;
    let after = load_report(after_path)?;
    let diff = ReportDiff::compute(&before, &after, &config);
    if findings {
        let markdown = diff.render_markdown();
        match &out {
            Some(path) => {
                fleet_obs::fsio::write_atomic_str(Path::new(path), &markdown)?;
                eprintln!("wrote findings to {path}");
            }
            None => print!("{markdown}"),
        }
    } else {
        print!("{}", diff.render_text());
        if let Some(path) = &out {
            fleet_obs::fsio::write_atomic_str(Path::new(path), &diff.render_markdown())?;
            eprintln!("wrote findings to {path}");
        }
    }
    if let Some(path) = &json_out {
        fleet_obs::fsio::write_atomic_str(Path::new(path), &diff.to_json().render_pretty())?;
        eprintln!("wrote diff JSON to {path}");
    }
    Ok(match diff.verdict {
        Verdict::Regressed => EXIT_FAILED,
        Verdict::Clean | Verdict::Drifted => 0,
    })
}

fn cmd_archive(mut args: Vec<String>) -> Result<i32, String> {
    let last = take_flag(&mut args, "--last")?
        .map(|n| n.parse::<usize>().map_err(|err| format!("--last: {err}")))
        .transpose()?
        .unwrap_or(10);
    match args.as_slice() {
        [sub, file, run_id, report_path] if sub == "append" => {
            let report = load_report(report_path)?;
            RunArchive::append(Path::new(file), run_id, &report)?;
            eprintln!("archived {run_id} into {file}");
            Ok(0)
        }
        [sub, file] if sub == "trend" => {
            let archive = RunArchive::load(Path::new(file))?;
            print!("{}", archive.trend_text(last));
            Ok(0)
        }
        _ => Err(
            "usage: archive append FILE RUN_ID REPORT.json | archive trend FILE [--last N]"
                .to_string(),
        ),
    }
}

fn cmd_trace(mut args: Vec<String>) -> Result<i32, String> {
    let out = take_flag(&mut args, "--out")?;
    let [report_path] = args.as_slice() else {
        return Err("usage: trace REPORT.json [--out PATH]".to_string());
    };
    let report = load_report(report_path)?;
    let trace = chrome_trace_string(&report);
    match &out {
        Some(path) => {
            fleet_obs::fsio::write_atomic_str(Path::new(path), &trace)?;
            eprintln!("wrote chrome trace to {path} (open in about:tracing or Perfetto)");
        }
        None => print!("{trace}"),
    }
    Ok(0)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: fleet_report diff|findings|archive|trace …");
        std::process::exit(EXIT_USAGE);
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "diff" => cmd_diff(args, false),
        "findings" => cmd_diff(args, true),
        "archive" => cmd_archive(args),
        "trace" => cmd_trace(args),
        other => Err(format!("usage: unknown command {other:?}")),
    };
    let code = match result {
        Ok(code) => code,
        // The cmd functions signal bad command lines with "usage: …"
        // messages; everything else is a runtime failure.
        Err(e) if e.starts_with("usage:") => {
            eprintln!("fleet_report: {e}");
            EXIT_USAGE
        }
        Err(e) => {
            eprintln!("fleet_report: {e}");
            EXIT_FAILED
        }
    };
    std::process::exit(code);
}
