//! Node simulation: close the paper's Fig. 1 loop — a solar-harvesting
//! sensor node whose duty cycle is planned from WCMA predictions — and
//! compare power-management outcomes across predictors.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p paper-repro --example node_simulation
//! ```

use harvest_sim::{
    simulate_node, EnergyNeutralManager, EnergyStorage, GreedyManager, Load, NodeConfig,
    PowerManager, SolarPanel,
};
use solar_predict::{PersistencePredictor, Predictor, WcmaParams, WcmaPredictor};
use solar_synth::{Site, TraceGenerator};
use solar_trace::{SlotView, SlotsPerDay};
use std::error::Error;

fn run() -> Result<(), Box<dyn Error>> {
    let trace = TraceGenerator::new(Site::Spmd.config(), 99).generate_days(120)?;
    let view = SlotView::new(&trace, SlotsPerDay::new(48)?)?;

    // A realistic mote: 100 cm² panel, small supercap bank, 50 mW active.
    let config = NodeConfig {
        panel: SolarPanel::new(0.01, 0.15)?,
        storage: EnergyStorage::with_losses(4000.0, 2000.0, 0.9, 0.9, 0.001)?,
        load: Load::new(0.05, 0.0005)?,
    };

    println!("120 days on {} at N=48, {:?}\n", trace.label(), config.load);
    println!(
        "{:<34}{:>12}{:>12}{:>14}",
        "predictor + policy", "brownout %", "mean duty", "utilization %"
    );

    type Run<'a> = (&'a str, Box<dyn Predictor>, Box<dyn PowerManager>);
    let mut runs: Vec<Run> = vec![
        (
            "WCMA + energy-neutral",
            Box::new(WcmaPredictor::new(WcmaParams::new(0.7, 10, 2, 48)?)),
            Box::new(EnergyNeutralManager::default()),
        ),
        (
            "persistence + energy-neutral",
            Box::new(PersistencePredictor::new(48)),
            Box::new(EnergyNeutralManager::default()),
        ),
        (
            "greedy (no prediction)",
            Box::new(PersistencePredictor::new(48)),
            Box::new(GreedyManager),
        ),
    ];

    for (name, predictor, manager) in &mut runs {
        let report = simulate_node(&view, predictor.as_mut(), manager.as_mut(), &config);
        assert!(report.energy_balance_error_j() < 1e-6);
        println!(
            "{:<34}{:>12.2}{:>12.3}{:>14.1}",
            name,
            report.brownout_rate() * 100.0,
            report.mean_duty,
            report.utilization * 100.0
        );
    }

    println!("\nA good predictor lets the node run hard *and* survive the night:");
    println!("greedy browns out nightly; prediction-driven planning does not.");
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 3 on failure.
    if let Err(e) = run() {
        eprintln!("node_simulation: {e}");
        std::process::exit(3);
    }
}
