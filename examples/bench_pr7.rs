//! Synthesis-floor runner: measures trace-synthesis ns/slot on both
//! RNG stream versions — v1 (the original scalar draw order) and v2
//! (the lane-batched order over the multi-block ChaCha8 keystream) —
//! and emits the comparison as machine-readable JSON (`BENCH_PR7.json`).
//!
//! ```text
//! cargo run --release --example bench_pr7                      # print JSON
//! cargo run --release --example bench_pr7 -- --out BENCH_PR7.json
//! cargo run --release --example bench_pr7 -- --smoke           # tiny CI run
//! cargo run --release --example bench_pr7 -- --smoke --report r.json
//! ```
//!
//! The synthesis workload is the exact BENCH_PR5 one (the Hsu site,
//! seed `0xBE`, 48 slots/day, min-of-3), so ns/slot is directly
//! comparable with the `1538.8479` the PR 5 trajectory pinned. The v1
//! measurement guards against the vectorized keystream regressing the
//! bit-pinned legacy stream; the v2 measurement is the headline —
//! asserted ≥ 2× the embedded PR 5 baseline on full (non-smoke) runs.
//!
//! `--report PATH` writes the [`RunReport`] of one recording v2
//! catalog run — deterministic ledger (including the new
//! `synth/keystream_blocks` / `synth/normal_draws` counters) plus span
//! tree — the artifact `fleet_report diff` compares against the
//! committed `BENCH_PR7_SMOKE.json` baseline in the CI sentinel.

use fleet_obs::json::Json;
use scenario_fleet::{
    CatalogGenerator, Collector, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, RunReport,
    StreamVersion, TraceCachePolicy,
};
use solar_synth::{Site, SiteConfig, TraceGenerator};
use solar_trace::SlotsPerDay;
use std::error::Error;
use std::time::Instant;

/// Seed shared with the golden 200-regime pins (tests/generated_catalog.rs).
const GOLDEN_SEED: u64 = 2026;

/// The synthesis ns/slot BENCH_PR5.json pinned on this workload — the
/// floor this PR breaks. Embedded so the ≥2× acceptance gate needs no
/// baseline file at run time.
const PR5_BASELINE_NS_PER_SLOT: f64 = 1538.8479;

/// Repeats of every timed section; the minimum is reported (the
/// least-disturbed run on a shared machine).
const REPEATS: usize = 3;

fn min_of(mut measure: impl FnMut() -> f64) -> f64 {
    (0..REPEATS)
        .map(|_| measure())
        .fold(f64::INFINITY, f64::min)
}

/// Rounds to 4 decimals so the JSON stays readable; wall times are
/// machine-dependent anyway.
fn round4(value: f64) -> f64 {
    (value * 1e4).round() / 1e4
}

/// The BENCH_PR5 synthesis workload on an explicit site config, so the
/// same timing loop serves both stream versions.
fn measure_synthesis(config: SiteConfig, days: usize) -> (f64, usize) {
    let generator = TraceGenerator::new(config, 0xBE);
    let n = SlotsPerDay::new(48).expect("48 is valid");
    // Warm-up pass, then the timed passes.
    let slots: usize = generator.slot_stream(days, n).expect("days > 0").count();
    let wall = min_of(|| {
        let started = Instant::now();
        let mut sum = 0.0;
        for slot in generator.slot_stream(days, n).expect("days > 0") {
            sum += slot.mean_power;
        }
        assert!(sum.is_finite());
        started.elapsed().as_secs_f64()
    });
    (wall * 1e9 / slots as f64, slots)
}

fn run() -> Result<(), Box<dyn Error>> {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(args.next().ok_or("usage: --out needs a path")?),
            "--report" => report_path = Some(args.next().ok_or("usage: --report needs a path")?),
            other => return Err(format!("usage: unknown argument {other:?}").into()),
        }
    }

    let (synth_days, regimes) = if smoke { (5, 8) } else { (60, 200) };

    eprintln!("measuring v1 (scalar-order) synthesis ({synth_days} days)…");
    let (v1_ns, slots) = measure_synthesis(Site::Hsu.config(), synth_days);
    eprintln!("  {v1_ns:.0} ns/slot over {slots} slots");

    eprintln!("measuring v2 (lane-order) synthesis ({synth_days} days)…");
    let mut v2_config = Site::Hsu.config();
    v2_config.weather.stream_version = StreamVersion::V2;
    let (v2_ns, v2_slots) = measure_synthesis(v2_config, synth_days);
    assert_eq!(slots, v2_slots, "both streams cover the same slot grid");
    eprintln!("  {v2_ns:.0} ns/slot over {v2_slots} slots");

    let speedup_vs_pr5 = PR5_BASELINE_NS_PER_SLOT / v2_ns;
    let speedup_vs_v1 = v1_ns / v2_ns;
    eprintln!("  v2 is {speedup_vs_pr5:.2}x the PR 5 floor, {speedup_vs_v1:.2}x measured v1");
    if !smoke {
        // The tentpole acceptance gate. Smoke runs skip timing
        // assertions (CI machines are noisy and the horizon tiny).
        assert!(
            speedup_vs_pr5 >= 2.0,
            "v2 synthesis must be >= 2x the PR 5 floor: \
             {v2_ns:.1} ns/slot vs baseline {PR5_BASELINE_NS_PER_SLOT} ns/slot"
        );
    }

    // One recording v2 catalog run: the deterministic ledger embeds in
    // the JSON, and `--report` writes the full RunReport the CI
    // sentinel diffs. Scenario ids all carry the `-v2` segment, so
    // this report can never be confused with a bench_pr6 (v1) report.
    eprintln!("recording a {regimes}-regime v2 catalog run…");
    let catalog = CatalogGenerator::new(GOLDEN_SEED)
        .with_stream_version(StreamVersion::V2)
        .generate(regimes)?;
    let matrix = FleetMatrix::new(
        PredictorSpec::guideline_family(),
        ManagerSpec::default_set(),
        catalog.scenarios().to_vec(),
    )?;
    let collector = Collector::recording();
    let engine = FleetEngine::new(GOLDEN_SEED)
        .with_trace_cache(TraceCachePolicy::bounded(4 << 20))
        .with_collector(collector.clone());
    let result = engine.run(&matrix)?;
    assert_eq!(result.outcomes.len(), matrix.job_count());
    let ledger = collector.ledger();
    assert!(
        ledger.counter("synth/keystream_blocks") > 0,
        "the v2 run must account its keystream consumption"
    );
    assert!(
        ledger.counter("synth/normal_draws") > 0,
        "the v2 run must account its normal draws"
    );

    if let Some(path) = &report_path {
        let report = collector.report();
        let text = report.to_json_string();
        // Round-trip before writing; the CI sentinel diffs this file.
        RunReport::from_json_str(&text)?;
        fleet_obs::fsio::write_atomic_str(std::path::Path::new(path), &text)?;
        eprintln!("wrote run report to {path}");
    }

    let json = Json::obj([
        ("schema", Json::Str("fleet-bench-pr7/1".into())),
        ("slots", Json::Num(slots as f64)),
        ("v1_ns_per_slot", Json::Num(round4(v1_ns))),
        ("v2_ns_per_slot", Json::Num(round4(v2_ns))),
        (
            "pr5_baseline_ns_per_slot",
            Json::Num(PR5_BASELINE_NS_PER_SLOT),
        ),
        ("speedup_vs_pr5", Json::Num(round4(speedup_vs_pr5))),
        ("speedup_v2_vs_v1", Json::Num(round4(speedup_vs_v1))),
        ("regimes", Json::Num(regimes as f64)),
        ("jobs", Json::Num(matrix.job_count() as f64)),
        ("ledger", ledger.to_json()),
    ])
    .render_pretty();

    match out_path {
        Some(path) => {
            fleet_obs::fsio::write_atomic_str(std::path::Path::new(&path), &json)?;
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 64 for bad
    // command lines, 3 for runtime or regression failures.
    if let Err(e) = run() {
        eprintln!("bench_pr7: {e}");
        let usage = e.to_string().starts_with("usage:");
        std::process::exit(if usage { 64 } else { 3 });
    }
}
