//! Per-regime tuning loop: search (α, D, K) per climate regime through
//! fleet scorecards and print the winner table — the fleet analogue of
//! the paper's Table III.
//!
//! Run with (seed optional; `--smoke` shrinks the search for CI):
//!
//! ```text
//! cargo run --release --example tune_fleet -- 42
//! cargo run --release --example tune_fleet -- --smoke
//! cargo run --release --example tune_fleet -- --smoke --report target/tune_report.json
//! ```
//!
//! `--report PATH` attaches a recording collector to the tuning loop
//! and writes the full run report (deterministic ledger + phase-span
//! timing) as JSON to `PATH`; collection does not move a byte of the
//! tuning report.
//!
//! The run is deterministic for a given seed: the tuning-report JSON
//! (also written to `target/tuning_report.json`) is byte-identical
//! across runs and thread counts. On every run the example also proves
//! the incremental re-scoring contract: growing a predictor axis
//! through a warm [`FleetCache`] yields a scorecard byte-identical to a
//! cold full run.
//!
//! Exit codes follow the workspace convention (see
//! `fleet_harness::exit`): 0 success, 3 failure, 64 usage error.

use fleet_tuner::{FleetTuner, TunerConfig};
use scenario_fleet::{
    Catalog, Collector, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, RunReport,
};
use std::error::Error;

struct Args {
    seed: u64,
    seed_overridden: bool,
    smoke: bool,
    report_path: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        seed: 42,
        seed_overridden: false,
        smoke: false,
        report_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            parsed.smoke = true;
        } else if arg == "--report" {
            let path = args.next().ok_or("--report needs a path")?;
            parsed.report_path = Some(path.into());
        } else {
            parsed.seed = arg.parse().map_err(|e| format!("seed {arg:?}: {e}"))?;
            parsed.seed_overridden = true;
        }
    }
    Ok(parsed)
}

fn run(args: Args) -> Result<(), Box<dyn Error>> {
    let Args {
        seed,
        seed_overridden,
        smoke,
        report_path,
    } = args;

    let catalog = Catalog::builtin();
    let scenarios = if smoke {
        // Four fast scenarios covering four regimes.
        [
            "desert-clear-sky",
            "marine-fog",
            "equatorial-rainband",
            "arctic-winter",
        ]
        .iter()
        .map(|name| catalog.get(name).expect("builtin").clone())
        .collect::<Vec<_>>()
    } else {
        catalog.scenarios().to_vec()
    };
    let mut config = if smoke {
        TunerConfig::smoke(seed)
    } else {
        TunerConfig::new(seed)
    };
    // Route every engine evaluation through the sharded scorecard
    // reduction — byte-identical to the monolithic path, so the tuning
    // loop consumes sharded results unchanged (and proves it live).
    config.shards = Some(2);
    println!(
        "tuning {} scenarios, coarse grid {} configs, budget {} rounds / {} candidates \
         (seed {seed}, sharded scorecards ×2)\n",
        scenarios.len(),
        config.grid.configs(),
        config.budget.max_rounds,
        config.budget.max_candidates,
    );

    let collector = if report_path.is_some() {
        Collector::recording()
    } else {
        Collector::noop()
    };
    let started = std::time::Instant::now();
    let tuner = FleetTuner::new(config)?.with_collector(collector.clone());
    let report = tuner.tune(&scenarios)?;
    println!("=== per-regime winner table ===");
    print!("{}", report.render_text());
    println!("loop wall time: {:.2?}\n", started.elapsed());

    let divergent = report.divergent_regimes();
    println!(
        "{} of {} regimes diverge from the global optimum {}",
        divergent.len(),
        report.regimes.len(),
        report.global,
    );
    // Divergence is a property of the data, not a code contract: only
    // the pinned default seed (what CI runs) is required to show it.
    if seed_overridden {
        if divergent.is_empty() {
            println!("(every regime re-selected the global optimum under this seed)");
        }
    } else {
        assert!(
            !divergent.is_empty(),
            "default-seed run must show at least one regime out-tuning the global optimum"
        );
    }

    // Prove the incremental contract on live data: a warm-cache grown
    // axis must reproduce a cold full run byte-for-byte.
    let base_family = PredictorSpec::guideline_family();
    let mut grown_family = base_family.clone();
    grown_family.push(report.regimes[0].tuned.spec());
    let managers = vec![ManagerSpec::EnergyNeutral {
        target_soc: 0.5,
        gain: 0.25,
    }];
    let engine = FleetEngine::new(seed);
    let mut cache = engine.new_cache();
    let base = FleetMatrix::new(base_family, managers.clone(), scenarios.clone())?;
    engine.run_cached(&base, &mut cache)?;
    let grown = FleetMatrix::new(grown_family, managers, scenarios)?;
    let incremental = engine.run_cached(&grown, &mut cache)?;
    let full = engine.run(&grown)?;
    assert_eq!(
        incremental.scorecard.to_json_string(),
        full.scorecard.to_json_string(),
        "incremental re-scoring diverged from the full run"
    );
    println!(
        "incremental re-score verified: {} of {} jobs served from cache, scorecard byte-identical",
        incremental.cached_jobs,
        incremental.outcomes.len(),
    );

    let json = report.to_json_string();
    let path = std::path::Path::new("target").join("tuning_report.json");
    if fleet_obs::fsio::write_atomic_str(&path, &json).is_ok() {
        println!("tuning report JSON written to {}", path.display());
    }

    if let Some(path) = report_path {
        let run_report = collector.report();
        let text = run_report.to_json_string();
        // Round-trip before writing: a report that does not parse is a
        // bug, and the CI step relies on this check.
        RunReport::from_json_str(&text)?;
        fleet_obs::fsio::write_atomic_str(&path, &text)?;
        println!("\n=== run report (written to {}) ===", path.display());
        print!("{}", run_report.render_text());
    }
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`).
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("tune_fleet: {e}");
            std::process::exit(64);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("tune_fleet: {e}");
        std::process::exit(3);
    }
}
