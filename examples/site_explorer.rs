//! Site explorer: sweep the full (α, D, K) grid over any of the six
//! paper sites at any N and print the optimization landscape — a
//! miniature of the paper's Table III methodology.
//!
//! Run with (site code and N optional):
//!
//! ```text
//! cargo run --release -p paper-repro --example site_explorer -- ORNL 48
//! ```

use param_explore::report::{pct, TextTable};
use param_explore::{sweep, ParamGrid};
use pred_metrics::EvalProtocol;
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};
use std::error::Error;

fn run() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let code = args.next().unwrap_or_else(|| "ORNL".to_string());
    let n: u32 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(48);
    let site = Site::ALL
        .into_iter()
        .find(|s| s.code().eq_ignore_ascii_case(&code))
        .ok_or_else(|| format!("unknown site {code:?}; use one of SPMD/ECSU/ORNL/HSU/NPCS/PFCI"))?;

    println!("generating 180 days for {site} and sweeping the paper grid at N={n}...");
    let trace = paper_repro::datasets::site_trace(site, 180);
    let view = SlotView::new(&trace, SlotsPerDay::new(n)?)?;
    let grid = ParamGrid::paper();
    let result = sweep(&view, &grid, &EvalProtocol::paper());

    let best = result.best_by_mape();
    println!(
        "\noptimum: alpha={} D={} K={}  MAPE={}  ({} evaluation points)\n",
        best.alpha,
        best.days,
        best.k,
        pct(best.mape),
        result.eval_count()
    );

    // The alpha landscape at the optimal (D, K): how sharp is the choice?
    let mut alpha_table = TextTable::new(vec!["alpha", "MAPE"]);
    let di = grid.days_index(best.days).expect("optimum on grid");
    let ki = grid.k_index(best.k).expect("optimum on grid");
    for (ai, &alpha) in grid.alphas().iter().enumerate() {
        alpha_table.push_row(vec![format!("{alpha:.1}"), pct(result.mape(ai, di, ki))]);
    }
    println!(
        "MAPE vs alpha at (D={}, K={}):\n{alpha_table}",
        best.days, best.k
    );

    // The D landscape at the optimal (alpha, K): the paper's Fig. 7 cut.
    let mut d_table = TextTable::new(vec!["D", "MAPE"]);
    for (d, mape) in result.mape_vs_days(best.alpha, best.k).expect("on grid") {
        d_table.push_row(vec![d.to_string(), pct(mape)]);
    }
    println!(
        "MAPE vs D at (alpha={}, K={}):\n{d_table}",
        best.alpha, best.k
    );

    if let Some(at2) = result.best_at_k(2) {
        println!(
            "K=2 guideline check: best MAPE@K=2 = {} (penalty {:.2} points)",
            pct(at2.mape),
            (at2.mape - best.mape) * 100.0
        );
    }
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 3 on failure.
    if let Err(e) = run() {
        eprintln!("site_explorer: {e}");
        std::process::exit(3);
    }
}
