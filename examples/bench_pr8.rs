//! Differential-scorecard runner: measures O(delta) day-append
//! re-scoring against a cold full-horizon re-run on the golden
//! 200-regime workload and emits the comparison as machine-readable
//! JSON (`BENCH_PR8.json`).
//!
//! ```text
//! cargo run --release --example bench_pr8                      # print JSON
//! cargo run --release --example bench_pr8 -- --out BENCH_PR8.json
//! cargo run --release --example bench_pr8 -- --smoke           # tiny CI run
//! cargo run --release --example bench_pr8 -- --smoke --report r.json
//! ```
//!
//! The workload is the golden-pin 200-regime catalog (seed 2026,
//! guideline WCMA × energy-neutral manager, 4 MiB trace budget so part
//! of the fleet streams) minus its trace-gap regimes: a `TraceGap`
//! fault re-realizes its Poisson gap placement over the *total*
//! horizon whenever the horizon changes, so a day-append re-runs those
//! scenarios from slot zero by the fault's own semantics — there is no
//! O(delta) to measure. One day is appended to every remaining
//! scenario and the evolved matrix re-scored through
//! [`FleetEngine::run_delta`] against the warm cache, min-of-3. Full
//! (non-smoke) runs assert the delta path is ≥ 10× faster than the
//! cold re-run — the tentpole acceptance gate — and every run asserts
//! the incremental scorecard is byte-identical to the cold one.
//!
//! `--report PATH` writes the [`RunReport`] of one recording delta run
//! — deterministic ledger (including the `delta/*` counters: resumed
//! units, appended days, trace extensions, peak fallbacks) plus span
//! tree — the artifact `fleet_report diff` compares against the
//! committed `BENCH_PR8_SMOKE.json` baseline in the CI sentinel.

use fleet_obs::json::Json;
use scenario_fleet::{
    CatalogGenerator, Collector, FleetDelta, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec,
    RunReport, TraceCachePolicy,
};
use std::error::Error;
use std::time::Instant;

/// Seed shared with the golden 200-regime pins (tests/generated_catalog.rs).
const GOLDEN_SEED: u64 = 2026;

/// Repeats of every timed section; the minimum is reported (the
/// least-disturbed run on a shared machine). Five, not three: the
/// delta leg's window is ~15 ms, small enough that scheduler noise on
/// a single-core runner regularly lands inside it.
const REPEATS: usize = 5;

fn min_of(mut measure: impl FnMut() -> f64) -> f64 {
    (0..REPEATS)
        .map(|_| measure())
        .fold(f64::INFINITY, f64::min)
}

/// Rounds to 4 decimals so the JSON stays readable; wall times are
/// machine-dependent anyway.
fn round4(value: f64) -> f64 {
    (value * 1e4).round() / 1e4
}

fn run() -> Result<(), Box<dyn Error>> {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(args.next().ok_or("usage: --out needs a path")?),
            "--report" => report_path = Some(args.next().ok_or("usage: --report needs a path")?),
            other => return Err(format!("usage: unknown argument {other:?}").into()),
        }
    }

    let generated = if smoke { 8 } else { 200 };
    let budget = 4u64 << 20;

    let catalog = CatalogGenerator::new(GOLDEN_SEED).generate(generated)?;
    // Trace-gap regimes have no O(delta) path (see the module docs);
    // they would only time the cold path twice.
    let (gap_free, gappy): (Vec<_>, Vec<_>) = catalog.scenarios().iter().cloned().partition(|s| {
        !s.faults
            .iter()
            .any(|f| matches!(f, scenario_fleet::FaultSpec::TraceGap { .. }))
    });
    let regimes = gap_free.len();
    eprintln!(
        "{generated} regimes generated, {} trace-gap regimes excluded",
        gappy.len()
    );
    let matrix = FleetMatrix::new(
        vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        gap_free,
    )?;
    let mut grown = matrix.clone();
    for scenario in &mut grown.scenarios {
        scenario.days += 1;
    }
    let delta = FleetDelta::classify(&matrix, &grown)?;

    let new_engine =
        || FleetEngine::new(GOLDEN_SEED).with_trace_cache(TraceCachePolicy::bounded(budget));

    // Warm pass at the original horizon: the state every appended day
    // resumes from. Untimed — it stands for the run you already paid
    // for yesterday.
    eprintln!("warming the {regimes}-regime cache at the original horizon…");
    let engine = new_engine();
    let mut warm_cache = engine.new_cache();
    engine.run_cached(&matrix, &mut warm_cache)?;

    // Cold re-run of the extended horizon, min-of-3: the price the
    // delta path avoids.
    eprintln!("timing the cold extended-horizon re-run…");
    let cold_engine = new_engine();
    let mut cold_result = None;
    let cold_wall = min_of(|| {
        let started = Instant::now();
        let result = cold_engine.run(&grown).expect("cold run succeeds");
        let wall = started.elapsed().as_secs_f64();
        cold_result = Some(result);
        wall
    });
    eprintln!("  {cold_wall:.3} s");

    // The delta path, min-of-3: each repeat resumes off a clone of the
    // warm cache so every measurement pays the same O(delta) work.
    eprintln!("timing the day-append delta re-score…");
    let mut delta_result = None;
    let delta_wall = min_of(|| {
        let mut cache = warm_cache.clone();
        let started = Instant::now();
        let result = engine
            .run_delta(&grown, &mut cache, &delta)
            .expect("delta run succeeds");
        let wall = started.elapsed().as_secs_f64();
        delta_result = Some(result);
        wall
    });
    eprintln!("  {delta_wall:.3} s");

    let cold_result = cold_result.expect("measured");
    let delta_result = delta_result.expect("measured");
    // The contract the speedup is worthless without: incremental bytes
    // are cold bytes.
    assert_eq!(
        delta_result.scorecard.to_json_string(),
        cold_result.scorecard.to_json_string(),
        "delta re-score diverged from the cold run"
    );
    assert_eq!(
        delta_result.passes.trace_generations, 0,
        "a day-append must never regenerate a trace prefix"
    );

    let speedup = cold_wall / delta_wall;
    eprintln!("  day-append delta is {speedup:.1}x the cold re-run");

    // One recording delta run: the deterministic ledger embeds in the
    // JSON, and `--report` writes the full RunReport the CI sentinel
    // diffs. A fresh collector-carrying engine resumes off its own
    // fresh warm cache so the recorded counters cover the whole
    // warm-then-delta cycle deterministically.
    eprintln!("recording a delta run for the ledger…");
    let collector = Collector::recording();
    let recording_engine = new_engine().with_collector(collector.clone());
    let mut cache = recording_engine.new_cache();
    recording_engine.run_cached(&matrix, &mut cache)?;
    let recorded = recording_engine.run_delta(&grown, &mut cache, &delta)?;
    assert_eq!(recorded.outcomes.len(), grown.job_count());
    let ledger = collector.ledger();
    assert!(
        ledger.counter("delta/resumed_units") > 0,
        "the delta run must resume checkpointed units"
    );
    assert_eq!(
        ledger.counter("delta/day_appends"),
        regimes as u64,
        "every scenario classified as a day-append"
    );
    eprintln!(
        "  resumed {} units, {} fallbacks ({} cold, {} peak), {} trace extensions",
        ledger.counter("delta/resumed_units"),
        ledger.counter("delta/cold_fallbacks") + ledger.counter("delta/peak_fallbacks"),
        ledger.counter("delta/cold_fallbacks"),
        ledger.counter("delta/peak_fallbacks"),
        ledger.counter("delta/trace_extensions"),
    );
    if !smoke {
        // The tentpole acceptance gate. Smoke runs skip timing
        // assertions (CI machines are noisy and the workload tiny).
        assert!(
            speedup >= 10.0,
            "day-append delta must be >= 10x the cold re-run: \
             {delta_wall:.3} s vs {cold_wall:.3} s"
        );
    }

    if let Some(path) = &report_path {
        let report = collector.report();
        let text = report.to_json_string();
        // Round-trip before writing; the CI sentinel diffs this file.
        RunReport::from_json_str(&text)?;
        fleet_obs::fsio::write_atomic_str(std::path::Path::new(path), &text)?;
        eprintln!("wrote run report to {path}");
    }

    let json = Json::obj([
        ("schema", Json::Str("fleet-bench-pr8/1".into())),
        ("regimes_generated", Json::Num(generated as f64)),
        ("trace_gap_regimes_excluded", Json::Num(gappy.len() as f64)),
        ("regimes", Json::Num(regimes as f64)),
        ("jobs", Json::Num(grown.job_count() as f64)),
        ("appended_days", Json::Num(1.0)),
        ("cold_wall_s", Json::Num(round4(cold_wall))),
        ("delta_wall_s", Json::Num(round4(delta_wall))),
        ("speedup_delta_vs_cold", Json::Num(round4(speedup))),
        (
            "resumed_units",
            Json::Num(ledger.counter("delta/resumed_units") as f64),
        ),
        (
            "peak_fallbacks",
            Json::Num(ledger.counter("delta/peak_fallbacks") as f64),
        ),
        (
            "trace_extensions",
            Json::Num(ledger.counter("delta/trace_extensions") as f64),
        ),
        ("ledger", ledger.to_json()),
    ])
    .render_pretty();

    match out_path {
        Some(path) => {
            fleet_obs::fsio::write_atomic_str(std::path::Path::new(&path), &json)?;
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 64 for bad
    // command lines, 3 for runtime or regression failures.
    if let Err(e) = run() {
        eprintln!("bench_pr8: {e}");
        let usage = e.to_string().starts_with("usage:");
        std::process::exit(if usage { 64 } else { 3 });
    }
}
