//! Dynamic tuning: reproduce the paper's §IV-C result on one site — the
//! clairvoyant per-prediction choice of (α, K) roughly halves MAPE — and
//! show how much of that a causal selector captures.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p paper-repro --example dynamic_tuning
//! ```

use param_explore::dynamic::clairvoyant_eval;
use param_explore::{sweep, ParamGrid};
use pred_metrics::EvalProtocol;
use solar_predict::dynamic::CausalDynamicWcma;
use solar_predict::run_predictor;
use solar_synth::{Site, TraceGenerator};
use solar_trace::{SlotView, SlotsPerDay};
use std::error::Error;

fn run() -> Result<(), Box<dyn Error>> {
    let site = Site::Ecsu;
    let trace = TraceGenerator::new(site.config(), 2010).generate_days(180)?;
    let protocol = EvalProtocol::paper();
    let grid = ParamGrid::paper();

    println!("site {site}, 180 days; dynamic-parameter study at several N\n");
    println!(
        "{:>5}{:>14}{:>16}{:>18}{:>16}",
        "N", "static MAPE", "causal dynamic", "clairvoyant K+a", "a (K adapting)"
    );
    for n in [96u32, 72, 48, 24] {
        let view = SlotView::new(&trace, SlotsPerDay::new(n)?)?;
        let result = sweep(&view, &grid, &protocol);
        let best = result.best_by_mape();

        let outcome = clairvoyant_eval(&view, best.days, grid.alphas(), grid.k_max(), &protocol);

        let mut causal = CausalDynamicWcma::new(
            best.days,
            grid.k_max(),
            grid.alphas().to_vec(),
            0.98,
            n as usize,
        )?;
        let causal_mape = protocol.evaluate(&run_predictor(&view, &mut causal)).mape;

        println!(
            "{:>5}{:>13.2}%{:>15.2}%{:>17.2}%{:>16.1}",
            n,
            best.mape * 100.0,
            causal_mape * 100.0,
            outcome.both_mape * 100.0,
            outcome.k_only.0,
        );
    }

    println!("\nThe clairvoyant numbers are the floor any dynamic-selection");
    println!("algorithm can reach (the paper's Table V); the causal column is");
    println!("what a deployable score-and-switch selector achieves today.");
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 3 on failure.
    if let Err(e) = run() {
        eprintln!("dynamic_tuning: {e}");
        std::process::exit(3);
    }
}
