//! Quickstart: generate a synthetic solar trace, run the WCMA predictor,
//! and evaluate it the way the paper prescribes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p paper-repro --example quickstart
//! ```

use pred_metrics::EvalProtocol;
use solar_predict::{run_predictor, EwmaPredictor, WcmaParams, WcmaPredictor};
use solar_synth::{Site, TraceGenerator};
use solar_trace::{SlotView, SlotsPerDay};
use std::error::Error;

fn run() -> Result<(), Box<dyn Error>> {
    // 1. Ninety days of synthetic irradiance for a humid, variable site.
    let generator = TraceGenerator::new(Site::Hsu.config(), 7);
    let trace = generator.generate_days(90)?;
    println!("generated {trace}");

    // 2. Discretize into N = 48 slots (30-minute prediction horizon).
    let view = SlotView::new(&trace, SlotsPerDay::new(48)?)?;

    // 3. Run the WCMA predictor with the paper's guideline parameters
    //    (alpha = 0.7, D = 10, K = 2 at N = 48).
    let params = WcmaParams::new(0.7, 10, 2, 48)?;
    let mut wcma = WcmaPredictor::new(params);
    let wcma_log = run_predictor(&view, &mut wcma);

    // 4. Evaluate under the paper's protocol: errors against mean slot
    //    power, region of interest >= 10% of peak, first 20 days skipped.
    let protocol = EvalProtocol::paper();
    let wcma_summary = protocol.evaluate(&wcma_log);
    println!("WCMA  guideline: {wcma_summary}");

    // 5. Compare against the EWMA baseline the paper cites.
    let mut ewma = EwmaPredictor::new(0.5, 48)?;
    let ewma_summary = protocol.evaluate(&run_predictor(&view, &mut ewma));
    println!("EWMA  gamma=0.5: {ewma_summary}");

    let gain = (ewma_summary.mape - wcma_summary.mape) * 100.0;
    println!("WCMA improves MAPE by {gain:.1} points over EWMA on this trace");
    Ok(())
}

fn main() {
    // Workspace exit codes (see `fleet_harness::exit`): 3 on failure.
    if let Err(e) = run() {
        eprintln!("quickstart: {e}");
        std::process::exit(3);
    }
}
