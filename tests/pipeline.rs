//! End-to-end pipeline tests: synthetic site → slotting → prediction →
//! paper protocol evaluation → grid optimization, all through the public
//! APIs.

use param_explore::{sweep, ParamGrid};
use pred_metrics::EvalProtocol;
use solar_predict::{
    run_predictor, EwmaPredictor, PersistencePredictor, WcmaParams, WcmaPredictor,
};
use solar_synth::{Site, TraceGenerator};
use solar_trace::{SlotView, SlotsPerDay};

const DAYS: usize = 60;

fn view_for(site: Site, n: u32) -> (solar_trace::PowerTrace, u32) {
    let trace = TraceGenerator::new(site.config(), 42)
        .generate_days(DAYS)
        .expect("days > 0");
    (trace, n)
}

#[test]
fn full_pipeline_produces_sane_numbers() {
    let (trace, n) = view_for(Site::Hsu, 48);
    let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
    let params = WcmaParams::new(0.7, 10, 2, 48).unwrap();
    let log = run_predictor(&view, &mut WcmaPredictor::new(params));
    // One record per slot except the trace's final slot.
    assert_eq!(log.len(), view.total_slots() - 1);
    let summary = EvalProtocol::paper().evaluate(&log);
    assert!(
        summary.count > 500,
        "enough evaluation points: {}",
        summary.count
    );
    // Sane solar prediction: MAPE within (0, 60%) and MAPE' above MAPE.
    assert!(summary.mape > 0.005 && summary.mape < 0.6, "{summary}");
    assert!(summary.mape_prime > summary.mape, "{summary}");
}

#[test]
fn sweep_and_streaming_agree_on_synthetic_data() {
    // The sweep engine's exactness on real synthetic data (not just the
    // unit-test fixtures): pick a few scattered grid points.
    let (trace, n) = view_for(Site::Pfci, 24);
    let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
    let grid = ParamGrid::builder()
        .alphas(vec![0.0, 0.6, 1.0])
        .days(vec![3, 11, 20])
        .ks(vec![1, 4])
        .build()
        .unwrap();
    let protocol = EvalProtocol::paper();
    let result = sweep(&view, &grid, &protocol);
    for (ai, &alpha) in grid.alphas().iter().enumerate() {
        for (di, &d) in grid.days().iter().enumerate() {
            for (ki, &k) in grid.ks().iter().enumerate() {
                let params = WcmaParams::new(alpha, d, k, 24).unwrap();
                let log = run_predictor(&view, &mut WcmaPredictor::new(params));
                let summary = protocol.evaluate(&log);
                assert!(
                    (summary.mape - result.mape(ai, di, ki)).abs() < 1e-12,
                    "({alpha}, {d}, {k})"
                );
                assert_eq!(summary.count, result.eval_count());
            }
        }
    }
}

#[test]
fn wcma_beats_naive_baselines_on_variable_site() {
    let (trace, n) = view_for(Site::Ornl, 48);
    let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
    let protocol = EvalProtocol::paper();
    let params = WcmaParams::new(0.7, 10, 2, 48).unwrap();
    let wcma = protocol
        .evaluate(&run_predictor(&view, &mut WcmaPredictor::new(params)))
        .mape;
    let pers = protocol
        .evaluate(&run_predictor(&view, &mut PersistencePredictor::new(48)))
        .mape;
    let ewma = protocol
        .evaluate(&run_predictor(
            &view,
            &mut EwmaPredictor::new(0.5, 48).unwrap(),
        ))
        .mape;
    assert!(wcma < pers, "WCMA {wcma} vs persistence {pers}");
    assert!(wcma < ewma, "WCMA {wcma} vs EWMA {ewma}");
}

#[test]
fn all_sites_generate_and_evaluate_at_all_paper_rates() {
    for site in Site::ALL {
        let trace = TraceGenerator::new(site.config(), 5)
            .generate_days(30)
            .unwrap();
        for n in SlotsPerDay::PAPER_VALUES {
            let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
            let params = WcmaParams::new(0.5, 5, 2, n as usize).unwrap();
            let log = run_predictor(&view, &mut WcmaPredictor::new(params));
            let summary = EvalProtocol::paper().evaluate(&log);
            assert!(summary.mape.is_finite(), "{site} N={n}");
        }
    }
}

#[test]
fn trace_csv_round_trip_preserves_evaluation() {
    let (trace, _) = view_for(Site::Ecsu, 48);
    let mut buf = Vec::new();
    solar_trace::csv::write_trace(&mut buf, &trace).unwrap();
    let back = solar_trace::csv::read_trace(buf.as_slice()).unwrap();
    assert_eq!(back, trace);
    let view_a = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let view_b = SlotView::new(&back, SlotsPerDay::new(48).unwrap()).unwrap();
    let params = WcmaParams::new(0.7, 5, 2, 48).unwrap();
    let a = run_predictor(&view_a, &mut WcmaPredictor::new(params));
    let b = run_predictor(&view_b, &mut WcmaPredictor::new(params));
    assert_eq!(a, b);
}
