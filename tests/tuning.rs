//! Tuning-loop integration tests: report determinism across thread
//! counts (mirroring `tests/fleet.rs`) and the no-regression property —
//! per-regime tuned parameters never lose to the global default on
//! their own training scenarios.

use fleet_tuner::{FleetTuner, SearchBudget, TunerConfig, GUIDELINE};
use param_explore::ParamGrid;
use proptest::prelude::*;
use scenario_fleet::{Catalog, FleetEngine, FleetMatrix, ManagerSpec, Scenario};

fn small_config(seed: u64) -> TunerConfig {
    TunerConfig {
        grid: ParamGrid::builder()
            .alphas(vec![0.0, 1.0])
            .days(vec![5, 10])
            .ks(vec![1, 2])
            .build()
            .unwrap(),
        budget: SearchBudget {
            max_rounds: 1,
            max_candidates: 16,
        },
        dynamic_decays: vec![0.85],
        dynamic_alphas: vec![0.0, 0.5, 1.0],
        ..TunerConfig::new(seed)
    }
}

fn training_scenarios() -> Vec<Scenario> {
    let catalog = Catalog::builtin();
    ["desert-clear-sky", "marine-fog", "aging-node"]
        .iter()
        .map(|name| catalog.get(name).expect("builtin scenario").clone())
        .collect()
}

#[test]
fn tuning_report_json_is_byte_identical_across_thread_counts() {
    let scenarios = training_scenarios();
    let reference = {
        let mut config = small_config(2010);
        config.threads = Some(1);
        FleetTuner::new(config)
            .unwrap()
            .tune(&scenarios)
            .unwrap()
            .to_json_string()
    };
    for threads in [2, 4] {
        let mut config = small_config(2010);
        config.threads = Some(threads);
        let json = FleetTuner::new(config)
            .unwrap()
            .tune(&scenarios)
            .unwrap()
            .to_json_string();
        assert_eq!(json, reference, "thread count {threads} changed the report");
    }
    // And the default (all cores) tuner agrees too.
    let default_json = FleetTuner::new(small_config(2010))
        .unwrap()
        .tune(&scenarios)
        .unwrap()
        .to_json_string();
    assert_eq!(default_json, reference);
}

#[test]
fn report_covers_every_regime_and_carries_deployment_scores() {
    let report = FleetTuner::new(small_config(7))
        .unwrap()
        .tune(&training_scenarios())
        .unwrap();
    // desert (desert-clear-sky), marine (marine-fog), temperate (aging-node).
    assert_eq!(report.regimes.len(), 3);
    for row in &report.regimes {
        assert!(!row.scenarios.is_empty());
        assert!(row.q16_score.is_finite());
        assert!(row.dynamic_score.is_finite());
        assert!(row.candidates > 0);
    }
    // The JSON parses back and the winner table renders.
    let parsed = scenario_fleet::json::Json::parse(&report.to_json_string()).unwrap();
    assert_eq!(parsed.req("regimes").unwrap().as_arr().unwrap().len(), 3);
    assert!(!report.render_text().is_empty());
}

/// Re-scores a parameter triple on one regime's scenarios with a fresh
/// engine — independent of the tuner's own evaluation path.
fn independent_score(
    seed: u64,
    scenarios: &[Scenario],
    spec: scenario_fleet::PredictorSpec,
) -> f64 {
    let matrix = FleetMatrix::new(
        vec![spec],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios.to_vec(),
    )
    .unwrap();
    let result = FleetEngine::new(seed).run(&matrix).unwrap();
    result.scorecard.overall[0].score
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole property: for any seed, every regime's tuned
    /// parameters score at least as well as the global default
    /// (the paper's guideline) on the regime's own training scenarios —
    /// verified through an independent engine, not the tuner's cache.
    #[test]
    fn tuned_params_never_lose_to_the_global_default_on_their_regime(seed in 0u64..500) {
        let catalog = Catalog::builtin();
        let scenarios: Vec<Scenario> = ["desert-clear-sky", "marine-fog"]
            .iter()
            .map(|name| catalog.get(name).unwrap().clone())
            .collect();
        let report = FleetTuner::new(small_config(seed))
            .unwrap()
            .tune(&scenarios)
            .unwrap();
        for row in &report.regimes {
            let members: Vec<Scenario> = scenarios
                .iter()
                .filter(|s| row.scenarios.contains(&s.name))
                .cloned()
                .collect();
            let tuned = independent_score(seed, &members, row.tuned.spec());
            let global = independent_score(seed, &members, report.global.spec());
            let guideline = independent_score(seed, &members, GUIDELINE.spec());
            prop_assert!(
                tuned <= global + 1e-12 && tuned <= guideline + 1e-12,
                "{}: tuned {} vs global {} / guideline {}",
                row.regime, tuned, global, guideline
            );
            // The report's own numbers agree with the independent engine.
            prop_assert!((tuned - row.tuned_score).abs() < 1e-12);
        }
    }
}
