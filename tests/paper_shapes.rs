//! Qualitative paper-shape assertions: the trends the reproduction must
//! preserve regardless of absolute numbers (see EXPERIMENTS.md).
//!
//! These run on ~110-day data sets to stay fast in debug builds; the
//! `repro` binary regenerates the full-year numbers.

use param_explore::dynamic::clairvoyant_eval;
use param_explore::{sweep, ParamGrid, SweepResult};
use pred_metrics::EvalProtocol;
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};
use std::collections::HashMap;
use std::sync::OnceLock;

const DAYS: usize = 110;

/// Shared sweep cache across the tests in this file (they are expensive).
fn sweeps() -> &'static HashMap<(Site, u32), SweepResult> {
    static CACHE: OnceLock<HashMap<(Site, u32), SweepResult>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut map = HashMap::new();
        let grid = ParamGrid::paper();
        let protocol = EvalProtocol::paper();
        for site in Site::ALL {
            let trace = paper_repro::datasets::site_trace(site, DAYS);
            for n in [96u32, 48, 24] {
                let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
                map.insert((site, n), sweep(&view, &grid, &protocol));
            }
        }
        map
    })
}

#[test]
fn site_difficulty_ordering_matches_paper() {
    // Paper Table III at N=48: PFCI < NPCS << ECSU < HSU < SPMD < ORNL.
    // We assert the robust part: both desert sites are easier than every
    // humid site, and ORNL is the hardest overall.
    let mape = |site: Site| sweeps()[&(site, 48)].best_by_mape().mape;
    for desert in [Site::Pfci, Site::Npcs] {
        for humid in [Site::Ecsu, Site::Hsu, Site::Spmd, Site::Ornl] {
            assert!(
                mape(desert) < mape(humid),
                "{desert} ({:.3}) must be easier than {humid} ({:.3})",
                mape(desert),
                mape(humid)
            );
        }
    }
    let hardest = Site::ALL
        .into_iter()
        .max_by(|&a, &b| mape(a).partial_cmp(&mape(b)).unwrap());
    assert_eq!(hardest, Some(Site::Ornl));
}

#[test]
fn accuracy_improves_with_sampling_rate() {
    // Paper: "prediction accuracy increases with increase in N".
    for site in Site::ALL {
        let at = |n: u32| sweeps()[&(site, n)].best_by_mape().mape;
        assert!(
            at(96) < at(24),
            "{site}: MAPE at N=96 ({:.3}) must undercut N=24 ({:.3})",
            at(96),
            at(24)
        );
    }
}

#[test]
fn optimal_alpha_grows_with_sampling_rate() {
    // Paper: alpha 0.5-0.6 at N=24 rising toward 1 at N=288. Assert the
    // monotone direction on the site average.
    let mean_alpha = |n: u32| -> f64 {
        let v: Vec<f64> = Site::ALL
            .iter()
            .map(|&s| sweeps()[&(s, n)].best_by_mape().alpha)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        mean_alpha(96) > mean_alpha(24),
        "mean alpha at N=96 ({}) vs N=24 ({})",
        mean_alpha(96),
        mean_alpha(24)
    );
    // And alpha at N=24 sits in the paper's 0.4-0.7 band on average.
    let a24 = mean_alpha(24);
    assert!((0.3..=0.8).contains(&a24), "alpha at N=24: {a24}");
}

#[test]
fn mape_prime_is_pessimistic_and_prefers_low_alpha() {
    // Paper Table II: MAPE' values are far higher and the optimizing
    // alpha far lower than under MAPE.
    for site in [Site::Spmd, Site::Ornl, Site::Pfci] {
        let result = &sweeps()[&(site, 48)];
        let by_mape = result.best_by_mape();
        let by_prime = result.best_by_mape_prime();
        assert!(
            by_prime.mape_prime > by_mape.mape * 1.2,
            "{site}: MAPE' {:.3} vs MAPE {:.3}",
            by_prime.mape_prime,
            by_mape.mape
        );
        assert!(
            by_prime.alpha < by_mape.alpha,
            "{site}: alpha' {} vs alpha {}",
            by_prime.alpha,
            by_mape.alpha
        );
    }
}

#[test]
fn d_has_diminishing_returns() {
    // Paper Fig. 7: gains beyond D ≈ 10-11 are small.
    for site in [Site::Spmd, Site::Hsu] {
        let result = &sweeps()[&(site, 48)];
        let best = result.best_by_mape();
        let curve = result.mape_vs_days(best.alpha, best.k).unwrap();
        let at = |d: usize| curve.iter().find(|&&(x, _)| x == d).unwrap().1;
        let early_gain = at(2) - at(11);
        let late_gain = (at(11) - at(20)).max(0.0);
        assert!(
            late_gain < early_gain.max(0.003),
            "{site}: early {early_gain:.4} vs late {late_gain:.4}"
        );
    }
}

#[test]
fn k2_guideline_is_near_optimal() {
    // Paper: "K = 2 gives an average error very close to minimum".
    for site in Site::ALL {
        let result = &sweeps()[&(site, 48)];
        let best = result.best_by_mape();
        let at2 = result.best_at_k(2).unwrap();
        assert!(
            at2.mape - best.mape < 0.012,
            "{site}: K=2 penalty {:.4}",
            at2.mape - best.mape
        );
    }
}

#[test]
fn dynamic_selection_gains_exceed_ten_points_of_accuracy() {
    // Paper §IV-C headline: >10% (relative to static error) gains from
    // dynamic parameters, growing as N shrinks; dynamic at N=48 beats
    // static at higher rates.
    let grid = ParamGrid::paper();
    let protocol = EvalProtocol::paper();
    for site in [Site::Spmd, Site::Ornl] {
        let trace = paper_repro::datasets::site_trace(site, DAYS);
        let gain_at = |n: u32| -> (f64, f64) {
            let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
            let best = sweeps()[&(site, n)].best_by_mape();
            let outcome =
                clairvoyant_eval(&view, best.days, grid.alphas(), grid.k_max(), &protocol);
            (best.mape, outcome.both_mape)
        };
        let (static48, dyn48) = gain_at(48);
        assert!(
            dyn48 < static48 * 0.6,
            "{site}: dynamic {dyn48:.3} must cut static {static48:.3} by >40%"
        );
        // Dynamic at N=48 beats static at N=96 (the paper notes dynamic
        // at N=48 even beats static at N=288).
        let static96 = sweeps()[&(site, 96)].best_by_mape().mape;
        assert!(
            dyn48 < static96,
            "{site}: dynamic@48 {dyn48:.3} vs static@96 {static96:.3}"
        );
        // Gains grow as N decreases.
        let (static24, dyn24) = gain_at(24);
        let (static96b, dyn96) = {
            let view = SlotView::new(&trace, SlotsPerDay::new(96).unwrap()).unwrap();
            let best = sweeps()[&(site, 96)].best_by_mape();
            let outcome =
                clairvoyant_eval(&view, best.days, grid.alphas(), grid.k_max(), &protocol);
            (best.mape, outcome.both_mape)
        };
        let abs_gain_24 = static24 - dyn24;
        let abs_gain_96 = static96b - dyn96;
        assert!(
            abs_gain_24 > abs_gain_96,
            "{site}: gain at N=24 ({abs_gain_24:.3}) vs N=96 ({abs_gain_96:.3})"
        );
    }
}
