//! End-to-end observability contracts: the run ledger and span report
//! ride alongside the fleet pipeline without moving a byte of its
//! pinned output.
//!
//! Unit tests in `fleet_obs` and the engine cover the pieces; these
//! integration tests hold the cross-crate seams:
//!
//! 1. **collection is invisible** — a recording collector produces
//!    scorecard JSON byte-identical to the no-op default;
//! 2. **the ledger tells the truth** — a warm-cache re-run shows cache
//!    hits equal to the job count and zero synthesis work;
//! 3. **reports survive the disk** — a full `RunReport` round-trips
//!    through a file byte-exactly, the path `--report` exercises;
//! 4. **ledgers compose** — shard-half ledgers absorbed into one
//!    collector equal the whole-fleet ledger, the property that makes
//!    distributed runs mergeable like `ScorecardShard`s;
//! 5. **reports consume** — two runs of the same matrix diff to
//!    `Verdict::Clean` under a generous wall threshold, a perturbed
//!    matrix diffs to `Regressed` with ranked findings, the archive
//!    trends appended reports, the chrome-trace export is a valid
//!    event array, and committed `fleet-run-report/1` documents still
//!    parse.

use scenario_fleet::{
    Catalog, Collector, DiffConfig, FleetEngine, FleetMatrix, Ledger, ManagerSpec, PredictorSpec,
    ReportDiff, RunArchive, RunReport, TraceCachePolicy, Verdict,
};

fn smoke_matrix(scenarios: &[&str]) -> FleetMatrix {
    let catalog = Catalog::builtin();
    FleetMatrix::new(
        PredictorSpec::guideline_family(),
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios
            .iter()
            .map(|name| catalog.get(name).expect("builtin").clone())
            .collect(),
    )
    .expect("matrix assembles")
}

#[test]
fn recording_collector_leaves_the_scorecard_byte_identical() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog", "arctic-winter"]);
    let plain = FleetEngine::new(7).run(&matrix).expect("plain run");
    let collector = Collector::recording();
    let observed = FleetEngine::new(7)
        .with_collector(collector.clone())
        .run(&matrix)
        .expect("observed run");
    assert_eq!(
        plain.scorecard.to_json_string(),
        observed.scorecard.to_json_string(),
        "collection must not move a byte of the scorecard"
    );
    // And the ledger actually recorded the run.
    let ledger = collector.ledger();
    assert_eq!(ledger.counter("jobs/evaluated"), matrix.job_count() as u64);
    assert_eq!(ledger.counter("score/scenarios_ranked"), 3);
}

#[test]
fn warm_cache_rerun_ledger_shows_hits_equal_jobs_and_zero_synthesis() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog"]);
    let engine = FleetEngine::new(11);
    let mut cache = engine.new_cache();
    engine.run_cached(&matrix, &mut cache).expect("cold run");

    let collector = Collector::recording();
    let warm_engine = FleetEngine::new(11).with_collector(collector.clone());
    let warm = warm_engine
        .run_cached(&matrix, &mut cache)
        .expect("warm run");
    assert_eq!(warm.cached_jobs, matrix.job_count());

    let ledger = collector.ledger();
    assert_eq!(ledger.counter("cache/job_hits"), matrix.job_count() as u64);
    assert_eq!(ledger.counter("cache/job_misses"), 0);
    assert_eq!(ledger.counter("jobs/fresh"), 0);
    assert_eq!(ledger.counter("synth/trace_generations"), 0);
    assert_eq!(ledger.counter("synth/streamed_passes"), 0);
    assert_eq!(ledger.counter("slots/processed"), 0);
}

#[test]
fn run_report_round_trips_through_a_file() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog"]);
    let collector = Collector::recording();
    FleetEngine::new(3)
        .with_trace_cache(TraceCachePolicy::bounded(4 << 20))
        .with_collector(collector.clone())
        .run(&matrix)
        .expect("observed run");

    let report = collector.report();
    assert!(report.wall_ns > 0, "the run took time");
    assert!(
        !report.scenario_top.is_empty(),
        "per-scenario timings recorded"
    );
    let text = report.to_json_string();

    let path = std::env::temp_dir().join("fleet_obs_report_roundtrip.json");
    std::fs::write(&path, &text).expect("write report");
    let read_back = std::fs::read_to_string(&path).expect("read report");
    let parsed = RunReport::from_json_str(&read_back).expect("report parses");
    assert_eq!(
        parsed.to_json_string(),
        text,
        "report must round-trip through disk byte-exactly"
    );
    // The parsed ledger is the recorded ledger.
    assert_eq!(
        parsed.ledger.to_json_string(),
        collector.ledger().to_json_string()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shard_half_ledgers_absorb_into_the_whole_fleet_ledger() {
    let catalog = Catalog::builtin();
    let names = [
        "desert-clear-sky",
        "marine-fog",
        "arctic-winter",
        "equatorial-rainband",
    ];
    let scenarios: Vec<_> = names
        .iter()
        .map(|name| catalog.get(name).expect("builtin").clone())
        .collect();
    let predictors = PredictorSpec::guideline_family();
    let managers = vec![ManagerSpec::Greedy];

    let whole = Collector::recording();
    let whole_matrix = FleetMatrix::new(predictors.clone(), managers.clone(), scenarios.clone())
        .expect("whole matrix");
    FleetEngine::new(5)
        .with_collector(whole.clone())
        .run(&whole_matrix)
        .expect("whole run");

    // The whole-fleet ledger carries the distribution plane too — the
    // halves must reassemble it bucket-for-bucket below.
    assert!(whole.ledger().histogram("score/mape").is_some());

    // Evaluate the two scenario halves as independent runs — separate
    // collectors, as two hosts would — then absorb both ledgers into
    // one. Every counter in the fleet ledger is per-scenario work, so
    // the absorbed sum must equal the whole-fleet ledger exactly —
    // histograms included, since `to_json_string` renders every plane.
    let combined = Collector::recording();
    for half in scenarios.chunks(2) {
        let part = Collector::recording();
        let matrix = FleetMatrix::new(predictors.clone(), managers.clone(), half.to_vec())
            .expect("half matrix");
        FleetEngine::new(5)
            .with_collector(part.clone())
            .run(&matrix)
            .expect("half run");
        combined
            .absorb_ledger(&part.ledger())
            .expect("halves absorb");
    }
    assert_eq!(
        combined.ledger().to_json_string(),
        whole.ledger().to_json_string(),
        "absorbed shard ledgers must equal the whole-fleet ledger"
    );
}

/// A wall config so generous that only deterministic-plane deltas can
/// move the verdict — what the CI sentinel uses, since wall time is
/// machine noise but counters and histograms are contracts.
fn counters_only_config() -> DiffConfig {
    DiffConfig {
        wall_noise_ratio: 1e9,
        wall_regress_ratio: 1e9,
        ..DiffConfig::default()
    }
}

#[test]
fn same_matrix_runs_diff_clean_across_thread_counts() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog", "arctic-winter"]);
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let collector = Collector::recording();
        FleetEngine::new(7)
            .with_threads(threads)
            .with_collector(collector.clone())
            .run(&matrix)
            .expect("run");
        reports.push(collector.report());
    }
    let diff = ReportDiff::compute(&reports[0], &reports[1], &counters_only_config());
    assert_eq!(diff.verdict, Verdict::Clean);
    assert!(diff.deterministic_clean());
    assert!(diff.counter_deltas.is_empty());
    assert!(diff.histogram_deltas.is_empty());
    assert!(diff.scenario_drift.is_empty());
    // And the engine actually recorded distributions to compare: one
    // MAPE sample per distinct predictor per scenario unit.
    let mape = reports[0]
        .ledger
        .histogram("score/mape")
        .expect("mape histogram");
    assert_eq!(
        mape.count(),
        (matrix.predictors.len() * matrix.scenarios.len()) as u64
    );
    assert_eq!(
        reports[0]
            .ledger
            .histogram("fleet/unit_slots")
            .expect("unit_slots histogram")
            .count(),
        matrix.scenarios.len() as u64
    );
}

#[test]
fn perturbed_matrix_diffs_regressed_with_ranked_findings() {
    let run = |names: &[&str]| {
        let collector = Collector::recording();
        FleetEngine::new(7)
            .with_collector(collector.clone())
            .run(&smoke_matrix(names))
            .expect("run");
        collector.report()
    };
    let before = run(&["desert-clear-sky", "marine-fog", "arctic-winter"]);
    let after = run(&["desert-clear-sky", "marine-fog"]);
    let diff = ReportDiff::compute(&before, &after, &counters_only_config());
    assert_eq!(diff.verdict, Verdict::Regressed);
    assert!(!diff.scenario_drift.is_empty());
    // The dropped scenario leads the ranking: all of its work vanished.
    assert_eq!(diff.scenario_drift[0].scenario, "arctic-winter");
    for pair in diff.scenario_drift.windows(2) {
        assert!(
            pair[0].magnitude >= pair[1].magnitude,
            "drift must rank by magnitude"
        );
    }
    assert!(!diff.histogram_deltas.is_empty(), "MAPE distribution moved");
    let markdown = diff.render_markdown();
    assert!(markdown.contains("**Verdict: regressed**"));
    assert!(markdown.contains("Worst-regressing scenarios"));
    assert!(markdown.contains("arctic-winter"));
    assert!(markdown.contains("Histogram drift"));
}

#[test]
fn archive_appends_and_trends_engine_reports() {
    let path =
        std::env::temp_dir().join(format!("fleet_obs_it_archive_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    for (run_id, names) in [
        ("run-a", vec!["desert-clear-sky"]),
        ("run-b", vec!["desert-clear-sky", "marine-fog"]),
    ] {
        let collector = Collector::recording();
        FleetEngine::new(7)
            .with_collector(collector.clone())
            .run(&smoke_matrix(&names))
            .expect("run");
        RunArchive::append(&path, run_id, &collector.report()).expect("append");
    }
    let archive = RunArchive::load(&path).expect("load");
    assert_eq!(archive.entries.len(), 2);
    assert_eq!(archive.entries[0].run_id, "run-a");
    let trend = archive.trend_text(10);
    assert!(trend.contains("run-a") && trend.contains("run-b"));
    assert!(trend.contains("jobs/evaluated"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chrome_trace_export_is_a_valid_complete_event_array() {
    let collector = Collector::recording();
    FleetEngine::new(3)
        .with_collector(collector.clone())
        .run(&smoke_matrix(&["desert-clear-sky", "marine-fog"]))
        .expect("run");
    let report = collector.report();
    let text = fleet_obs::chrome_trace_string(&report);
    let parsed = scenario_fleet::json::Json::parse(&text).expect("trace parses");
    let scenario_fleet::json::Json::Arr(events) = &parsed else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(events.len() >= 2, "root plus at least one phase");
    for event in events {
        assert_eq!(event.req_str("ph").unwrap(), "X", "complete events only");
        assert!(event.req_num("ts").unwrap() >= 0.0);
        assert!(event.req_num("dur").unwrap() >= 0.0);
        event.req_num("pid").unwrap();
        event.req_num("tid").unwrap();
        event.req_str("name").unwrap();
    }
}

#[test]
fn committed_v1_report_fixture_still_parses_and_rerenders_as_v2() {
    let fixture = include_str!("data/run_report_v1.json");
    let report = RunReport::from_json_str(fixture).expect("/1 fixture parses");
    assert_eq!(report.ledger.counter("jobs/evaluated"), 36);
    assert_eq!(
        report
            .ledger
            .scenario_counter("marine-fog", "slots/processed"),
        5760
    );
    assert_eq!(report.scenario_top.len(), 3);
    assert!(report.ledger.histograms().next().is_none());
    // Round-trip: the re-render upgrades the schema tag, keeps the data.
    let rendered = report.to_json_string();
    assert!(rendered.contains("fleet-run-report/2"));
    let back = RunReport::from_json_str(&rendered).expect("re-parse");
    assert_eq!(back, report);
}

#[test]
fn ledger_merge_is_order_independent_and_validates_labels() {
    let mut a = Ledger::new();
    a.count("jobs/evaluated", 3);
    a.count_scenario("desert", "slots/processed", 100);
    a.gauge("admission/trace_budget_bytes", 512);
    a.label("admission/trace_budget_source", "configured");

    let mut b = Ledger::new();
    b.count("jobs/evaluated", 4);
    b.count_scenario("marine", "slots/processed", 50);
    b.gauge("admission/trace_budget_bytes", 1024);
    b.label("admission/trace_budget_source", "configured");

    let mut ab = a.clone();
    ab.merge(&b).expect("merge a+b");
    let mut ba = b.clone();
    ba.merge(&a).expect("merge b+a");
    assert_eq!(ab.to_json_string(), ba.to_json_string());
    assert_eq!(ab.counter("jobs/evaluated"), 7);
    // Gauges take the maximum; labels must agree.
    assert_eq!(ab.gauge_value("admission/trace_budget_bytes"), Some(1024));
    let mut conflicting = Ledger::new();
    conflicting.label("admission/trace_budget_source", "unbounded");
    assert!(
        a.clone().merge(&conflicting).is_err(),
        "conflicting labels must refuse to merge"
    );
}

proptest::proptest! {
    /// The histogram analogue of the counter-absorption test above,
    /// over arbitrary observation streams: observing a sequence into
    /// one ledger equals splitting it at any point into two shard-half
    /// ledgers and merging — bucket-wise, byte-for-byte.
    #[test]
    fn shard_half_histograms_absorb_bucket_wise_into_the_whole(
        values in proptest::collection::vec(
            proptest::prop_oneof![
                // Spanning the bucket range, plus the zero bucket and
                // clamped extremes.
                1e-12f64..1e12,
                proptest::prop_oneof![
                    proptest::prelude::Just(0.0f64),
                    proptest::prelude::Just(-3.5f64),
                    proptest::prelude::Just(1e300f64),
                ],
            ],
            1..40,
        ),
        split_at in 0usize..40,
    ) {
        let split_at = split_at.min(values.len());
        let mut whole = Ledger::new();
        for &v in &values {
            whole.observe("score/mape", v);
        }
        let mut left = Ledger::new();
        for &v in &values[..split_at] {
            left.observe("score/mape", v);
        }
        let mut right = Ledger::new();
        for &v in &values[split_at..] {
            right.observe("score/mape", v);
        }
        let mut combined = left.clone();
        combined.merge(&right).unwrap();
        proptest::prop_assert_eq!(combined.to_json_string(), whole.to_json_string());
        // And in the other merge order (commutativity).
        let mut swapped = right;
        swapped.merge(&left).unwrap();
        proptest::prop_assert_eq!(swapped.to_json_string(), whole.to_json_string());
        // The whole histogram holds every observation.
        proptest::prop_assert_eq!(
            whole.histogram("score/mape").unwrap().count(),
            values.len() as u64
        );
    }
}
