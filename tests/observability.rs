//! End-to-end observability contracts: the run ledger and span report
//! ride alongside the fleet pipeline without moving a byte of its
//! pinned output.
//!
//! Unit tests in `fleet_obs` and the engine cover the pieces; these
//! integration tests hold the cross-crate seams:
//!
//! 1. **collection is invisible** — a recording collector produces
//!    scorecard JSON byte-identical to the no-op default;
//! 2. **the ledger tells the truth** — a warm-cache re-run shows cache
//!    hits equal to the job count and zero synthesis work;
//! 3. **reports survive the disk** — a full `RunReport` round-trips
//!    through a file byte-exactly, the path `--report` exercises;
//! 4. **ledgers compose** — shard-half ledgers absorbed into one
//!    collector equal the whole-fleet ledger, the property that makes
//!    distributed runs mergeable like `ScorecardShard`s.

use scenario_fleet::{
    Catalog, Collector, FleetEngine, FleetMatrix, Ledger, ManagerSpec, PredictorSpec, RunReport,
    TraceCachePolicy,
};

fn smoke_matrix(scenarios: &[&str]) -> FleetMatrix {
    let catalog = Catalog::builtin();
    FleetMatrix::new(
        PredictorSpec::guideline_family(),
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios
            .iter()
            .map(|name| catalog.get(name).expect("builtin").clone())
            .collect(),
    )
    .expect("matrix assembles")
}

#[test]
fn recording_collector_leaves_the_scorecard_byte_identical() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog", "arctic-winter"]);
    let plain = FleetEngine::new(7).run(&matrix).expect("plain run");
    let collector = Collector::recording();
    let observed = FleetEngine::new(7)
        .with_collector(collector.clone())
        .run(&matrix)
        .expect("observed run");
    assert_eq!(
        plain.scorecard.to_json_string(),
        observed.scorecard.to_json_string(),
        "collection must not move a byte of the scorecard"
    );
    // And the ledger actually recorded the run.
    let ledger = collector.ledger();
    assert_eq!(ledger.counter("jobs/evaluated"), matrix.job_count() as u64);
    assert_eq!(ledger.counter("score/scenarios_ranked"), 3);
}

#[test]
fn warm_cache_rerun_ledger_shows_hits_equal_jobs_and_zero_synthesis() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog"]);
    let engine = FleetEngine::new(11);
    let mut cache = engine.new_cache();
    engine.run_cached(&matrix, &mut cache).expect("cold run");

    let collector = Collector::recording();
    let warm_engine = FleetEngine::new(11).with_collector(collector.clone());
    let warm = warm_engine
        .run_cached(&matrix, &mut cache)
        .expect("warm run");
    assert_eq!(warm.cached_jobs, matrix.job_count());

    let ledger = collector.ledger();
    assert_eq!(ledger.counter("cache/job_hits"), matrix.job_count() as u64);
    assert_eq!(ledger.counter("cache/job_misses"), 0);
    assert_eq!(ledger.counter("jobs/fresh"), 0);
    assert_eq!(ledger.counter("synth/trace_generations"), 0);
    assert_eq!(ledger.counter("synth/streamed_passes"), 0);
    assert_eq!(ledger.counter("slots/processed"), 0);
}

#[test]
fn run_report_round_trips_through_a_file() {
    let matrix = smoke_matrix(&["desert-clear-sky", "marine-fog"]);
    let collector = Collector::recording();
    FleetEngine::new(3)
        .with_trace_cache(TraceCachePolicy::bounded(4 << 20))
        .with_collector(collector.clone())
        .run(&matrix)
        .expect("observed run");

    let report = collector.report();
    assert!(report.wall_ns > 0, "the run took time");
    assert!(
        !report.scenario_top.is_empty(),
        "per-scenario timings recorded"
    );
    let text = report.to_json_string();

    let path = std::env::temp_dir().join("fleet_obs_report_roundtrip.json");
    std::fs::write(&path, &text).expect("write report");
    let read_back = std::fs::read_to_string(&path).expect("read report");
    let parsed = RunReport::from_json_str(&read_back).expect("report parses");
    assert_eq!(
        parsed.to_json_string(),
        text,
        "report must round-trip through disk byte-exactly"
    );
    // The parsed ledger is the recorded ledger.
    assert_eq!(
        parsed.ledger.to_json_string(),
        collector.ledger().to_json_string()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shard_half_ledgers_absorb_into_the_whole_fleet_ledger() {
    let catalog = Catalog::builtin();
    let names = [
        "desert-clear-sky",
        "marine-fog",
        "arctic-winter",
        "equatorial-rainband",
    ];
    let scenarios: Vec<_> = names
        .iter()
        .map(|name| catalog.get(name).expect("builtin").clone())
        .collect();
    let predictors = PredictorSpec::guideline_family();
    let managers = vec![ManagerSpec::Greedy];

    let whole = Collector::recording();
    let whole_matrix = FleetMatrix::new(predictors.clone(), managers.clone(), scenarios.clone())
        .expect("whole matrix");
    FleetEngine::new(5)
        .with_collector(whole.clone())
        .run(&whole_matrix)
        .expect("whole run");

    // Evaluate the two scenario halves as independent runs — separate
    // collectors, as two hosts would — then absorb both ledgers into
    // one. Every counter in the fleet ledger is per-scenario work, so
    // the absorbed sum must equal the whole-fleet ledger exactly.
    let combined = Collector::recording();
    for half in scenarios.chunks(2) {
        let part = Collector::recording();
        let matrix = FleetMatrix::new(predictors.clone(), managers.clone(), half.to_vec())
            .expect("half matrix");
        FleetEngine::new(5)
            .with_collector(part.clone())
            .run(&matrix)
            .expect("half run");
        combined
            .absorb_ledger(&part.ledger())
            .expect("halves absorb");
    }
    assert_eq!(
        combined.ledger().to_json_string(),
        whole.ledger().to_json_string(),
        "absorbed shard ledgers must equal the whole-fleet ledger"
    );
}

#[test]
fn ledger_merge_is_order_independent_and_validates_labels() {
    let mut a = Ledger::new();
    a.count("jobs/evaluated", 3);
    a.count_scenario("desert", "slots/processed", 100);
    a.gauge("admission/trace_budget_bytes", 512);
    a.label("admission/trace_budget_source", "configured");

    let mut b = Ledger::new();
    b.count("jobs/evaluated", 4);
    b.count_scenario("marine", "slots/processed", 50);
    b.gauge("admission/trace_budget_bytes", 1024);
    b.label("admission/trace_budget_source", "configured");

    let mut ab = a.clone();
    ab.merge(&b).expect("merge a+b");
    let mut ba = b.clone();
    ba.merge(&a).expect("merge b+a");
    assert_eq!(ab.to_json_string(), ba.to_json_string());
    assert_eq!(ab.counter("jobs/evaluated"), 7);
    // Gauges take the maximum; labels must agree.
    assert_eq!(ab.gauge_value("admission/trace_budget_bytes"), Some(1024));
    let mut conflicting = Ledger::new();
    conflicting.label("admission/trace_budget_source", "unbounded");
    assert!(
        a.clone().merge(&conflicting).is_err(),
        "conflicting labels must refuse to merge"
    );
}
