//! Integration tests for the streaming slot pipeline and sharded
//! scorecards: merge determinism across thread counts and shard
//! orderings, bounded-memory multi-year evaluation, and correlated
//! fleet-wide faults.

use scenario_fleet::{
    Catalog, Climate, FaultSpec, FleetEngine, FleetFault, FleetMatrix, ManagerSpec, NodeProfile,
    PredictorSpec, Scenario, Scorecard, ScorecardShard, ShardManifest, SiteSpec, TraceCachePolicy,
};

/// The default catalog matrix (every builtin regime, multi-year entries
/// included) under a compact predictor/manager set.
fn catalog_matrix() -> FleetMatrix {
    FleetMatrix::new(
        vec![
            PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            },
            PredictorSpec::Persistence,
        ],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        Catalog::builtin().scenarios().to_vec(),
    )
    .unwrap()
}

#[test]
fn merged_shards_match_monolithic_across_threads_and_orderings() {
    let matrix = catalog_matrix();
    let reference = FleetEngine::new(2026)
        .with_threads(1)
        .run(&matrix)
        .unwrap()
        .scorecard
        .to_json_string();

    for threads in [1usize, 2, 8] {
        let engine = FleetEngine::new(2026).with_threads(threads);
        let sharded = engine.run_sharded(&matrix, 4).unwrap();
        assert_eq!(sharded.shards.len(), 4);

        // Merge in delivered, reversed, and rotated shard orders — the
        // manifest alone fixes the output.
        let mut reversed = sharded.shards.clone();
        reversed.reverse();
        let mut rotated = sharded.shards.clone();
        rotated.rotate_left(1);
        for shards in [&sharded.shards, &reversed, &rotated] {
            let merged = Scorecard::merge_shards(&sharded.manifest, shards).unwrap();
            assert_eq!(
                merged.to_json_string(),
                reference,
                "threads={threads}: merged shards diverged from the monolithic scorecard"
            );
        }

        // And through the serialized form: shards written to JSON and
        // parsed back still merge to the identical document.
        let manifest_json = sharded.manifest.to_json().render_pretty();
        let parsed_manifest = ShardManifest::from_json_str(&manifest_json).unwrap();
        let parsed_shards: Vec<ScorecardShard> = sharded
            .shards
            .iter()
            .map(|s| ScorecardShard::from_json_str(&s.to_json().render_pretty()).unwrap())
            .collect();
        let merged = Scorecard::merge_shards(&parsed_manifest, &parsed_shards).unwrap();
        assert_eq!(merged.to_json_string(), reference);
    }
}

/// Twelve 3-year scenarios across climates and latitudes.
fn three_year_fleet() -> Vec<Scenario> {
    let climates = [
        Climate::Desert,
        Climate::Temperate,
        Climate::Marine,
        Climate::Monsoon,
    ];
    let latitudes = [-35.0, 12.0, 48.0];
    let mut scenarios = Vec::new();
    for (ci, climate) in climates.iter().enumerate() {
        for (li, latitude) in latitudes.iter().enumerate() {
            scenarios.push(Scenario {
                name: format!("triennium-{}-{}", climate.as_str(), li),
                summary: format!("3-year {} run at {latitude}°", climate.as_str()),
                site: SiteSpec::Custom {
                    latitude_deg: *latitude,
                    resolution_minutes: 5,
                    climate: *climate,
                },
                days: 1095,
                slots_per_day: 48,
                node: if (ci + li) % 2 == 0 {
                    NodeProfile::Mote
                } else {
                    NodeProfile::TinyMote
                },
                faults: vec![],
            });
        }
    }
    scenarios
}

#[test]
fn three_year_twelve_scenario_matrix_runs_under_a_bounded_trace_budget() {
    let scenarios = three_year_fleet();
    assert_eq!(scenarios.len(), 12);
    let matrix = FleetMatrix::new(
        vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios,
    )
    .unwrap();

    // One 3-year trace is 1095 × 288 × 8 ≈ 2.4 MiB; admit at most one.
    let budget = 4u64 << 20;
    let engine = FleetEngine::new(77).with_trace_cache(TraceCachePolicy::bounded(budget));
    let mut cache = engine.new_cache();
    let result = engine.run_cached(&matrix, &mut cache).unwrap();

    assert_eq!(cache.trace_count(), 1, "budget admits exactly one trace");
    assert!(cache.trace_bytes() as u64 <= budget);
    assert_eq!(result.streamed_jobs, 11, "the other eleven stream");
    let day_buffer = 288 * 8;
    for outcome in &result.outcomes {
        assert!(outcome.summary.mape.is_finite(), "{}", outcome.scenario);
        assert!(
            outcome.report.energy_balance_error_j() < 1e-6 * outcome.report.harvested_j.max(1.0),
            "{}",
            outcome.scenario
        );
        // Streamed jobs held one day of samples, never the horizon.
        if outcome.cost.peak_trace_bytes != 1095 * 288 * 8 {
            assert_eq!(outcome.cost.peak_trace_bytes, day_buffer);
        }
    }
    assert_eq!(
        result
            .outcomes
            .iter()
            .filter(|o| o.cost.peak_trace_bytes == day_buffer)
            .count(),
        11
    );
}

/// A storm-band fleet: three mid-latitude scenarios inside the band and
/// one southern control outside it, on brownout-prone hardware.
fn storm_band_matrix(fleet_faults: Vec<FleetFault>) -> FleetMatrix {
    let catalog = Catalog::builtin();
    let scenarios = vec![
        catalog.get("desert-clear-sky").unwrap().clone(),
        catalog.get("four-seasons").unwrap().clone(),
        catalog.get("continental-storms").unwrap().clone(),
        catalog.get("southern-four-seasons").unwrap().clone(),
    ];
    FleetMatrix::new(
        PredictorSpec::guideline_family(),
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios,
    )
    .unwrap()
    .with_fleet_faults(fleet_faults)
    .unwrap()
}

#[test]
fn correlated_storm_measurably_reorders_the_fault_regime_ranking() {
    // Seed chosen so the reorder below is deterministic (42 and 7 both
    // exhibit it; pinned on 42, the repo's canonical seed).
    let seed = 42;
    let correlated = FleetEngine::new(seed)
        .run(&storm_band_matrix(Catalog::builtin_fleet_events()))
        .unwrap();

    // The independent counterpart: the same storm energy, but each
    // scenario draws its own onset (per-scenario seeds) instead of one
    // shared event — the pre-FleetFault way of modelling storms.
    let mut independent_matrix = storm_band_matrix(vec![]);
    for (idx, scenario) in independent_matrix.scenarios.iter_mut().enumerate() {
        for event in Catalog::builtin_fleet_events() {
            if !event.affects(scenario).unwrap() {
                continue;
            }
            // A distinct event seed per scenario = uncorrelated onsets.
            let per_scenario_seed = 0x5EED ^ (idx as u64).wrapping_mul(0x9E37_79B9);
            scenario
                .faults
                .extend(event.project(per_scenario_seed, scenario).unwrap());
        }
    }
    let independent = FleetEngine::new(seed).run(&independent_matrix).unwrap();

    // The storm days differ between the two fault models...
    let onsets: Vec<Vec<&FaultSpec>> = independent_matrix
        .scenarios
        .iter()
        .map(|s| s.faults.iter().collect())
        .collect();
    assert!(
        !onsets.is_empty(),
        "independent matrix must carry projected faults"
    );

    // ...and the rankings measurably reorder: at least one scenario's
    // ranked combo order changes between correlated and independent
    // fault realizations.
    let order = |card: &Scorecard| -> Vec<Vec<String>> {
        card.per_scenario
            .iter()
            .map(|r| {
                r.entries
                    .iter()
                    .map(|e| format!("{}+{}", e.predictor, e.manager))
                    .collect()
            })
            .collect()
    };
    assert_ne!(
        order(&correlated.scorecard),
        order(&independent.scorecard),
        "correlated vs independent faults must reorder at least one fault-regime ranking"
    );
    // Pin the specific reorder the docs cite: on continental-storms at
    // this seed, the shared-onset storm ranks ewma above ma while the
    // staggered independent onsets rank ma above ewma.
    let continental_order = |card: &Scorecard| -> Vec<String> {
        card.per_scenario
            .iter()
            .find(|r| r.scenario == "continental-storms")
            .expect("continental-storms is in the matrix")
            .entries
            .iter()
            .map(|e| e.predictor.split('(').next().unwrap().to_string())
            .collect()
    };
    let corr = continental_order(&correlated.scorecard);
    let ind = continental_order(&independent.scorecard);
    assert_ne!(corr, ind, "continental-storms must reorder");
    let position =
        |ranking: &[String], label: &str| ranking.iter().position(|p| p == label).expect(label);
    assert!(
        position(&corr, "ewma") < position(&corr, "ma"),
        "correlated: ewma above ma, got {corr:?}"
    );
    assert!(
        position(&ind, "ma") < position(&ind, "ewma"),
        "independent: ma above ewma, got {ind:?}"
    );

    // Sanity: the correlated storm verifiably darkened the in-band
    // scenarios (the southern control keeps its clean trace harvest).
    let clean = FleetEngine::new(seed)
        .run(&storm_band_matrix(vec![]))
        .unwrap();
    let harvested = |result: &scenario_fleet::FleetResult, name: &str| {
        result
            .outcomes
            .iter()
            .filter(|o| o.scenario == name)
            .map(|o| o.report.harvested_j)
            .sum::<f64>()
    };
    assert!(
        harvested(&correlated, "four-seasons") < harvested(&clean, "four-seasons"),
        "in-band scenario must lose harvest to the storm"
    );
}
