//! Cross-crate consistency tests: the hardware model against the core
//! kernel, the simulator against synthetic traces, and fixed point
//! against f64 on realistic data.

use harvest_sim::{
    simulate_node, EnergyNeutralManager, EnergyStorage, Load, NodeConfig, SolarPanel,
};
use msp430_energy::{CalibratedCycleModel, OpCostModel, PredictionKernel, Supply};
use pred_metrics::EvalProtocol;
use solar_predict::fixed_point::FixedWcmaPredictor;
use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
use solar_synth::{Site, TraceGenerator};
use solar_trace::{SlotView, SlotsPerDay};

#[test]
fn hw_cost_models_agree_on_scaling() {
    // The calibrated model and the analytic op-count model must agree on
    // the *structure* of the cost: linear growth in K with similar
    // per-K increments (both are one div + mul + add of the same
    // arithmetic), and a positive persistence-path cost.
    let calibrated = CalibratedCycleModel::paper();
    let float = OpCostModel::software_float();
    let per_k_calibrated = calibrated.cycles(&PredictionKernel::new(5, 0.5))
        - calibrated.cycles(&PredictionKernel::new(4, 0.5));
    let per_k_analytic = float.cycles(PredictionKernel::new(5, 0.5).op_counts())
        - float.cycles(PredictionKernel::new(4, 0.5).op_counts());
    let ratio = per_k_analytic / per_k_calibrated;
    assert!(
        (0.5..2.5).contains(&ratio),
        "per-K increments disagree: analytic {per_k_analytic}, calibrated {per_k_calibrated}"
    );
}

#[test]
fn prediction_energy_is_small_next_to_sampling() {
    // The paper's §IV-B conclusion: prediction adds a few µJ on top of
    // the 55 µJ acquisition for every sensible configuration.
    let supply = Supply::msp430f1611();
    let model = CalibratedCycleModel::paper();
    for k in 1..=6 {
        for alpha in [0.0, 0.5, 1.0] {
            let e = model.cycles(&PredictionKernel::new(k, alpha)) * supply.energy_per_cycle_j();
            assert!(e > 0.5e-6 && e < 12.0e-6, "K={k} alpha={alpha}: {e}");
        }
    }
}

#[test]
fn node_conserves_energy_on_every_site() {
    let config = NodeConfig {
        panel: SolarPanel::new(0.01, 0.15).unwrap(),
        storage: EnergyStorage::with_losses(3000.0, 1500.0, 0.85, 0.9, 0.002).unwrap(),
        load: Load::new(0.06, 0.0005).unwrap(),
    };
    for site in Site::ALL {
        let trace = TraceGenerator::new(site.config(), 13)
            .generate_days(40)
            .unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
        let mut predictor = WcmaPredictor::new(WcmaParams::new(0.7, 10, 2, 48).unwrap());
        let mut manager = EnergyNeutralManager::default();
        let report = simulate_node(&view, &mut predictor, &mut manager, &config);
        assert!(
            report.energy_balance_error_j() < 1e-6 * report.harvested_j.max(1.0),
            "{site}: residual {}",
            report.energy_balance_error_j()
        );
        assert!(report.harvested_j > 0.0);
        assert!(report.consumed_j > 0.0);
    }
}

#[test]
fn fixed_point_accuracy_penalty_is_negligible_on_solar_data() {
    let trace = TraceGenerator::new(Site::Hsu.config(), 21)
        .generate_days(60)
        .unwrap();
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let params = WcmaParams::new(0.7, 10, 2, 48).unwrap();
    let protocol = EvalProtocol::paper();
    let float = protocol
        .evaluate(&run_predictor(&view, &mut WcmaPredictor::new(params)))
        .mape;
    let fixed = protocol
        .evaluate(&run_predictor(&view, &mut FixedWcmaPredictor::new(params)))
        .mape;
    assert!(
        (float - fixed).abs() < 0.001,
        "fixed-point MAPE {fixed} vs float {float}"
    );
}

#[test]
fn overhead_stays_below_five_percent_across_paper_rates() {
    // Fig. 6's practical upshot: even at N = 288 the sampling+prediction
    // activity is under 5% of the sleep budget.
    use msp430_energy::{AdcModel, SamplingSchedule};
    let supply = Supply::msp430f1611();
    let adc = AdcModel::msp430_paper();
    let model = CalibratedCycleModel::paper();
    let kernel = PredictionKernel::new(2, 0.7);
    for n in SlotsPerDay::PAPER_VALUES {
        let budget = SamplingSchedule::new(n as usize).daily_budget(&supply, &adc, &model, &kernel);
        assert!(
            budget.overhead_pct() < 5.0,
            "N={n}: {:.2}%",
            budget.overhead_pct()
        );
    }
}
