//! Generator-space property tests and the generated-fleet golden pin.
//!
//! The parameterized catalog generators widen the evaluation surface
//! from 13 hand-written regimes to hundreds; these tests hold the three
//! contracts that make that scale trustworthy:
//!
//! 1. **generator space is well-formed** — for arbitrary seeds and axis
//!    ranges, every generated scenario round-trips through JSON
//!    byte-exactly, carries a unique stable id, and classifies into
//!    exactly one climate regime ([`Regime::of`]);
//! 2. **the pipeline is path-independent** — streamed and materialized
//!    scorecards agree byte-for-byte on sampled generated matrices, and
//!    a sharded 200-regime run merges back to the unsharded scorecard
//!    byte-for-byte;
//! 3. **the 200-regime scorecard is pinned** — one golden FNV-1a digest
//!    across 1/2/8 worker threads and multiple shard counts, evaluated
//!    under a 4 MiB trace budget so most of the fleet streams.

use fleet_tuner::{group_by_regime, Regime};
use proptest::prelude::*;
use scenario_fleet::{
    Catalog, CatalogGenerator, Climate, Collector, FalloffProfile, FaultMix, FleetDelta,
    FleetEngine, FleetFault, FleetMatrix, ManagerSpec, NodeProfile, PredictorSpec, RegimeTemplate,
    Scenario, Scorecard, SiteSpec, SpatialFalloff, StreamVersion, TraceCachePolicy,
};

/// The regime a generated (Shaped) scenario must land in.
fn expected_regime(climate: Climate) -> Regime {
    match climate {
        Climate::Desert => Regime::Desert,
        Climate::Temperate => Regime::Temperate,
        Climate::Marine => Regime::Marine,
        Climate::Monsoon => Regime::Monsoon,
        Climate::Arctic => Regime::Arctic,
    }
}

/// A one-family template assembled from arbitrary axis draws
/// (deduplicated — duplicate axis values are a template error by
/// contract).
fn arbitrary_template() -> impl Strategy<Value = RegimeTemplate> {
    let dedup = |v: Vec<f64>| {
        let mut out: Vec<f64> = Vec::new();
        for x in v {
            if !out.iter().any(|y| y.to_bits() == x.to_bits()) {
                out.push(x);
            }
        }
        out
    };
    (
        0usize..Climate::ALL.len(),
        proptest::collection::vec(-80.0f64..80.0, 1..4).prop_map(dedup),
        proptest::collection::vec(0.2f64..4.0, 1..3).prop_map(dedup),
        proptest::collection::vec(0.0f64..0.7, 1..3).prop_map(dedup),
        0usize..3,
    )
        .prop_map(
            |(climate_idx, latitudes, cloudiness, turbidity, mix_idx)| RegimeTemplate {
                family: "prop-family".to_string(),
                climate: Climate::ALL[climate_idx],
                latitudes_deg: latitudes,
                cloudiness,
                turbidity,
                nodes: vec![NodeProfile::Mote, NodeProfile::TinyMote],
                fault_mixes: vec![
                    FaultMix::Clean,
                    [FaultMix::Aging, FaultMix::Gappy, FaultMix::Dimmed][mix_idx],
                ],
                days: 30,
                slots_per_day: 48,
                resolution_minutes: 5,
                stream_version: StreamVersion::V1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_scenarios_round_trip_with_unique_ids_and_one_regime(
        template in arbitrary_template(),
        seed in 0u64..1_000_000,
    ) {
        let generator = CatalogGenerator::with_templates(seed, vec![template.clone()]).unwrap();
        let catalog = generator.expand_all().unwrap();
        prop_assert_eq!(catalog.len(), template.count());
        let mut seen = std::collections::BTreeSet::new();
        for scenario in catalog.scenarios() {
            // Unique, seed-salted id.
            prop_assert!(seen.insert(scenario.name.clone()), "{} repeats", scenario.name);
            prop_assert!(scenario.name.starts_with(&format!("g{seed:x}-")));
            // Byte-exact JSON round trip.
            let text = scenario.to_json().render_pretty();
            let back = Scenario::from_json_str(&text).unwrap();
            prop_assert_eq!(&back, scenario);
            prop_assert_eq!(back.to_json().render_pretty(), text);
            // Exactly one regime family, and the right one.
            prop_assert_eq!(Regime::of(scenario), expected_regime(template.climate));
        }
        let groups = group_by_regime(catalog.scenarios());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(total, catalog.len(), "regime grouping must partition");
        prop_assert_eq!(groups.len(), 1, "one climate family per template");
    }

    #[test]
    fn builtin_generator_spans_families_for_any_seed(seed in 0u64..1_000_000) {
        let catalog = CatalogGenerator::new(seed).generate(25).unwrap();
        let groups = group_by_regime(catalog.scenarios());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(total, catalog.len());
        prop_assert_eq!(groups.len(), Regime::ALL.len(),
            "round-robin generation must cover every regime family");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn streamed_and_materialized_scorecards_agree_on_generated_matrices(
        seed in 0u64..100_000,
        count in 2usize..6,
    ) {
        let catalog = CatalogGenerator::new(seed).generate(count).unwrap();
        let matrix = FleetMatrix::new(
            vec![PredictorSpec::Wcma { alpha: 0.7, days: 10, k: 2 }],
            vec![ManagerSpec::EnergyNeutral { target_soc: 0.5, gain: 0.25 }],
            catalog.scenarios().to_vec(),
        ).unwrap();
        let materialized = FleetEngine::new(seed).run(&matrix).unwrap();
        let streaming_engine =
            FleetEngine::new(seed).with_trace_cache(TraceCachePolicy::streaming_only());
        let mut cache = streaming_engine.new_cache();
        let streamed = streaming_engine.run_cached(&matrix, &mut cache).unwrap();
        prop_assert_eq!(streamed.streamed_jobs, matrix.job_count());
        prop_assert_eq!(cache.trace_count(), 0, "streaming-only must not materialize");
        prop_assert_eq!(
            streamed.scorecard.to_json_string(),
            materialized.scorecard.to_json_string(),
            "streamed vs materialized scorecards must be byte-identical"
        );
    }
}

/// A fixed-axis latitude sweep for the falloff tests below.
fn latitude_sweep(latitudes: Vec<f64>) -> Catalog {
    let template = RegimeTemplate {
        family: "sweep".to_string(),
        climate: Climate::Temperate,
        latitudes_deg: latitudes,
        cloudiness: vec![1.0],
        turbidity: vec![0.0],
        nodes: vec![NodeProfile::Mote],
        fault_mixes: vec![FaultMix::Clean],
        days: 30,
        slots_per_day: 48,
        resolution_minutes: 5,
        stream_version: StreamVersion::V1,
    };
    CatalogGenerator::with_templates(9, vec![template])
        .unwrap()
        .expand_all()
        .unwrap()
}

#[test]
fn graded_storm_severity_fades_monotonically_across_a_generated_sweep() {
    let catalog = latitude_sweep(vec![40.0, 46.0, 52.0, 58.0, 64.0]);
    let storm = FleetFault::RegionalStorm {
        window_start_day: 21,
        window_end_day: 28,
        duration_days: 4,
        depth: 0.8,
        region: SpatialFalloff::new(40.0, 2200.0, FalloffProfile::Cosine),
    };
    // Severity is monotonically non-increasing with distance from the
    // epicenter, and the projected dimming factors track it exactly.
    let mut previous = f64::INFINITY;
    for scenario in catalog.scenarios() {
        let latitude = match scenario.site {
            SiteSpec::Shaped { latitude_deg, .. } => latitude_deg,
            _ => unreachable!("generated scenarios are Shaped"),
        };
        let severity = storm.severity_at(latitude);
        assert!(
            severity <= previous + 1e-12,
            "severity rose at {latitude}° ({severity} > {previous})"
        );
        previous = severity;
        let projected = storm.project(5, scenario).unwrap();
        if severity > 0.0 {
            match projected[..] {
                [scenario_fleet::FaultSpec::ClimateDimming { factor, .. }] => {
                    assert!((factor - (1.0 - severity)).abs() < 1e-12)
                }
                ref other => panic!("unexpected projection {other:?}"),
            }
        } else {
            assert!(projected.is_empty(), "beyond the radius nothing projects");
        }
    }
    // 2200 km ≈ 19.8°: 58°N is inside (graded), 64°N is beyond → zero.
    assert!(storm.severity_at(58.0) > 0.0);
    assert_eq!(storm.severity_at(64.0), 0.0);
}

#[test]
fn graded_fleet_events_thread_through_the_engine() {
    // Three generated sites: at the epicenter, mid-falloff, and beyond
    // the radius. The engine projects the graded storm into each before
    // running, so harvest falls where the storm reaches and the distant
    // site's outcome is untouched bit-for-bit.
    let catalog = latitude_sweep(vec![40.0, 52.0, 64.0]);
    let storm = FleetFault::RegionalStorm {
        window_start_day: 21,
        window_end_day: 28,
        duration_days: 6,
        depth: 0.8,
        region: SpatialFalloff::new(40.0, 2200.0, FalloffProfile::Cosine),
    };
    let matrix = |faults: Vec<FleetFault>| {
        FleetMatrix::new(
            vec![PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            }],
            vec![ManagerSpec::Greedy],
            catalog.scenarios().to_vec(),
        )
        .unwrap()
        .with_fleet_faults(faults)
        .unwrap()
    };
    let engine = FleetEngine::new(12);
    let clean = engine.run(&matrix(vec![])).unwrap();
    let stormy = engine.run(&matrix(vec![storm])).unwrap();
    let harvested = |result: &scenario_fleet::FleetResult, idx: usize| {
        result
            .outcomes
            .iter()
            .find(|o| o.spec.scenario_idx == idx)
            .unwrap()
            .report
            .harvested_j
    };
    // Epicentral and mid-falloff sites lose harvest, the epicentral one
    // by a larger fraction (deeper dimming).
    let epicenter_ratio = harvested(&stormy, 0) / harvested(&clean, 0);
    let mid_ratio = harvested(&stormy, 1) / harvested(&clean, 1);
    assert!(epicenter_ratio < 1.0, "epicenter must lose harvest");
    assert!(
        epicenter_ratio < mid_ratio && mid_ratio < 1.0,
        "falloff must grade the loss: {epicenter_ratio} vs {mid_ratio}"
    );
    // Beyond the radius: bit-identical outcome.
    assert_eq!(
        harvested(&stormy, 2),
        harvested(&clean, 2),
        "a site beyond the radius must be untouched"
    );
}

/// Seed of the pinned 200-regime run.
const GOLDEN_SEED: u64 = 2026;
/// FNV-1a digest of the 200-regime scorecard JSON. This is a golden
/// regression pin: it must not move unless the scorecard format, the
/// generator templates, or the synthesis pipeline deliberately change.
const GOLDEN_DIGEST: u64 = 0xf6f8_c0ad_9b38_dde4;
/// FNV-1a digest of the same 200 regimes on the
/// [`StreamVersion::V2`] lane-order stream (`-v2` scenario ids). A
/// *different* stream than v1 by design — pinned independently so the
/// vectorized path is held to the same cross-thread/cross-shard
/// byte-identity bar.
const GOLDEN_DIGEST_V2: u64 = 0x99ac_0ff1_d550_4088;

#[test]
fn golden_200_regime_scorecard_is_identical_across_threads_and_shards() {
    let catalog = CatalogGenerator::new(GOLDEN_SEED).generate(200).unwrap();
    assert_eq!(catalog.len(), 200);
    let matrix = FleetMatrix::new(
        vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        catalog.scenarios().to_vec(),
    )
    .unwrap();

    let budget = 4u64 << 20;
    let mut reference: Option<String> = None;
    // The deterministic ledger is held to the same bar as the scorecard:
    // byte-identical across thread counts (fresh-run ledger) and across
    // shard splits (merge ledger) — a recording collector on every
    // config also proves collection never moves the golden digest.
    let mut ledger_reference: Option<String> = None;
    let mut merge_reference: Option<String> = None;
    // Full run reports per thread config, diffed pairwise below: the
    // report-diff verdict must read the same byte-identity the string
    // comparisons pin, through the `ReportDiff` machinery.
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let collector = Collector::recording();
        let engine = FleetEngine::new(GOLDEN_SEED)
            .with_threads(threads)
            .with_trace_cache(TraceCachePolicy::bounded(budget))
            .with_collector(collector.clone());
        let mut cache = engine.new_cache();
        let result = engine.run_cached(&matrix, &mut cache).unwrap();
        // The 4 MiB budget admits ~60 of the 200 traces; the rest run
        // through the streaming path.
        assert!(
            result.streamed_jobs >= 100,
            "threads {threads}: only {} jobs streamed",
            result.streamed_jobs
        );
        assert!(cache.trace_bytes() as u64 <= budget);
        let json = result.scorecard.to_json_string();
        let ledger_json = collector.ledger().to_json_string();
        reports.push(collector.report());
        match &ledger_reference {
            None => ledger_reference = Some(ledger_json),
            Some(reference) => assert_eq!(
                &ledger_json, reference,
                "threads {threads}: ledger bytes diverged"
            ),
        }

        // Sharded reductions (answered from the warm cache) merge back
        // to the monolithic scorecard byte-for-byte, and the merge
        // ledger records per-scenario tables — the same 200 whether the
        // fleet was split 2 or 7 ways.
        for shard_count in [2usize, 7] {
            let sharded = engine
                .run_sharded_cached(&matrix, shard_count, &mut cache)
                .unwrap();
            assert_eq!(sharded.cached_jobs, matrix.job_count());
            assert_eq!(sharded.shards.len(), shard_count);
            let merge_collector = Collector::recording();
            let merged = Scorecard::merge_shards_observed(
                &sharded.manifest,
                &sharded.shards,
                &merge_collector,
            )
            .unwrap();
            assert_eq!(
                merged.to_json_string(),
                json,
                "threads {threads}, {shard_count} shards: merge diverged"
            );
            let merge_json = merge_collector.ledger().to_json_string();
            match &merge_reference {
                None => merge_reference = Some(merge_json),
                Some(reference) => assert_eq!(
                    &merge_json, reference,
                    "threads {threads}, {shard_count} shards: merge ledger diverged"
                ),
            }
        }

        match &reference {
            None => reference = Some(json),
            Some(reference) => assert_eq!(
                &json, reference,
                "threads {threads}: scorecard bytes diverged"
            ),
        }
    }

    let digest = solar_trace::hash::fnv1a(reference.as_ref().unwrap());
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "200-regime scorecard digest drifted — if the change is deliberate \
         (scorecard format, templates, or synthesis), re-pin GOLDEN_DIGEST"
    );

    // The report-diff view of the same contract: pairing the golden
    // runs across thread counts must come back `Clean` with zero
    // counter and histogram deltas (wall thresholds generous — timing
    // is the one plane allowed to move).
    let config = fleet_obs::DiffConfig {
        wall_noise_ratio: 1e9,
        wall_regress_ratio: 1e9,
        ..fleet_obs::DiffConfig::default()
    };
    for other in &reports[1..] {
        let diff = fleet_obs::ReportDiff::compute(&reports[0], other, &config);
        assert_eq!(diff.verdict, fleet_obs::Verdict::Clean);
        assert!(diff.counter_deltas.is_empty());
        assert!(diff.histogram_deltas.is_empty());
        assert!(diff.scenario_drift.is_empty());
    }

    // An injected perturbation — 64 regimes instead of 200 — must
    // surface as a regression with a ranked, non-empty findings
    // report, the artifact the CI sentinel and `fleet_report findings`
    // emit.
    let small_catalog = CatalogGenerator::new(GOLDEN_SEED).generate(64).unwrap();
    let small_matrix = FleetMatrix::new(
        matrix.predictors.clone(),
        matrix.managers.clone(),
        small_catalog.scenarios().to_vec(),
    )
    .unwrap();
    let perturbed = Collector::recording();
    FleetEngine::new(GOLDEN_SEED)
        .with_trace_cache(TraceCachePolicy::bounded(budget))
        .with_collector(perturbed.clone())
        .run(&small_matrix)
        .unwrap();
    let diff = fleet_obs::ReportDiff::compute(&reports[0], &perturbed.report(), &config);
    assert_eq!(diff.verdict, fleet_obs::Verdict::Regressed);
    assert!(!diff.counter_deltas.is_empty(), "run totals shrank");
    assert!(!diff.scenario_drift.is_empty(), "dropped regimes drift");
    for pair in diff.scenario_drift.windows(2) {
        assert!(
            pair[0].magnitude >= pair[1].magnitude,
            "ranked by magnitude"
        );
    }
    let findings = diff.render_markdown();
    assert!(findings.contains("**Verdict: regressed**"));
    assert!(findings.contains("Worst-regressing scenarios"));
}

#[test]
fn golden_200_regime_v2_scorecard_is_identical_across_threads_and_shards() {
    let catalog = CatalogGenerator::new(GOLDEN_SEED)
        .with_stream_version(StreamVersion::V2)
        .generate(200)
        .unwrap();
    assert_eq!(catalog.len(), 200);
    // Every id carries the version segment: a v2 run can never collide
    // with its v1 twin in caches or reports.
    for scenario in catalog.scenarios() {
        assert!(scenario.name.ends_with("-v2"), "{}", scenario.name);
    }
    let matrix = FleetMatrix::new(
        vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        catalog.scenarios().to_vec(),
    )
    .unwrap();

    let budget = 4u64 << 20;
    let mut reference: Option<String> = None;
    let mut ledger_reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let collector = Collector::recording();
        let engine = FleetEngine::new(GOLDEN_SEED)
            .with_threads(threads)
            .with_trace_cache(TraceCachePolicy::bounded(budget))
            .with_collector(collector.clone());
        let mut cache = engine.new_cache();
        let result = engine.run_cached(&matrix, &mut cache).unwrap();
        assert!(
            result.streamed_jobs >= 100,
            "threads {threads}: only {} jobs streamed",
            result.streamed_jobs
        );
        let json = result.scorecard.to_json_string();
        let ledger_json = collector.ledger().to_json_string();
        match &ledger_reference {
            None => ledger_reference = Some(ledger_json),
            Some(reference) => assert_eq!(
                &ledger_json, reference,
                "threads {threads}: v2 ledger bytes diverged"
            ),
        }

        for shard_count in [2usize, 7] {
            let sharded = engine
                .run_sharded_cached(&matrix, shard_count, &mut cache)
                .unwrap();
            assert_eq!(sharded.cached_jobs, matrix.job_count());
            assert_eq!(sharded.shards.len(), shard_count);
            let merged = Scorecard::merge_shards_observed(
                &sharded.manifest,
                &sharded.shards,
                &Collector::noop(),
            )
            .unwrap();
            assert_eq!(
                merged.to_json_string(),
                json,
                "threads {threads}, {shard_count} shards: v2 merge diverged"
            );
        }

        match &reference {
            None => reference = Some(json),
            Some(reference) => assert_eq!(
                &json, reference,
                "threads {threads}: v2 scorecard bytes diverged"
            ),
        }
    }

    let digest = solar_trace::hash::fnv1a(reference.as_ref().unwrap());
    assert_eq!(
        digest, GOLDEN_DIGEST_V2,
        "200-regime v2 scorecard digest drifted — if the change is \
         deliberate (scorecard format, templates, or the v2 lane \
         synthesis order), re-pin GOLDEN_DIGEST_V2"
    );
    // The lane order is a genuinely different stream: its digest must
    // not degenerate to v1's.
    assert_ne!(digest, GOLDEN_DIGEST);
}

/// The differential-scorecard contract at fleet scale: appending days
/// to every scenario and re-scoring through [`FleetEngine::run_delta`]
/// — which resumes checkpointed unit state and extends cached traces
/// from their generator tails instead of recomputing the prefix — must
/// produce a scorecard **byte-identical** to a cold full-horizon run.
/// Held on both stream versions, across 1/2/8 worker threads, and
/// through 2- and 7-way sharded reductions, under a trace budget tight
/// enough that part of the fleet resumes via the materialized path and
/// part via the streamed-generator path.
#[test]
fn day_append_delta_is_byte_identical_to_cold_across_threads_and_shards() {
    for version in [StreamVersion::V1, StreamVersion::V2] {
        let catalog = CatalogGenerator::new(GOLDEN_SEED)
            .with_stream_version(version)
            .generate(24)
            .unwrap();
        let matrix = FleetMatrix::new(
            vec![PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            }],
            vec![ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            }],
            catalog.scenarios().to_vec(),
        )
        .unwrap();
        let mut grown = matrix.clone();
        for scenario in &mut grown.scenarios {
            scenario.days += 2;
        }
        let delta = FleetDelta::classify(&matrix, &grown).unwrap();
        assert!(matches!(&delta, FleetDelta::DayAppend { scenarios } if scenarios.len() == 24));

        // A budget around half the fleet: some scenarios resume off
        // their extended materialized traces, the rest off streamed
        // generator checkpoints.
        let budget = 1u64 << 20;
        let mut reference: Option<String> = None;
        for threads in [1usize, 2, 8] {
            let engine = FleetEngine::new(GOLDEN_SEED)
                .with_threads(threads)
                .with_trace_cache(TraceCachePolicy::bounded(budget));
            let mut cache = engine.new_cache();
            engine.run_cached(&matrix, &mut cache).unwrap();
            let incremental = engine.run_delta(&grown, &mut cache, &delta).unwrap();
            assert_eq!(
                incremental.passes.trace_generations, 0,
                "threads {threads}, {version:?}: appended days must never regenerate a prefix"
            );
            let cold = FleetEngine::new(GOLDEN_SEED)
                .with_threads(threads)
                .with_trace_cache(TraceCachePolicy::bounded(budget))
                .run(&grown)
                .unwrap();
            let json = incremental.scorecard.to_json_string();
            assert_eq!(
                json,
                cold.scorecard.to_json_string(),
                "threads {threads}, {version:?}: incremental diverged from cold"
            );
            match &reference {
                None => reference = Some(json.clone()),
                Some(reference) => assert_eq!(
                    &json, reference,
                    "threads {threads}, {version:?}: delta scorecard bytes diverged"
                ),
            }

            // Sharded reductions over the incrementally re-scored fleet
            // merge back to the same bytes.
            for shard_count in [2usize, 7] {
                let sharded = engine
                    .run_sharded_cached(&grown, shard_count, &mut cache)
                    .unwrap();
                assert_eq!(sharded.cached_jobs, grown.job_count());
                let merged = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
                assert_eq!(
                    merged.to_json_string(),
                    json,
                    "threads {threads}, {shard_count} shards, {version:?}: merge diverged"
                );
            }
        }
    }
}
