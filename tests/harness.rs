//! The supervisor recovery matrix: real child processes, injected
//! failures, and the two contracts that make the harness trustworthy —
//!
//! 1. **recovery is invisible**: any failure storm that stays within
//!    the retry budget merges to the byte-exact single-process
//!    scorecard (pinned against the golden digests for the 200-regime
//!    workload);
//! 2. **degradation is explicit**: retry exhaustion yields a partial
//!    scorecard whose [`CoverageManifest`] names every missing
//!    scenario and why, under a distinct exit code.
//!
//! Plus the artifact-hardening property: no mutation of a valid
//! artifact — truncation, bit flip, byte edit — may panic the reader
//! or be accepted as valid.

use std::path::PathBuf;
use std::time::Duration;

use fleet_harness::{
    exit, run_supervisor, ChaosMode, ChaosPlan, RunOutcome, SupervisorConfig, Workload,
    WorkloadKind,
};
use proptest::prelude::*;
use scenario_fleet::{Collector, CoverageManifest};

/// The worker binary Cargo built alongside this test.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet_worker"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harness_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Finds the first chaos seed whose failure schedule for `shards`
/// shards satisfies `pred` — deterministic, since the plan is a pure
/// function of the seed.
fn find_chaos_seed(pred: impl Fn(&ChaosPlan) -> bool) -> u64 {
    (0u64..100_000)
        .find(|&seed| pred(&ChaosPlan::new(seed)))
        .expect("no chaos seed in range satisfies the predicate")
}

/// Failing attempts of `shard` under `plan`, as modes.
fn failing_modes(plan: &ChaosPlan, shard: usize) -> Vec<ChaosMode> {
    (0..plan.fail_attempts(shard))
        .map(|attempt| plan.mode(shard, attempt))
        .collect()
}

/// A storm without stalls (fast to replay): every shard fails at least
/// once, somebody crashes mid-run, and somebody corrupts an artifact.
fn crash_and_corrupt_storm(shards: usize) -> impl Fn(&ChaosPlan) -> bool {
    move |plan| {
        let all: Vec<ChaosMode> = (0..shards).flat_map(|s| failing_modes(plan, s)).collect();
        (0..shards).all(|s| !failing_modes(plan, s).is_empty())
            && all.iter().all(|m| *m != ChaosMode::Stall)
            && all.contains(&ChaosMode::ExitMidRun)
            && all
                .iter()
                .any(|m| matches!(m, ChaosMode::TruncateArtifact | ChaosMode::BitFlipArtifact))
    }
}

fn tiny_config(tag: &str, shard_count: usize) -> SupervisorConfig {
    let mut config = SupervisorConfig::new(
        worker_bin(),
        Workload::new(42, WorkloadKind::Tiny),
        shard_count,
    );
    config.artifact_dir = temp_dir(tag);
    config.backoff_base = Duration::from_millis(5);
    config.timeout = Duration::from_secs(120);
    config
}

/// The single-process reference scorecard for a workload.
fn reference_scorecard(workload: &Workload) -> String {
    workload
        .engine()
        .run(&workload.matrix().unwrap())
        .unwrap()
        .scorecard
        .to_json_string()
}

#[test]
fn crash_and_corruption_storm_recovers_byte_identically() {
    let shard_count = 2;
    let seed = find_chaos_seed(crash_and_corrupt_storm(shard_count));
    let mut config = tiny_config("storm", shard_count);
    config.chaos_seed = Some(seed);

    let collector = Collector::recording();
    let run = run_supervisor(&config, &collector).unwrap();
    assert_eq!(run.outcome, RunOutcome::Complete);
    assert_eq!(run.outcome.exit_code(), exit::SUCCESS);
    assert!(run.coverage.is_complete());
    assert_eq!(run.coverage.covered.len(), 3);
    assert_eq!(
        run.scorecard.unwrap().to_json_string(),
        reference_scorecard(&config.workload),
        "recovery must be invisible in the output bytes"
    );

    // The storm left deterministic fingerprints on the ledger.
    let ledger = collector.ledger().to_json_string();
    let plan = ChaosPlan::new(seed);
    let total_failures: u32 = (0..shard_count as u32)
        .map(|s| plan.fail_attempts(s as usize))
        .sum();
    let expect = |key: &str, n: u64| {
        let line = format!("\"{key}\": {n}");
        assert!(ledger.contains(&line), "want {line} in ledger:\n{ledger}");
    };
    expect("harness/spawns", shard_count as u64 + total_failures as u64);
    expect("harness/retries", total_failures as u64);
    expect("harness/completed_shards", shard_count as u64);
    assert!(
        ledger.contains("harness/corrupt_artifacts"),
        "corruption was scheduled, so it must have been detected:\n{ledger}"
    );
    assert!(ledger.contains("\"harness/outcome\": \"complete\""));
    std::fs::remove_dir_all(&config.artifact_dir).unwrap();
}

#[test]
fn stalled_worker_is_killed_and_the_retry_recovers() {
    let shard_count = 2;
    // A stall somewhere, no crash-free pass before it, and nothing else
    // slow: total failing attempts capped so the test stays quick.
    let seed = find_chaos_seed(|plan| {
        let all: Vec<ChaosMode> = (0..shard_count)
            .flat_map(|s| failing_modes(plan, s))
            .collect();
        all.len() == 1 && all[0] == ChaosMode::Stall
    });
    let mut config = tiny_config("stall", shard_count);
    config.chaos_seed = Some(seed);
    // The stalled worker sleeps for an hour; the supervisor must not.
    config.timeout = Duration::from_secs(3);

    let collector = Collector::recording();
    let run = run_supervisor(&config, &collector).unwrap();
    assert_eq!(run.outcome, RunOutcome::Complete);
    assert_eq!(
        run.scorecard.unwrap().to_json_string(),
        reference_scorecard(&config.workload),
    );
    let ledger = collector.ledger().to_json_string();
    assert!(ledger.contains("\"harness/timeouts\": 1"), "{ledger}");
    assert!(ledger.contains("\"harness/kills\": 1"), "{ledger}");
    std::fs::remove_dir_all(&config.artifact_dir).unwrap();
}

#[test]
fn retry_exhaustion_degrades_with_accurate_coverage_and_exit_code() {
    let shard_count = 3;
    let mut config = tiny_config("exhaust", shard_count);
    config.fail_shards = vec![1];
    config.max_attempts = 2;

    let collector = Collector::recording();
    let run = run_supervisor(&config, &collector).unwrap();
    assert_eq!(run.outcome, RunOutcome::Degraded);
    assert_eq!(run.outcome.exit_code(), exit::DEGRADED);

    // Tiny has 3 scenarios round-robined over 3 shards: shard 1 owns
    // exactly the second scenario.
    let expected_missing: Vec<String> = run
        .manifest
        .scenarios
        .iter()
        .filter(|(_, shard)| *shard == 1)
        .map(|(name, _)| name.clone())
        .collect();
    assert_eq!(expected_missing, vec!["marine-fog".to_string()]);
    assert!(!run.coverage.is_complete());
    assert_eq!(run.coverage.covered.len(), 2);
    assert_eq!(run.coverage.missing.len(), 1);
    assert_eq!(run.coverage.missing[0].scenario, "marine-fog");
    assert!(
        run.coverage.missing[0]
            .reason
            .contains("retry budget exhausted"),
        "{}",
        run.coverage.missing[0].reason
    );

    // The partial scorecard really is partial — and honest about it.
    let scorecard = run.scorecard.unwrap();
    assert_eq!(scorecard.per_scenario.len(), 2);
    assert!(scorecard
        .per_scenario
        .iter()
        .all(|t| t.scenario != "marine-fog"));

    // The shard's story: two attempts, both burned, nothing accepted.
    assert_eq!(run.shards[1].attempts, 2);
    assert!(!run.shards[1].completed);

    // Coverage survives its own serialisation (the supervisor example
    // writes exactly this document).
    let round_trip = CoverageManifest::from_json_str(&run.coverage.to_json().render_pretty());
    assert_eq!(round_trip.unwrap(), run.coverage);
    assert!(run.coverage.render_text().contains("DEGRADED"));

    let ledger = collector.ledger().to_json_string();
    assert!(
        ledger.contains("\"harness/exhausted_shards\": 1"),
        "{ledger}"
    );
    assert!(
        ledger.contains("\"harness/outcome\": \"degraded\""),
        "{ledger}"
    );
    std::fs::remove_dir_all(&config.artifact_dir).unwrap();
}

#[test]
fn quarantined_artifact_is_kept_as_the_degradation_fallback() {
    let shard_count = 2;
    // Shard 0's only scheduled attempt panics a work unit; with a
    // budget of one attempt the supervisor must degrade to the
    // quarantined artifact instead of losing the whole shard.
    let seed = find_chaos_seed(|plan| {
        failing_modes(plan, 0) == vec![ChaosMode::PanicUnit] && failing_modes(plan, 1).is_empty()
    });
    let mut config = tiny_config("quarantine", shard_count);
    config.chaos_seed = Some(seed);
    config.max_attempts = 1;

    let collector = Collector::recording();
    let run = run_supervisor(&config, &collector).unwrap();
    assert_eq!(run.outcome, RunOutcome::Degraded);
    // Shard 0 owns scenarios 0 and 2; the panic hit its first scenario,
    // the other two still scored.
    assert_eq!(run.coverage.covered.len(), 2);
    assert_eq!(run.coverage.missing.len(), 1);
    assert_eq!(run.coverage.missing[0].scenario, "desert-clear-sky");
    assert!(
        run.coverage.missing[0].reason.contains("panicked"),
        "{}",
        run.coverage.missing[0].reason
    );
    assert!(run.shards[0].completed);
    assert_eq!(run.shards[0].quarantined, 1);

    let ledger = collector.ledger().to_json_string();
    assert!(
        ledger.contains("\"harness/degraded_shards\": 1"),
        "{ledger}"
    );
    assert!(
        ledger.contains("\"harness/quarantined_scenarios\": 1"),
        "{ledger}"
    );
    std::fs::remove_dir_all(&config.artifact_dir).unwrap();
}

/// Golden-workload recovery: the acceptance bar of the harness. A
/// 200-regime fleet split across worker processes, with a chaos storm
/// (mid-run crash + artifact corruption) injected, must recover to the
/// *pinned* digest — the same constant the in-process golden test pins
/// — proving 1 host ≡ N processes byte-for-byte even under failures.
fn golden_recovery(v2: bool, pinned_digest: u64) {
    let shard_count = 2;
    let seed = find_chaos_seed(crash_and_corrupt_storm(shard_count));
    let workload = Workload::new(2026, WorkloadKind::Golden200).with_v2(v2);
    let mut config = SupervisorConfig::new(worker_bin(), workload, shard_count);
    config.artifact_dir = temp_dir(if v2 { "golden_v2" } else { "golden" });
    config.backoff_base = Duration::from_millis(5);
    config.chaos_seed = Some(seed);

    let collector = Collector::recording();
    let run = run_supervisor(&config, &collector).unwrap();
    assert_eq!(run.outcome, RunOutcome::Complete);
    assert!(run.coverage.is_complete());
    assert_eq!(run.coverage.covered.len(), 200);
    let digest = solar_trace::hash::fnv1a(&run.scorecard.unwrap().to_json_string());
    assert_eq!(
        digest, pinned_digest,
        "supervised multi-process recovery drifted off the golden digest"
    );
    std::fs::remove_dir_all(&config.artifact_dir).unwrap();
}

#[test]
fn golden_200_regime_recovery_lands_the_pinned_digest() {
    golden_recovery(false, 0xf6f8_c0ad_9b38_dde4);
}

#[test]
fn golden_200_regime_v2_recovery_lands_the_pinned_digest() {
    golden_recovery(true, 0x99ac_0ff1_d550_4088);
}

/// A small valid artifact to mutate: built once, reused across the
/// proptest cases.
fn valid_artifact_bytes() -> &'static [u8] {
    use std::sync::OnceLock;
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let payload = br#"{"schema": "fleet-shard-run/1", "shard_index": 0}"#;
        fleet_harness::artifact::envelope(fleet_harness::worker::SHARD_RUN_KIND, payload)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Parse hardening: any single-byte edit, bit flip, or truncation
    /// of a valid artifact either reproduces the original bytes (the
    /// identity edit) or is rejected with a typed error — never a
    /// panic, never a false accept.
    #[test]
    fn mutated_artifacts_never_parse_as_valid(
        edit_pos in 0usize..177,
        edit_byte in 0u8..=255,
        truncate_to in 0usize..177,
        pick in 0u8..3,
    ) {
        let original = valid_artifact_bytes();
        let mut mutated = original.to_vec();
        match pick {
            0 => {
                let pos = edit_pos % mutated.len();
                mutated[pos] = edit_byte;
            }
            1 => {
                let pos = edit_pos % mutated.len();
                mutated[pos] ^= 1 << (edit_byte % 8);
            }
            _ => mutated.truncate(truncate_to % mutated.len()),
        }

        let dir = temp_dir("proptest");
        let path = dir.join(format!("mut_{}.artifact", std::process::id()));
        std::fs::write(&path, &mutated).unwrap();
        let result = fleet_harness::artifact::read_artifact(
            &path,
            fleet_harness::worker::SHARD_RUN_KIND,
        );
        match result {
            Ok(artifact) => prop_assert_eq!(
                &mutated[..],
                original,
                "a mutated artifact parsed as valid: payload {:?}",
                artifact.payload
            ),
            Err(error) => {
                // Typed, displayable, names the file.
                let text = error.to_string();
                prop_assert!(text.contains("artifact"), "{}", text);
            }
        }
    }
}
