//! Fleet-engine integration tests: determinism across thread counts,
//! fault-proof energy accounting, and the param_explore bridge.

use harvest_sim::{
    simulate_node_hooked, EnergyNeutralManager, EnergyStorage, Load, NodeConfig, SolarPanel,
};
use param_explore::ParamGrid;
use proptest::prelude::*;
use scenario_fleet::{
    Catalog, FaultInjector, FaultSpec, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec,
    Scenario,
};
use solar_predict::{WcmaParams, WcmaPredictor};
use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

fn two_scenario_matrix() -> FleetMatrix {
    let catalog = Catalog::builtin();
    FleetMatrix::new(
        vec![
            PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            },
            PredictorSpec::Ewma { gamma: 0.5 },
        ],
        vec![
            ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            },
            ManagerSpec::Greedy,
        ],
        vec![
            catalog.get("desert-clear-sky").unwrap().clone(),
            catalog.get("gappy-telemetry-desert").unwrap().clone(),
        ],
    )
    .unwrap()
}

#[test]
fn scorecard_json_is_byte_identical_across_thread_counts() {
    let matrix = two_scenario_matrix();
    let reference = FleetEngine::new(2010)
        .with_threads(1)
        .run(&matrix)
        .unwrap()
        .scorecard
        .to_json_string();
    for threads in [2, 4, 8] {
        let json = FleetEngine::new(2010)
            .with_threads(threads)
            .run(&matrix)
            .unwrap()
            .scorecard
            .to_json_string();
        assert_eq!(
            json, reference,
            "thread count {threads} changed the scorecard"
        );
    }
    // And the default (all cores) engine agrees too.
    let default_json = FleetEngine::new(2010)
        .run(&matrix)
        .unwrap()
        .scorecard
        .to_json_string();
    assert_eq!(default_json, reference);
}

#[test]
fn repeated_runs_reproduce_outcomes_exactly() {
    let matrix = two_scenario_matrix();
    let a = FleetEngine::new(7).run(&matrix).unwrap();
    let b = FleetEngine::new(7).run(&matrix).unwrap();
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.summary, y.summary);
        assert_eq!(x.report, y.report);
    }
    // A different seed must actually change something.
    let c = FleetEngine::new(8).run(&matrix).unwrap();
    assert!(a
        .outcomes
        .iter()
        .zip(&c.outcomes)
        .any(|(x, y)| x.summary != y.summary));
}

#[test]
fn grid_predictor_family_runs_through_the_fleet() {
    // The param_explore bridge: a small (alpha, D, K) grid becomes the
    // predictor axis of a fleet run.
    let grid = ParamGrid::builder()
        .alphas(vec![0.0, 1.0])
        .days(vec![5])
        .ks(vec![1, 2])
        .build()
        .unwrap();
    let family = PredictorSpec::family_from_grid(&grid);
    assert_eq!(family.len(), 4);
    let matrix = FleetMatrix::new(
        family,
        vec![ManagerSpec::Greedy],
        vec![Catalog::builtin().get("desert-clear-sky").unwrap().clone()],
    )
    .unwrap();
    let result = FleetEngine::new(5).run(&matrix).unwrap();
    assert_eq!(result.outcomes.len(), 4);
    // Every grid member produced a finite, distinct-labelled outcome.
    let mut labels: Vec<&str> = result
        .outcomes
        .iter()
        .map(|o| o.predictor.as_str())
        .collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), 4);
}

#[test]
fn extended_family_ranks_under_faults_and_caches_identically() {
    // The Q16 kernel and the causal dynamic selector are full fleet
    // citizens: they run through faulted scenarios like any other spec,
    // and the incremental cache reproduces a cold run byte-for-byte
    // when the axis grows by one of them.
    let catalog = Catalog::builtin();
    let scenarios = vec![
        catalog.get("aging-node").unwrap().clone(),
        catalog.get("gappy-telemetry-desert").unwrap().clone(),
    ];
    let managers = vec![ManagerSpec::EnergyNeutral {
        target_soc: 0.5,
        gain: 0.25,
    }];
    let base = FleetMatrix::new(
        PredictorSpec::guideline_family(),
        managers.clone(),
        scenarios.clone(),
    )
    .unwrap();
    let grown = FleetMatrix::new(PredictorSpec::extended_family(), managers, scenarios).unwrap();

    let engine = FleetEngine::new(77);
    let mut cache = engine.new_cache();
    engine.run_cached(&base, &mut cache).unwrap();
    let incremental = engine.run_cached(&grown, &mut cache).unwrap();
    assert_eq!(incremental.cached_jobs, base.job_count());
    let full = FleetEngine::new(77).run(&grown).unwrap();
    assert_eq!(
        incremental.scorecard.to_json_string(),
        full.scorecard.to_json_string()
    );

    // The dynamic selector's per-slot candidate budget is visible in
    // the deterministic cost accounting.
    let dynamic_entry = full
        .scorecard
        .overall
        .iter()
        .find(|e| e.predictor.starts_with("dyn("))
        .expect("dynamic selector ranked");
    assert_eq!(dynamic_entry.peak_candidates, 30);
    for outcome in &full.outcomes {
        assert!(
            outcome.report.energy_balance_error_j() < 1e-6 * outcome.report.harvested_j.max(1.0),
            "{} + {}: fault run broke the ledger",
            outcome.scenario,
            outcome.predictor
        );
    }
}

#[test]
fn every_builtin_scenario_survives_a_full_engine_pass() {
    let matrix = FleetMatrix::new(
        vec![PredictorSpec::Persistence],
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        Catalog::builtin().scenarios().to_vec(),
    )
    .unwrap();
    let result = FleetEngine::new(1).run(&matrix).unwrap();
    for outcome in &result.outcomes {
        assert!(
            outcome.report.energy_balance_error_j() < 1e-6 * outcome.report.harvested_j.max(1.0),
            "{}: residual {}",
            outcome.scenario,
            outcome.report.energy_balance_error_j()
        );
        // Polar night can filter every ROI slot out, but the metrics
        // must stay finite everywhere.
        assert!(outcome.summary.mape.is_finite(), "{}", outcome.scenario);
    }
}

/// Strategy over arbitrary (possibly stacked) fault lists.
fn fault_list_strategy() -> impl Strategy<Value = Vec<FaultSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..35, 1usize..10).prop_map(|(start_day, duration_days)| {
                FaultSpec::PanelOutage {
                    start_day,
                    duration_days,
                }
            }),
            (0.05f64..1.0).prop_map(|capacity_factor| FaultSpec::StorageFade { capacity_factor }),
            (0.0f64..0.8).prop_map(|rate| FaultSpec::SensorDropout { rate }),
            ((0.0f64..100.0), (1.0f64..20.0)).prop_map(|(gaps_per_100_days, mean_slots)| {
                FaultSpec::TraceGap {
                    gaps_per_100_days,
                    mean_slots,
                }
            }),
        ],
        0..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: no fault combination can break the
    /// simulator's energy-conservation identity.
    #[test]
    fn injected_faults_never_break_energy_balance(
        faults in fault_list_strategy(),
        seed in 0u64..1000,
    ) {
        // A small deterministic solar-ish trace (30 days, hourly).
        let day: Vec<f64> = (0..24)
            .map(|h| if (6..18).contains(&h) { 400.0 + 30.0 * h as f64 } else { 0.0 })
            .collect();
        let samples: Vec<f64> = (0..30).flat_map(|_| day.clone()).collect();
        let trace =
            PowerTrace::new("prop", Resolution::from_minutes(60).unwrap(), samples).unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();

        let capacity = 2000.0 * scenario_fleet::storage_capacity_factor(&faults);
        let config = NodeConfig {
            panel: SolarPanel::new(0.01, 0.15).unwrap(),
            storage: EnergyStorage::with_losses(capacity, capacity * 0.5, 0.9, 0.9, 0.001)
                .unwrap(),
            load: Load::new(0.05, 0.0005).unwrap(),
        };
        let mut predictor = WcmaPredictor::new(WcmaParams::new(0.7, 5, 2, 24).unwrap());
        let mut manager = EnergyNeutralManager::default();
        let mut injector = FaultInjector::new(&faults, seed, 30, 24);
        let report = simulate_node_hooked(
            &view,
            &mut predictor,
            &mut manager,
            &config,
            &mut injector,
        );
        prop_assert!(
            report.energy_balance_error_j() < 1e-6 * report.harvested_j.max(1.0),
            "faults {faults:?} broke the ledger: residual {}",
            report.energy_balance_error_j()
        );
        prop_assert!(report.utilization >= 0.0 && report.utilization <= 1.0 + 1e-9);
    }

    /// Scenario JSON round-trips under random fault decoration.
    #[test]
    fn scenario_json_round_trips_with_faults(faults in fault_list_strategy()) {
        let mut scenario: Scenario =
            Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        scenario.faults = faults;
        let text = scenario.to_json().render_pretty();
        let back = Scenario::from_json_str(&text).unwrap();
        prop_assert_eq!(back, scenario);
    }
}
